"""Unit tests for the sync manager (direct, no engine)."""

import pytest

from repro.errors import GuestFault, SimulationError
from repro.oskernel.sync import SyncManager
from repro.record.sync_log import SyncOrderLog, SyncOrderOracle


class TestMutex:
    def test_uncontended_acquire(self):
        sync = SyncManager()
        assert sync.acquire(1, 100)
        assert sync.holds(1, 100)

    def test_contended_acquire_blocks(self):
        sync = SyncManager()
        sync.acquire(1, 100)
        assert not sync.acquire(2, 100)

    def test_release_grants_fifo(self):
        sync = SyncManager()
        sync.acquire(1, 100)
        sync.acquire(2, 100)
        sync.acquire(3, 100)
        assert sync.release(1, 100) == [2]
        assert sync.holds(2, 100)
        assert sync.release(2, 100) == [3]

    def test_release_with_no_waiters_frees(self):
        sync = SyncManager()
        sync.acquire(1, 100)
        assert sync.release(1, 100) == []
        assert sync.acquire(2, 100)

    def test_reentrant_lock_faults(self):
        sync = SyncManager()
        sync.acquire(1, 100)
        with pytest.raises(GuestFault):
            sync.acquire(1, 100)

    def test_unlock_not_held_faults(self):
        sync = SyncManager()
        with pytest.raises(GuestFault):
            sync.release(1, 100)

    def test_unlock_other_threads_lock_faults(self):
        sync = SyncManager()
        sync.acquire(1, 100)
        with pytest.raises(GuestFault):
            sync.release(2, 100)

    def test_independent_locks(self):
        sync = SyncManager()
        assert sync.acquire(1, 100)
        assert sync.acquire(2, 200)


class TestSemaphore:
    def test_init_and_wait(self):
        sync = SyncManager()
        sync.sem_init(50, 2)
        assert sync.sem_wait(1, 50)
        assert sync.sem_wait(2, 50)
        assert not sync.sem_wait(3, 50)

    def test_post_grants_waiter(self):
        sync = SyncManager()
        sync.sem_init(50, 0)
        assert not sync.sem_wait(1, 50)
        assert sync.sem_post(50) == [1]

    def test_post_without_waiter_banks_value(self):
        sync = SyncManager()
        sync.sem_init(50, 0)
        assert sync.sem_post(50) == []
        assert sync.sem_wait(1, 50)

    def test_uninitialised_sem_defaults_to_zero(self):
        sync = SyncManager()
        assert not sync.sem_wait(1, 60)

    def test_negative_init_faults(self):
        with pytest.raises(GuestFault):
            SyncManager().sem_init(50, -1)


class TestCondvar:
    def setup_method(self):
        self.sync = SyncManager()
        self.sync.acquire(1, 10)  # mutex 10

    def test_wait_releases_mutex(self):
        grants = self.sync.cond_wait(1, 20, 10)
        assert grants == []
        assert self.sync.acquire(2, 10)

    def test_wait_without_mutex_faults(self):
        with pytest.raises(GuestFault):
            self.sync.cond_wait(2, 20, 10)

    def test_signal_no_waiters_is_lost(self):
        assert self.sync.cond_signal(20) == []

    def test_signal_completes_waiter_when_mutex_free(self):
        self.sync.cond_wait(1, 20, 10)  # releases mutex 10
        assert self.sync.cond_signal(20) == [1]
        assert self.sync.holds(1, 10)

    def test_signalled_waiter_queues_on_held_mutex(self):
        self.sync.cond_wait(1, 20, 10)
        self.sync.acquire(2, 10)
        assert self.sync.cond_signal(20) == []
        assert self.sync.release(2, 10) == [1]
        assert self.sync.holds(1, 10)

    def test_broadcast_wakes_all(self):
        self.sync.cond_wait(1, 20, 10)
        self.sync.acquire(2, 10)
        self.sync.cond_wait(2, 20, 10)
        # mutex now free; both waiters queued on cond
        grants = self.sync.cond_broadcast(20)
        assert grants == [1]          # 1 reacquires, 2 queues on the mutex
        assert self.sync.release(1, 10) == [2]

    def test_signal_wakes_in_fifo_order(self):
        self.sync.cond_wait(1, 20, 10)
        self.sync.acquire(2, 10)
        self.sync.cond_wait(2, 20, 10)
        assert self.sync.cond_signal(20) == [1]


class TestBarrier:
    def test_last_arrival_releases_all(self):
        sync = SyncManager()
        assert sync.barrier_arrive(1, 30, 3) == []
        assert sync.barrier_arrive(2, 30, 3) == []
        assert sorted(sync.barrier_arrive(3, 30, 3)) == [1, 2, 3]

    def test_barrier_reusable_across_generations(self):
        sync = SyncManager()
        sync.barrier_arrive(1, 30, 2)
        sync.barrier_arrive(2, 30, 2)
        assert sync.barrier_arrive(1, 30, 2) == []
        assert sorted(sync.barrier_arrive(2, 30, 2)) == [1, 2]

    def test_count_mismatch_faults(self):
        sync = SyncManager()
        sync.barrier_arrive(1, 30, 3)
        with pytest.raises(GuestFault):
            sync.barrier_arrive(2, 30, 2)

    def test_count_may_change_between_generations(self):
        sync = SyncManager()
        sync.barrier_arrive(1, 30, 2)
        sync.barrier_arrive(2, 30, 2)
        assert sync.barrier_arrive(1, 30, 1) == [1]

    def test_nonpositive_count_faults(self):
        with pytest.raises(GuestFault):
            SyncManager().barrier_arrive(1, 30, 0)


class TestAtomicOrdering:
    def test_no_oracle_always_proceeds(self):
        sync = SyncManager()
        assert sync.atomic_enter(1, 40)
        assert sync.atomic_done(1, 40) == []

    def test_oracle_defers_out_of_turn(self):
        oracle = SyncOrderOracle(SyncOrderLog((("atomic", 40, 1), ("atomic", 40, 2))))
        sync = SyncManager()
        sync.oracle = oracle
        assert not sync.atomic_enter(2, 40)   # thread 1's turn first
        assert sync.atomic_enter(1, 40)
        assert sync.atomic_done(1, 40) == [2]  # thread 2 now eligible
        assert sync.atomic_enter(2, 40)
        assert sync.atomic_done(2, 40) == []

    def test_exhausted_oracle_keeps_deferring(self):
        """Past the recorded order, nothing more may happen on the address
        (the recorded execution performed no further atomics there)."""
        oracle = SyncOrderOracle(SyncOrderLog((("atomic", 40, 1),)))
        sync = SyncManager()
        sync.oracle = oracle
        assert not sync.atomic_enter(2, 40)
        assert sync.atomic_enter(1, 40)
        assert sync.atomic_done(1, 40) == []  # 2 stays deferred


class TestOracleGrantOrder:
    def test_lock_granted_in_hinted_order_not_fifo(self):
        oracle = SyncOrderOracle(
            SyncOrderLog((("lock", 100, 1), ("lock", 100, 3), ("lock", 100, 2)))
        )
        sync = SyncManager()
        sync.oracle = oracle
        assert sync.acquire(1, 100)
        assert not sync.acquire(2, 100)   # queued FIFO first...
        assert not sync.acquire(3, 100)
        assert sync.release(1, 100) == [3]  # ...but hints say 3 next
        assert sync.release(3, 100) == [2]

    def test_lock_held_free_for_hinted_thread(self):
        oracle = SyncOrderOracle(SyncOrderLog((("lock", 100, 2),)))
        sync = SyncManager()
        sync.oracle = oracle
        # thread 1 asks but it is 2's turn: deferred even though free
        assert not sync.acquire(1, 100)
        assert sync.acquire(2, 100)
        # when 2 releases, the order is exhausted: the recorded execution
        # granted nothing more here, so thread 1 stays deferred
        assert sync.release(2, 100) == []

    def test_cond_signal_follows_oracle_choice(self):
        oracle = SyncOrderOracle(
            SyncOrderLog(
                (
                    ("lock", 10, 1),
                    ("lock", 10, 2),
                    ("cond", 20, 2),
                    ("lock", 10, 2),
                )
            )
        )
        sync = SyncManager()
        sync.oracle = oracle
        sync.acquire(1, 10)
        sync.cond_wait(1, 20, 10)
        sync.acquire(2, 10)
        sync.cond_wait(2, 20, 10)
        # FIFO would pick 1; the hint picks 2 (which also reacquires 10)
        assert sync.cond_signal(20) == [2]

    def test_acquisition_listener_fires(self):
        events = []
        sync = SyncManager()
        sync.acquisition_listener = lambda kind, addr, tid: events.append(
            (kind, addr, tid)
        )
        sync.acquire(1, 100)
        sync.acquire(2, 100)
        sync.release(1, 100)
        assert events == [("lock", 100, 1), ("lock", 100, 2)]


class TestSnapshot:
    def test_round_trip(self):
        sync = SyncManager()
        sync.acquire(1, 100)
        sync.acquire(2, 100)
        sync.sem_init(50, 3)
        sync.sem_wait(3, 50)
        sync.barrier_arrive(4, 30, 2)
        state = sync.snapshot()

        other = SyncManager()
        other.restore(state)
        assert other.holds(1, 100)
        assert other.release(1, 100) == [2]
        assert other.sem_wait(5, 50)
        assert sorted(other.barrier_arrive(5, 30, 2)) == [4, 5]

    def test_snapshot_with_deferred_rejected(self):
        oracle = SyncOrderOracle(SyncOrderLog((("lock", 100, 2),)))
        sync = SyncManager()
        sync.oracle = oracle
        sync.acquire(1, 100)  # deferred
        with pytest.raises(SimulationError):
            sync.snapshot()

    def test_semantic_digest_ignores_queue_order(self):
        a = SyncManager()
        a.acquire(1, 100)
        a.acquire(2, 100)
        a.acquire(3, 100)
        b = SyncManager()
        b.acquire(1, 100)
        b.acquire(3, 100)
        b.acquire(2, 100)
        assert a.semantic_digest() == b.semantic_digest()

    def test_semantic_digest_sees_owner(self):
        a = SyncManager()
        a.acquire(1, 100)
        b = SyncManager()
        b.acquire(2, 100)
        assert a.semantic_digest() != b.semantic_digest()
