"""Unit tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_starts_at_given_time(self):
        assert SimClock(42).now == 42

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10) == 10
        assert clock.advance(5) == 15
        assert clock.now == 15

    def test_advance_zero_is_noop(self):
        clock = SimClock(7)
        clock.advance(0)
        assert clock.now == 7

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(SimulationError):
            clock.advance(-1)

    def test_advance_to(self):
        clock = SimClock(5)
        clock.advance_to(9)
        assert clock.now == 9

    def test_advance_to_same_time_ok(self):
        clock = SimClock(5)
        clock.advance_to(5)
        assert clock.now == 5

    def test_advance_to_past_rejected(self):
        clock = SimClock(5)
        with pytest.raises(SimulationError):
            clock.advance_to(4)

    def test_repr(self):
        assert "17" in repr(SimClock(17))
