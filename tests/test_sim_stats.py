"""Unit tests for the statistics registry."""

from repro.sim.stats import StatsRegistry


class TestStatsRegistry:
    def test_get_defaults_to_zero(self):
        assert StatsRegistry().get("nothing") == 0

    def test_add_accumulates(self):
        stats = StatsRegistry()
        stats.add("ops")
        stats.add("ops", 4)
        assert stats.get("ops") == 5

    def test_negative_amounts_allowed(self):
        stats = StatsRegistry()
        stats.add("delta", -3)
        assert stats.get("delta") == -3

    def test_set_overwrites(self):
        stats = StatsRegistry()
        stats.add("x", 10)
        stats.set("x", 2)
        assert stats.get("x") == 2

    def test_merge(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.add("shared", 1)
        b.add("shared", 2)
        b.add("only-b", 5)
        a.merge(b)
        assert a.get("shared") == 3
        assert a.get("only-b") == 5

    def test_snapshot_is_detached(self):
        stats = StatsRegistry()
        stats.add("x")
        snap = stats.snapshot()
        stats.add("x")
        assert snap == {"x": 1}

    def test_items_sorted(self):
        stats = StatsRegistry()
        stats.add("b")
        stats.add("a")
        assert [name for name, _ in stats.items()] == ["a", "b"]

    def test_contains(self):
        stats = StatsRegistry()
        stats.add("present")
        assert "present" in stats
        assert "absent" not in stats

    def test_update_from_mapping(self):
        stats = StatsRegistry()
        stats.update_from({"x": 2, "y": 3})
        stats.update_from({"x": 1})
        assert stats.get("x") == 3
        assert stats.get("y") == 3
