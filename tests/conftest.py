"""Shared fixtures and tiny guest-program builders for the test suite."""

from __future__ import annotations

import pytest

from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.assembler import Assembler
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind


@pytest.fixture
def machine2():
    return MachineConfig(cores=2)


@pytest.fixture
def machine4():
    return MachineConfig(cores=4)


def boot_multicore(image, machine, setup=None, log=None):
    """Fresh multicore engine with a live kernel; returns (engine, kernel)."""
    kernel = Kernel(setup or KernelSetup(), image.heap_base)
    engine = MulticoreEngine.boot(image, machine, LiveSyscalls(kernel, log))
    return engine, kernel


def boot_uniprocessor(image, machine, setup=None, log=None):
    kernel = Kernel(setup or KernelSetup(), image.heap_base)
    engine = UniprocessorEngine.boot(image, machine, LiveSyscalls(kernel, log))
    return engine, kernel


def single_thread_program(body, name="test", registers=32, data=()):
    """Assemble a main-only program; ``body(asm)`` emits instructions."""
    asm = Assembler(name=name, registers=registers)
    for symbol, length, values in data:
        asm.array(symbol, length, values=values)
    with asm.function("main"):
        body(asm)
        asm.exit_()
    return asm.assemble()


def run_single(body, machine=None, setup=None, data=()):
    """Run a main-only program to completion; returns (engine, kernel)."""
    image = single_thread_program(body, data=data)
    engine, kernel = boot_multicore(image, machine or MachineConfig(cores=1), setup)
    engine.run()
    return engine, kernel


def main_registers(engine):
    """The main thread's register file after a run."""
    return engine.contexts[1].registers


def counter_program(workers=2, iters=20, locked=True, name="counter"):
    """The canonical lock-counter program used across tests."""
    asm = Assembler(name=name)
    asm.word("counter", 0)
    asm.word("mutex", 0)
    with asm.function("worker"):
        asm.li("r2", 0)
        asm.label("loop")
        if locked:
            asm.li("r3", "mutex")
            asm.lock("r3")
        asm.loadg("r4", "counter")
        asm.work(3)
        asm.addi("r4", "r4", 1)
        asm.storeg("r4", "counter")
        if locked:
            asm.unlock("r3")
        asm.work(5)
        asm.addi("r2", "r2", 1)
        asm.blti("r2", iters, "loop")
        asm.exit_()
    with asm.function("main"):
        for index in range(workers):
            asm.spawn(f"r{10 + index}", "worker")
        for index in range(workers):
            asm.join(f"r{10 + index}")
        asm.loadg("r2", "counter")
        asm.syscall("r3", SyscallKind.PRINT, args=["r2"])
        asm.exit_()
    return asm.assemble()


def barrier_program(workers=2, phases=3, name="phases"):
    """Barrier-phased shared-array program (deterministic result)."""
    asm = Assembler(name=name)
    asm.array("data", 8, values=[1, 2, 3, 4, 5, 6, 7, 8])
    asm.word("barrier", 0)
    chunk = 8 // workers
    with asm.function("worker"):
        asm.muli("r2", "r0", chunk)
        asm.addi("r3", "r2", chunk)
        for phase in range(phases):
            asm.mov("r4", "r2")
            asm.label(f"p{phase}")
            asm.li("r5", "data")
            asm.add("r5", "r5", "r4")
            asm.load("r6", "r5", 0)
            asm.muli("r6", "r6", 2)
            asm.addi("r6", "r6", 1)
            asm.store("r6", "r5", 0)
            asm.addi("r4", "r4", 1)
            asm.blt("r4", "r3", f"p{phase}")
            asm.li("r7", "barrier")
            asm.li("r8", workers)
            asm.barrier("r7", "r8")
        asm.exit_()
    with asm.function("main"):
        for index in range(workers):
            asm.li("r1", index)
            asm.spawn(f"r{10 + index}", "worker", args=["r1"])
        for index in range(workers):
            asm.join(f"r{10 + index}")
        asm.li("r2", 0)
        asm.li("r3", 0)
        asm.label("cks")
        asm.li("r4", "data")
        asm.add("r4", "r4", "r3")
        asm.load("r5", "r4", 0)
        asm.add("r2", "r2", "r5")
        asm.addi("r3", "r3", 1)
        asm.blti("r3", 8, "cks")
        asm.syscall("r6", SyscallKind.PRINT, args=["r2"])
        asm.exit_()
    return asm.assemble()
