"""Replay fidelity in all modes, including tampering detection."""

import pytest

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.errors import ReplayError
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from repro.record.schedule_log import ScheduleLog, Timeslice
from tests.conftest import barrier_program, counter_program


def make_recording(image, setup=None, workers=2, epoch_cycles=1200):
    config = DoublePlayConfig(
        machine=MachineConfig(cores=workers), epoch_cycles=epoch_cycles
    )
    result = DoublePlayRecorder(image, setup or KernelSetup(), config).record()
    return result.recording


class TestSequentialReplay:
    def test_verifies_lock_counter(self):
        image = counter_program(workers=2, iters=50)
        replayer = Replayer(image, MachineConfig(cores=2))
        result = replayer.replay_sequential(make_recording(image))
        assert result.verified
        assert result.epochs_replayed >= 2

    def test_verifies_barrier_program(self):
        image = barrier_program(workers=2, phases=5)
        replayer = Replayer(image, MachineConfig(cores=2))
        assert replayer.replay_sequential(make_recording(image)).verified

    def test_replay_reproduces_guest_registers(self):
        """Replay lands in exactly the recorded final digest — which covers
        every register of every thread."""
        image = counter_program(workers=3, iters=30)
        recording = make_recording(image, workers=3)
        replayer = Replayer(image, MachineConfig(cores=3))
        result = replayer.replay_sequential(recording)
        assert result.verified
        assert recording.final_digest != 0

    def test_replay_is_idempotent(self):
        image = counter_program(workers=2, iters=40)
        recording = make_recording(image)
        replayer = Replayer(image, MachineConfig(cores=2))
        a = replayer.replay_sequential(recording)
        b = replayer.replay_sequential(recording)
        assert a.verified and b.verified
        assert a.total_cycles == b.total_cycles

    def test_tampered_schedule_detected(self):
        image = counter_program(workers=2, iters=40)
        recording = make_recording(image)
        victim = recording.epochs[1]
        slices = list(victim.schedule.slices)
        # move one op between adjacent slices of different threads
        for i in range(len(slices) - 1):
            a, b = slices[i], slices[i + 1]
            if a.tid != b.tid and a.ops > 1 and not a.ended_blocked:
                slices[i] = Timeslice(a.tid, a.ops - 1, a.ended_blocked)
                slices[i + 1] = Timeslice(b.tid, b.ops + 1, b.ended_blocked)
                break
        victim.schedule = ScheduleLog(tuple(slices))
        replayer = Replayer(image, MachineConfig(cores=2))
        try:
            result = replayer.replay_sequential(recording)
            assert not result.verified
        except ReplayError:
            pass  # departure detected even earlier

    def test_tampered_syscall_result_detected(self):
        from dataclasses import replace

        from repro.workloads import build_workload

        inst = build_workload("pfscan", workers=2, scale=2, seed=2)
        recording = make_recording(inst.image, inst.setup, epoch_cycles=1500)
        # corrupt one logged read's data
        for index, record in enumerate(recording.syscall_records):
            if record.writes:
                base, words = record.writes[0]
                corrupted = (base, tuple(w + 1 for w in words))
                recording.syscall_records[index] = replace(
                    record, writes=(corrupted,) + record.writes[1:]
                )
                break
        replayer = Replayer(inst.image, MachineConfig(cores=2))
        try:
            assert not replayer.replay_sequential(recording).verified
        except ReplayError:
            pass


class TestParallelReplay:
    def test_verifies_and_matches_sequential(self):
        image = counter_program(workers=2, iters=50)
        recording = make_recording(image)
        replayer = Replayer(image, MachineConfig(cores=2))
        par = replayer.replay_parallel(recording)
        seq = replayer.replay_sequential(recording)
        assert par.verified and seq.verified
        assert par.epochs_replayed == seq.epochs_replayed

    def test_parallel_makespan_beats_sequential(self):
        image = counter_program(workers=2, iters=120)
        recording = make_recording(image, epoch_cycles=900)
        replayer = Replayer(image, MachineConfig(cores=2))
        par = replayer.replay_parallel(recording, workers=recording.epoch_count())
        seq = replayer.replay_sequential(recording)
        assert par.makespan < seq.makespan

    def test_worker_pool_bounds_parallelism(self):
        image = counter_program(workers=2, iters=120)
        recording = make_recording(image, epoch_cycles=900)
        replayer = Replayer(image, MachineConfig(cores=2))
        narrow = replayer.replay_parallel(recording, workers=1)
        wide = replayer.replay_parallel(recording, workers=8)
        assert wide.makespan <= narrow.makespan

    def test_single_epoch_replay(self):
        image = counter_program(workers=2, iters=60)
        recording = make_recording(image)
        replayer = Replayer(image, MachineConfig(cores=2))
        middle = recording.epochs[len(recording.epochs) // 2].index
        result = replayer.replay_epoch(recording, middle)
        assert result.verified
        assert result.epochs_replayed == 1

    def test_unknown_epoch_index(self):
        image = counter_program(workers=2, iters=40)
        recording = make_recording(image)
        replayer = Replayer(image, MachineConfig(cores=2))
        with pytest.raises(ReplayError):
            replayer.replay_epoch(recording, 999)


class TestMaterialisedReplay:
    def test_deserialised_recording_round_trip(self):
        import json

        from repro.record.recording import Recording

        image = counter_program(workers=2, iters=60)
        recording = make_recording(image)
        plain = json.loads(json.dumps(recording.to_plain()))
        restored = Recording.from_plain(plain, recording.initial_checkpoint)
        replayer = Replayer(image, MachineConfig(cores=2))
        assert replayer.replay_sequential(restored).verified

    def test_materialise_then_parallel(self):
        import json

        from repro.record.recording import Recording

        image = counter_program(workers=2, iters=60)
        recording = make_recording(image)
        plain = json.loads(json.dumps(recording.to_plain()))
        restored = Recording.from_plain(plain, recording.initial_checkpoint)
        replayer = Replayer(image, MachineConfig(cores=2))
        with pytest.raises(ReplayError):
            replayer.replay_epoch(restored, restored.epochs[-1].index)
        replayer.materialize_checkpoints(restored)
        assert replayer.replay_parallel(restored).verified
        assert replayer.replay_epoch(restored, restored.epochs[-1].index).verified
