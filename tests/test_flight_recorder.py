"""Flight-recorder mode and the durable-log crash path.

The window half: ``flight_window=K`` keeps only the last K epochs
durable — pre-window manifest entries drop, fully-dead segments are
deleted, the blob pack is compacted — and the surviving tail replays
bit-identically with absolute epoch indexing. The crash half: any
exception escaping the recorder seals the committed prefix via
``close_partial`` (``complete: false`` + crash reason), and a
SIGKILLed ``repro record`` process always leaves a recoverable,
replayable tail.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.errors import ReplayError
from repro.machine.config import MachineConfig
from repro.record.shards import (
    ShardedLogReader,
    ShardedLogWriter,
    persist_recording,
)
from repro.workloads import build_workload


def _record(name="prodcons", workers=2, scale=16, divisor=24, **overrides):
    """A recording long enough (≥ ~10 epochs) for a window to slide."""
    instance = build_workload(name, workers=workers, scale=scale, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // divisor, 400),
        **overrides,
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    return instance, machine, result


def _disk_bytes(directory):
    return sum(
        os.path.getsize(os.path.join(root, name))
        for root, _, names in os.walk(directory)
        for name in names
    )


# ----------------------------------------------------------------------
# The rolling window
# ----------------------------------------------------------------------
class TestFlightWindow:
    WINDOW = 3

    @pytest.fixture(scope="class")
    def logs(self, tmp_path_factory):
        """One long recording persisted twice: unwindowed and windowed.

        Tiny segment/compaction thresholds force segment rollover and
        pack compaction to actually happen at test scale.
        """
        base = tmp_path_factory.mktemp("flight")
        instance, machine, result = _record()
        full_dir = str(base / "full")
        win_dir = str(base / "win")
        persist_recording(
            result.recording, full_dir, fsync=False, group_commit_bytes=256
        )
        totals = persist_recording(
            result.recording,
            win_dir,
            fsync=False,
            group_commit_bytes=256,
            flight_window=self.WINDOW,
            segment_max_bytes=1024,
            pack_compact_bytes=512,
        )
        return instance, machine, result, full_dir, win_dir, totals

    def test_manifest_keeps_only_the_window(self, logs):
        _, _, result, _, win_dir, totals = logs
        epochs = result.recording.epoch_count()
        assert epochs > self.WINDOW  # otherwise the test proves nothing
        manifest = json.load(open(os.path.join(win_dir, "manifest.json")))
        assert manifest["flight_window"] == self.WINDOW
        assert len(manifest["epochs"]) == self.WINDOW
        assert manifest["epochs_dropped"] == epochs - self.WINDOW
        # absolute indices survive the slide
        assert [e["index"] for e in manifest["epochs"]] == list(
            range(epochs - self.WINDOW, epochs)
        )
        assert totals["epochs_dropped"] == epochs - self.WINDOW

    def test_dead_segments_are_deleted(self, logs):
        _, _, _, _, win_dir, totals = logs
        assert totals["segments_deleted"] > 0
        manifest = json.load(open(os.path.join(win_dir, "manifest.json")))
        dropped = [s for s in manifest["segments"] if s["file"] is None]
        live = [s for s in manifest["segments"] if s["file"] is not None]
        assert len(dropped) == totals["segments_deleted"]
        assert dropped and live
        # dropped entries are tombstones (positional indexing survives),
        # live files exist, dropped files are really gone
        on_disk = set(os.listdir(os.path.join(win_dir, "segments")))
        assert on_disk == {os.path.basename(s["file"]) for s in live}
        for entry in dropped:
            assert entry["blocks"] == [] and entry["dropped"]

    def test_disk_bytes_bounded_by_window(self, logs):
        _, _, _, full_dir, win_dir, totals = logs
        assert totals["pack_compactions"] > 0
        assert totals["bytes_reclaimed"] > 0
        # The windowed log must be a fraction of the full one — the
        # acceptance bound proper (long-vs-short constant factor) is the
        # benchmark's job; here we pin that GC reclaims at all layers.
        assert _disk_bytes(win_dir) < _disk_bytes(full_dir) / 2

    def test_tail_replays_bit_identically(self, logs):
        instance, machine, result, _, win_dir, _ = logs
        reader = ShardedLogReader(win_dir)
        assert reader.complete and reader.verify() == []
        epochs = result.recording.epoch_count()
        assert reader.first_epoch() == epochs - self.WINDOW
        tail = reader.load_recording()
        assert tail.epoch_range() == (epochs - self.WINDOW, epochs - 1)
        outcome = Replayer(instance.image, machine).replay_sequential(tail)
        assert outcome.verified, outcome.details

    def test_from_epoch_is_absolute(self, logs):
        instance, machine, result, _, win_dir, _ = logs
        reader = ShardedLogReader(win_dir)
        base = reader.first_epoch()
        suffix = reader.load_recording(from_epoch=base + 1)
        assert suffix.epoch_range()[0] == base + 1
        outcome = Replayer(instance.image, machine).replay_sequential(suffix)
        assert outcome.verified, outcome.details
        # epoch 0 slid out of the window: explicit, absolute, rejected
        with pytest.raises(ReplayError, match="outside recorded range"):
            reader.load_recording(from_epoch=0)
        with pytest.raises(ReplayError, match="outside recorded range"):
            reader.load_recording(from_epoch=result.recording.epoch_count() + 1)

    def test_streaming_window_matches_offline_window(self, logs, tmp_path):
        """The recorder's streamed window keeps the same last-K epochs."""
        instance, machine, result, _, _, _ = logs
        stream_dir = str(tmp_path / "stream")
        _record(
            log_dir=stream_dir,
            log_spill=True,
            flight_window=self.WINDOW,
        )
        reader = ShardedLogReader(stream_dir)
        epochs = result.recording.epoch_count()
        assert reader.epoch_count() == self.WINDOW
        assert reader.first_epoch() == epochs - self.WINDOW
        tail = reader.load_recording()
        outcome = Replayer(instance.image, machine).replay_sequential(tail)
        assert outcome.verified, outcome.details


def test_flight_window_requires_log_dir():
    instance = build_workload("prodcons", workers=2, scale=2, seed=11)
    config = DoublePlayConfig(
        machine=MachineConfig(cores=2), epoch_cycles=500, flight_window=3
    )
    with pytest.raises(ValueError, match="flight_window requires log_dir"):
        DoublePlayRecorder(instance.image, instance.setup, config).record()


def test_window_below_one_rejected(tmp_path):
    instance, machine, result = _record(scale=2, divisor=12)
    with pytest.raises(ValueError, match="flight_window"):
        persist_recording(
            result.recording, str(tmp_path / "log"), flight_window=0
        )


def test_env_window_and_field_precedence(monkeypatch):
    config = DoublePlayConfig()
    assert config.resolve_flight_window() is None
    monkeypatch.setenv("REPRO_FLIGHT_WINDOW", "5")
    assert config.resolve_flight_window() == 5
    assert config.replace(flight_window=2).resolve_flight_window() == 2
    monkeypatch.setenv("REPRO_FLIGHT_WINDOW", "junk")
    assert config.resolve_flight_window() is None


# ----------------------------------------------------------------------
# The crash path
# ----------------------------------------------------------------------
def test_close_partial_seals_buffered_epochs(tmp_path):
    """Epochs still in the group-commit buffer survive a partial close."""
    instance, machine, result = _record(scale=4, divisor=12)
    recording = result.recording
    log_dir = str(tmp_path / "log")
    # A huge threshold keeps every epoch buffered until close: without
    # close_partial's final flush they would all be lost.
    writer = ShardedLogWriter(
        log_dir,
        recording.initial_checkpoint,
        recording.program_name,
        recording.worker_threads,
        fsync=False,
        group_commit_bytes=1 << 30,
    )
    epochs = recording.epochs
    for position, record in enumerate(epochs):
        end = (
            epochs[position + 1].start_checkpoint
            if position + 1 < len(epochs)
            else None
        )
        writer.commit_epoch(
            record,
            record.start_checkpoint,
            end,
            recording.syscall_records,
            recording.signal_records,
        )
    writer.close_partial("ValueError: boom")
    assert writer.closed
    writer.close_partial("second call is a no-op")

    reader = ShardedLogReader(log_dir)
    assert not reader.complete
    assert reader.crash_reason == "ValueError: boom"
    assert reader.epoch_count() == len(epochs)
    assert reader.verify() == []
    tail = reader.load_recording()
    outcome = Replayer(instance.image, machine).replay_sequential(tail)
    assert outcome.verified, outcome.details


def test_recorder_exception_seals_committed_prefix(tmp_path, monkeypatch):
    """Regression: a crash mid-record used to skip sink.close() entirely,
    losing the buffered epochs and the sealing manifest — with log_spill
    those epochs existed nowhere else."""
    log_dir = str(tmp_path / "log")
    original = ShardedLogWriter.commit_epoch
    calls = {"n": 0}

    def bomb(self, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 3:
            raise KeyboardInterrupt("operator hit ^C")
        return original(self, *args, **kwargs)

    monkeypatch.setattr(ShardedLogWriter, "commit_epoch", bomb)
    with pytest.raises(KeyboardInterrupt):
        _record(log_dir=log_dir, log_spill=True)
    monkeypatch.setattr(ShardedLogWriter, "commit_epoch", original)

    reader = ShardedLogReader(log_dir)
    assert not reader.complete
    assert "KeyboardInterrupt" in (reader.crash_reason or "")
    assert reader.epoch_count() == 3
    assert reader.verify() == []
    instance = build_workload("prodcons", workers=2, scale=16, seed=11)
    tail = reader.load_recording()
    outcome = Replayer(
        instance.image, MachineConfig(cores=2)
    ).replay_sequential(tail)
    assert outcome.verified, outcome.details


# ----------------------------------------------------------------------
# Process-level crash: SIGKILL mid-run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kill_after_epochs", [1, 3, 6])
def test_sigkill_mid_record_leaves_replayable_tail(tmp_path, kill_after_epochs):
    """SIGKILL `repro record --log-dir --log-spill` once the manifest
    holds >= N sealed epochs; the committed prefix must verify and
    replay bit-identically (per-epoch digests are in the manifest, so a
    verified sequential replay *is* the bit-identity check)."""
    log_dir = str(tmp_path / f"log{kill_after_epochs}")
    manifest_path = os.path.join(log_dir, "manifest.json")
    env = dict(os.environ)
    env.update(
        {
            "PYTHONPATH": "src" + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            ),
            # 1 KiB group commits: epochs seal throughout the run, not
            # only at close, so there is always a prefix to kill into.
            "REPRO_LOG_GROUP_KB": "1",
            "REPRO_LOG_FSYNC": "0",
        }
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "record", "prodcons",
            "--workers", "2", "--scale", "24", "--seed", "11",
            "--epoch-divisor", "40", "--log-dir", log_dir, "--log-spill",
        ],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed = False
    deadline = time.monotonic() + 60
    while proc.poll() is None and time.monotonic() < deadline:
        try:
            with open(manifest_path) as handle:
                sealed = len(json.load(handle).get("epochs", []))
        except (OSError, ValueError):
            sealed = 0  # not yet written, or mid-replace
        if sealed >= kill_after_epochs:
            proc.kill()
            killed = True
            break
        time.sleep(0.01)
    proc.wait(timeout=60)
    if not killed:
        # The run finished before reaching the threshold — rare, but then
        # the log is simply complete and the same recovery must work.
        assert proc.returncode == 0

    reader = ShardedLogReader(log_dir)
    assert reader.epoch_count() >= kill_after_epochs or not killed
    assert reader.verify() == []
    instance = build_workload("prodcons", workers=2, scale=24, seed=11)
    tail = reader.load_recording()
    outcome = Replayer(
        instance.image, MachineConfig(cores=2)
    ).replay_sequential(tail)
    assert outcome.verified, outcome.details
    # the CLI recovery path agrees
    from repro.cli import main as cli_main
    import io

    buffer = io.StringIO()
    assert cli_main(["log", "recover", log_dir], out=buffer) == 0
    assert "verified" in buffer.getvalue()
