"""Engine guards, faults and bookkeeping edge cases."""

import pytest

from repro.errors import GuestFault, SimulationError
from repro.exec.services import LiveSyscalls
from repro.isa.assembler import Assembler
from repro.machine.config import MachineConfig
from repro.memory.layout import PAGE_WORDS
from repro.oskernel.syscalls import SyscallKind
from tests.conftest import boot_multicore, run_single


class TestGuards:
    def test_infinite_loop_tripped_by_max_ops(self):
        asm = Assembler()
        with asm.function("main"):
            asm.label("forever")
            asm.jmp("forever")
        engine, _ = boot_multicore(
            asm.assemble(), MachineConfig(cores=1, max_ops=5000)
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_spawn_limit_faults(self):
        asm = Assembler()
        with asm.function("child"):
            asm.exit_()
        with asm.function("main"):
            asm.li("r2", 0)
            asm.label("loop")
            asm.spawn("r3", "child")
            asm.addi("r2", "r2", 1)
            asm.blti("r2", 1100, "loop")
            asm.exit_()
        engine, _ = boot_multicore(
            asm.assemble(), MachineConfig(cores=2, max_ops=2_000_000)
        )
        with pytest.raises(GuestFault):
            engine.run()

    def test_join_unknown_tid_faults(self):
        def body(a):
            a.li("r1", 777)
            a.join("r1")

        with pytest.raises(GuestFault):
            run_single(body)

    def test_pc_past_end_raises(self):
        from repro.errors import AssemblerError

        asm = Assembler()
        with asm.function("main"):
            asm.nop()  # no exit: pc runs off the end
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=1))
        with pytest.raises(AssemblerError):
            engine.run()


class TestSyscallLogging:
    def test_live_log_orders_by_completion(self):
        asm = Assembler()
        with asm.function("main"):
            asm.syscall("r1", SyscallKind.TIME, args=[])
            asm.syscall("r2", SyscallKind.GETPID, args=[])
            asm.exit_()
        log = []
        engine, _ = boot_multicore(
            asm.assemble(), MachineConfig(cores=1), log=log
        )
        engine.run()
        assert [r.kind.value for r in log] == ["time", "getpid"]
        assert [r.seq for r in log] == [0, 1]

    def test_wakeup_completion_logged_at_retirement(self):
        """A blocking accept's record lands when the op retires."""
        from repro.oskernel.kernel import KernelSetup
        from repro.oskernel.net import Arrival

        asm = Assembler()
        with asm.function("main"):
            asm.syscall("r1", SyscallKind.LISTEN, args=[])
            asm.syscall("r2", SyscallKind.ACCEPT, args=["r1"])
            asm.exit_()
        log = []
        setup = KernelSetup(arrivals=[Arrival(time=500, payload=(1,))])
        engine, _ = boot_multicore(
            asm.assemble(), MachineConfig(cores=1), setup, log
        )
        engine.run()
        kinds = [r.kind.value for r in log]
        assert kinds == ["listen", "accept"]
        accept = log[-1]
        assert accept.retval >= 1000  # a connection fd

    def test_alloc_pages_do_not_overlap_data(self):
        def body(a):
            a.li("r1", 10)
            a.syscall("r2", SyscallKind.ALLOC, args=["r1"])

        engine, _ = run_single(body, data=[("blob", 3 * PAGE_WORDS, [])])
        base = engine.contexts[1].registers[2]
        assert base >= engine.program.heap_base


class TestTidDeterminism:
    def test_tid_function_of_parent_and_order(self):
        asm = Assembler()
        with asm.function("child"):
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r1", "child")
            asm.spawn("r2", "child")
            asm.join("r1")
            asm.join("r2")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        engine.run()
        regs = engine.contexts[1].registers
        assert regs[1] == 1 * 1024 + 1
        assert regs[2] == 1 * 1024 + 2

    def test_wake_deferred_requires_blocked(self):
        engine, _ = run_single(lambda a: a.nop())
        with pytest.raises(SimulationError):
            engine.wake_deferred(1)

    def test_grant_requires_blocked(self):
        engine, _ = run_single(lambda a: a.nop())
        with pytest.raises(SimulationError):
            engine.grant(1, ("sync",))
