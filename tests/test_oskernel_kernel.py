"""Simulated kernel: syscalls, wakeups, snapshot/restore."""

import pytest

from repro.errors import SyscallError
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_WORDS
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.net import Arrival
from repro.oskernel.syscalls import SyscallBlock, SyscallDone, SyscallKind


def make_kernel(files=None, arrivals=None, seed=0):
    setup = KernelSetup(files=files or {}, arrivals=arrivals or [], rand_seed=seed)
    kernel = Kernel(setup, heap_base=10 * PAGE_WORDS)
    mem = AddressSpace()
    mem.map_range(0, 4 * PAGE_WORDS)
    return kernel, mem


def call(kernel, mem, kind, *args, tid=1, now=0):
    return kernel.syscall(tid, kind, args, mem, now)


class TestFiles:
    def test_open_read_sequential(self):
        kernel, mem = make_kernel(files={0: [1, 2, 3, 4, 5]})
        fd = call(kernel, mem, SyscallKind.OPEN, 0).retval
        first = call(kernel, mem, SyscallKind.READ, fd, 8, 3)
        assert first.retval == 3
        assert mem.read_block(8, 3) == [1, 2, 3]
        assert first.writes == ((8, (1, 2, 3)),)
        second = call(kernel, mem, SyscallKind.READ, fd, 8, 3)
        assert second.retval == 2
        assert mem.read_block(8, 2) == [4, 5]

    def test_read_at_eof_returns_zero(self):
        kernel, mem = make_kernel(files={0: [1]})
        fd = call(kernel, mem, SyscallKind.OPEN, 0).retval
        call(kernel, mem, SyscallKind.READ, fd, 8, 5)
        assert call(kernel, mem, SyscallKind.READ, fd, 8, 5).retval == 0

    def test_write_appends(self):
        kernel, mem = make_kernel()
        fd = call(kernel, mem, SyscallKind.OPEN, 7).retval
        mem.write_block(8, [10, 20])
        assert call(kernel, mem, SyscallKind.WRITE, fd, 8, 2).retval == 2
        mem.write_block(8, [30])
        call(kernel, mem, SyscallKind.WRITE, fd, 8, 1)
        assert kernel.fs.file_contents(7) == [10, 20, 30]

    def test_close_invalidates_fd(self):
        kernel, mem = make_kernel(files={0: [1]})
        fd = call(kernel, mem, SyscallKind.OPEN, 0).retval
        call(kernel, mem, SyscallKind.CLOSE, fd)
        with pytest.raises(SyscallError):
            call(kernel, mem, SyscallKind.READ, fd, 8, 1)

    def test_two_fds_have_independent_offsets(self):
        kernel, mem = make_kernel(files={0: [1, 2, 3]})
        fd1 = call(kernel, mem, SyscallKind.OPEN, 0).retval
        fd2 = call(kernel, mem, SyscallKind.OPEN, 0).retval
        call(kernel, mem, SyscallKind.READ, fd1, 8, 2)
        assert call(kernel, mem, SyscallKind.READ, fd2, 12, 1).retval == 1
        assert mem.read(12) == 1


class TestNetwork:
    def test_accept_blocks_until_arrival(self):
        kernel, mem = make_kernel(arrivals=[Arrival(time=100, payload=(7, 8))])
        call(kernel, mem, SyscallKind.LISTEN)
        outcome = call(kernel, mem, SyscallKind.ACCEPT, 999, tid=5, now=0)
        assert isinstance(outcome, SyscallBlock)
        assert kernel.next_event_time() == 100
        wakeups = kernel.wakeups(100, mem)
        assert len(wakeups) == 1
        assert wakeups[0].tid == 5

    def test_accept_immediate_when_backlogged(self):
        kernel, mem = make_kernel(arrivals=[Arrival(time=0, payload=(1,))])
        call(kernel, mem, SyscallKind.LISTEN)
        outcome = call(kernel, mem, SyscallKind.ACCEPT, 999, now=5)
        assert isinstance(outcome, SyscallDone)

    def test_recv_and_send(self):
        kernel, mem = make_kernel(arrivals=[Arrival(time=0, payload=(4, 5, 6))])
        call(kernel, mem, SyscallKind.LISTEN)
        fd = call(kernel, mem, SyscallKind.ACCEPT, 999, now=1).retval
        recv = call(kernel, mem, SyscallKind.RECV, fd, 8, 10)
        assert recv.retval == 3
        assert mem.read_block(8, 3) == [4, 5, 6]
        mem.write_block(20, [99])
        call(kernel, mem, SyscallKind.SEND, fd, 20, 1)
        assert kernel.net.all_responses()[fd] == [99]

    def test_recv_drained_returns_zero(self):
        kernel, mem = make_kernel(arrivals=[Arrival(time=0, payload=(4,))])
        call(kernel, mem, SyscallKind.LISTEN)
        fd = call(kernel, mem, SyscallKind.ACCEPT, 999, now=1).retval
        call(kernel, mem, SyscallKind.RECV, fd, 8, 10)
        assert call(kernel, mem, SyscallKind.RECV, fd, 8, 10).retval == 0

    def test_fifo_accept_wakeups(self):
        kernel, mem = make_kernel(
            arrivals=[Arrival(time=10, payload=(1,)), Arrival(time=20, payload=(2,))]
        )
        call(kernel, mem, SyscallKind.LISTEN)
        call(kernel, mem, SyscallKind.ACCEPT, 999, tid=1)
        call(kernel, mem, SyscallKind.ACCEPT, 999, tid=2)
        wakeups = kernel.wakeups(25, mem)
        assert [w.tid for w in wakeups] == [1, 2]


class TestMisc:
    def test_time_returns_now(self):
        kernel, mem = make_kernel()
        assert call(kernel, mem, SyscallKind.TIME, now=1234).retval == 1234

    def test_rand_deterministic_per_seed(self):
        a, mem = make_kernel(seed=3)
        b, _ = make_kernel(seed=3)
        assert [call(a, mem, SyscallKind.RAND).retval for _ in range(5)] == [
            call(b, mem, SyscallKind.RAND).retval for _ in range(5)
        ]

    def test_getpid(self):
        kernel, mem = make_kernel()
        assert call(kernel, mem, SyscallKind.GETPID).retval == 1

    def test_alloc_maps_fresh_pages(self):
        kernel, mem = make_kernel()
        base = call(kernel, mem, SyscallKind.ALLOC, 10).retval
        mem.write(base + 9, 1)
        assert mem.read(base + 9) == 1

    def test_allocations_do_not_share_pages(self):
        kernel, mem = make_kernel()
        a = call(kernel, mem, SyscallKind.ALLOC, 3).retval
        b = call(kernel, mem, SyscallKind.ALLOC, 3).retval
        assert b // PAGE_WORDS > a // PAGE_WORDS

    def test_alloc_nonpositive_faults(self):
        kernel, mem = make_kernel()
        with pytest.raises(SyscallError):
            call(kernel, mem, SyscallKind.ALLOC, 0)

    def test_print_captures_output(self):
        kernel, mem = make_kernel()
        call(kernel, mem, SyscallKind.PRINT, 42)
        call(kernel, mem, SyscallKind.PRINT, 43)
        assert kernel.output == [42, 43]

    def test_sleep_blocks_and_wakes(self):
        kernel, mem = make_kernel()
        outcome = call(kernel, mem, SyscallKind.SLEEP, 50, tid=3, now=100)
        assert isinstance(outcome, SyscallBlock)
        assert kernel.next_event_time() == 150
        assert kernel.wakeups(149, mem) == []
        wakeups = kernel.wakeups(150, mem)
        assert [w.tid for w in wakeups] == [3]

    def test_yield_is_immediate(self):
        kernel, mem = make_kernel()
        assert call(kernel, mem, SyscallKind.YIELD).retval == 0


class TestSnapshot:
    def test_round_trip_preserves_everything(self):
        kernel, mem = make_kernel(
            files={0: [1, 2, 3]},
            arrivals=[Arrival(time=10, payload=(9,))],
            seed=7,
        )
        fd = call(kernel, mem, SyscallKind.OPEN, 0).retval
        call(kernel, mem, SyscallKind.READ, fd, 8, 1)
        call(kernel, mem, SyscallKind.PRINT, 5)
        rand_before = None
        state = kernel.snapshot()
        rand_before = call(kernel, mem, SyscallKind.RAND).retval
        read_before = call(kernel, mem, SyscallKind.READ, fd, 8, 1).retval

        kernel.restore(state)
        assert call(kernel, mem, SyscallKind.RAND).retval == rand_before
        assert call(kernel, mem, SyscallKind.READ, fd, 8, 1).retval == read_before
        assert kernel.output == [5]

    def test_restore_into_fresh_kernel(self):
        kernel, mem = make_kernel(files={0: [1, 2]})
        fd = call(kernel, mem, SyscallKind.OPEN, 0).retval
        call(kernel, mem, SyscallKind.READ, fd, 8, 1)
        state = kernel.snapshot()

        fresh = Kernel(KernelSetup(files={0: [1, 2]}), heap_base=10 * PAGE_WORDS)
        fresh.restore(state)
        assert call(fresh, mem, SyscallKind.READ, fd, 8, 1).retval == 1
        assert mem.read(8) == 2  # offset was mid-file

    def test_digest_tracks_output(self):
        kernel, mem = make_kernel()
        before = kernel.digest()
        call(kernel, mem, SyscallKind.PRINT, 1)
        assert kernel.digest() != before
