"""Memory and atomic instruction semantics."""

import pytest

from repro.errors import GuestFault
from tests.conftest import main_registers, run_single


class TestLoadStore:
    def test_global_store_load(self):
        def body(a):
            a.li("r1", 77)
            a.storeg("r1", "cell")
            a.loadg("r2", "cell")

        engine, _ = run_single(body, data=[("cell", 1, [0])])
        assert main_registers(engine)[2] == 77

    def test_indexed_load_store(self):
        def body(a):
            a.li("r1", "arr")
            a.li("r2", 5)
            a.store("r2", "r1", 2)
            a.load("r3", "r1", 2)
            a.load("r4", "r1", 0)

        engine, _ = run_single(body, data=[("arr", 4, [9, 9, 9, 9])])
        regs = main_registers(engine)
        assert regs[3] == 5
        assert regs[4] == 9

    def test_initial_data_visible(self):
        def body(a):
            a.loadg("r1", "init")

        engine, _ = run_single(body, data=[("init", 1, [123])])
        assert main_registers(engine)[1] == 123

    def test_null_load_faults(self):
        def body(a):
            a.li("r1", 0)
            a.load("r2", "r1", 0)

        with pytest.raises(GuestFault):
            run_single(body)

    def test_wild_store_faults(self):
        def body(a):
            a.li("r1", 1 << 40)
            a.store("r1", "r1", 0)

        with pytest.raises(GuestFault):
            run_single(body)


class TestAtomics:
    def test_fetchadd_returns_old_value(self):
        def body(a):
            a.li("r1", "cell")
            a.li("r2", 5)
            a.fetchadd("r3", "r1", 0, "r2")
            a.loadg("r4", "cell")

        engine, _ = run_single(body, data=[("cell", 1, [10])])
        regs = main_registers(engine)
        assert regs[3] == 10
        assert regs[4] == 15

    def test_cas_success(self):
        def body(a):
            a.li("r1", "cell")
            a.li("r2", 10)   # expected
            a.li("r3", 99)   # new
            a.cas("r4", "r1", 0, "r2", "r3")
            a.loadg("r5", "cell")

        engine, _ = run_single(body, data=[("cell", 1, [10])])
        regs = main_registers(engine)
        assert regs[4] == 1
        assert regs[5] == 99

    def test_cas_failure_leaves_memory(self):
        def body(a):
            a.li("r1", "cell")
            a.li("r2", 11)   # wrong expectation
            a.li("r3", 99)
            a.cas("r4", "r1", 0, "r2", "r3")
            a.loadg("r5", "cell")

        engine, _ = run_single(body, data=[("cell", 1, [10])])
        regs = main_registers(engine)
        assert regs[4] == 0
        assert regs[5] == 10

    def test_xchg(self):
        def body(a):
            a.li("r1", "cell")
            a.li("r2", 7)
            a.xchg("r3", "r1", 0, "r2")
            a.loadg("r4", "cell")

        engine, _ = run_single(body, data=[("cell", 1, [3])])
        regs = main_registers(engine)
        assert regs[3] == 3
        assert regs[4] == 7

    def test_atomic_increments_never_lost(self):
        """FETCHADD from many threads always sums exactly."""
        from repro.isa.assembler import Assembler
        from repro.machine import MachineConfig
        from tests.conftest import boot_multicore

        asm = Assembler()
        asm.word("total", 0)
        with asm.function("worker"):
            asm.li("r2", 0)
            asm.li("r3", "total")
            asm.li("r4", 1)
            asm.label("loop")
            asm.fetchadd("r5", "r3", 0, "r4")
            asm.addi("r2", "r2", 1)
            asm.blti("r2", 25, "loop")
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r10", "worker")
            asm.spawn("r11", "worker")
            asm.spawn("r12", "worker")
            asm.join("r10")
            asm.join("r11")
            asm.join("r12")
            asm.loadg("r1", "total")
            asm.exit_()
        image = asm.assemble()
        engine, _ = boot_multicore(image, MachineConfig(cores=3))
        engine.run()
        assert engine.contexts[1].registers[1] == 75


class TestPageCacheInvalidation:
    """The last-page software TLB must never outlive a snapshot boundary.

    The interpreter's LOAD/STORE fast paths hit ``AddressSpace``'s cached
    last page; ``snapshot()`` and ``from_snapshot()`` share pages by
    reference, so a cache entry surviving either would let a store mutate
    a page a checkpoint still owns.
    """

    def _space(self):
        from repro.memory.address_space import AddressSpace
        from repro.memory.layout import PAGE_WORDS

        space = AddressSpace()
        space.map_range(0, 2 * PAGE_WORDS)
        return space

    def test_snapshot_invalidates_store_cache(self):
        space = self._space()
        space.write(3, 10)  # primes the writable-page cache
        snap = space.snapshot()
        space.write(3, 20)
        assert snap.read(3) == 10, "store after snapshot leaked into it"
        assert space.read(3) == 20

    def test_snapshot_write_cows_exactly_once(self):
        space = self._space()
        space.write(3, 10)
        space.snapshot()
        before = space.cow_copies
        space.write(3, 20)
        space.write(4, 30)  # same page: second store must reuse the clone
        assert space.cow_copies == before + 1

    def test_from_snapshot_space_does_not_alias_cache(self):
        from repro.memory.address_space import AddressSpace

        space = self._space()
        space.write(3, 10)
        snap = space.snapshot()
        restored = AddressSpace.from_snapshot(snap)
        assert restored.read(3) == 10  # primes restored's read cache
        space.write(3, 99)  # COW in the original space
        assert restored.read(3) == 10, "restored space saw foreign write"
        restored.write(3, 55)
        assert space.read(3) == 99
        assert snap.read(3) == 10

    def test_guest_store_after_snapshot_preserved(self):
        """End to end: a STORE executed after an engine-level snapshot
        must not alter the snapshot's memory image."""
        def body(a):
            a.li("r1", 41)
            a.storeg("r1", "cell")
            a.li("r1", 42)
            a.storeg("r1", "cell")

        from tests.conftest import run_single

        engine, _ = run_single(body, data=[("cell", 1, [7])])
        # run_single already drove stores through the fast path; the data
        # page's final content must reflect the last store only.
        from repro.memory.layout import page_of

        heap_values = [
            value
            for page in engine.mem.pages.values()
            for value in page.words
            if value in (41, 42)
        ]
        assert heap_values == [42]
