"""Uniprocessor engine: capture, targets/parking, enforce-mode replay."""

import pytest

from repro.errors import DeadlockError, DivergenceSignal, ReplayError
from repro.exec.services import InjectedSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.assembler import Assembler
from repro.isa.context import ThreadStatus
from repro.machine.config import MachineConfig
from repro.record.schedule_log import ScheduleLog, Timeslice
from tests.conftest import boot_uniprocessor, counter_program, barrier_program


class TestCapture:
    def test_runs_to_completion(self):
        image = counter_program(workers=2, iters=10)
        engine, kernel = boot_uniprocessor(image, MachineConfig(cores=1))
        outcome = engine.run()
        assert outcome.status == "complete"
        assert kernel.output == [20]

    def test_schedule_total_ops_matches_retired(self):
        image = counter_program(workers=2, iters=10)
        engine, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        outcome = engine.run()
        total_retired = sum(ctx.retired for ctx in engine.contexts.values())
        assert outcome.schedule.total_ops() == total_retired

    def test_schedule_interleaves_threads(self):
        image = counter_program(workers=2, iters=40)
        engine, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        outcome = engine.run()
        tids = {s.tid for s in outcome.schedule}
        assert {1, 1025, 1026} <= tids

    def test_capture_is_deterministic(self):
        image = counter_program(workers=2, iters=15)
        a, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        b, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        assert a.run().schedule.to_plain() == b.run().schedule.to_plain()
        assert a.state_digest() == b.state_digest()

    def test_quantum_changes_schedule(self):
        image = counter_program(workers=2, iters=40)
        a, _ = boot_uniprocessor(image, MachineConfig(cores=1, quantum=100))
        b, _ = boot_uniprocessor(image, MachineConfig(cores=1, quantum=2000))
        sched_a = a.run().schedule
        sched_b = b.run().schedule
        assert len(sched_a) > len(sched_b)
        # ...but the final program state is identical for this data-race-free
        # program? No: lock-observation registers differ by schedule. Memory
        # output (the counter) does match:
        addr = image.address_of("counter")
        assert a.mem.read(addr) == b.mem.read(addr) == 80

    def test_deadlock_raises(self):
        asm = Assembler()
        asm.word("m", 0)
        with asm.function("child"):
            asm.li("r1", "m")
            asm.lock("r1")  # parent holds it forever
            asm.exit_()
        with asm.function("main"):
            asm.li("r1", "m")
            asm.lock("r1")
            asm.spawn("r2", "child")
            asm.join("r2")
            asm.exit_()
        engine, _ = boot_uniprocessor(asm.assemble(), MachineConfig(cores=1))
        with pytest.raises(DeadlockError):
            engine.run()

    def test_stop_check(self):
        image = counter_program(workers=2, iters=50)
        engine, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        outcome = engine.run(stop_check=lambda e: e.time >= 1000)
        assert outcome.status == "stopped"
        assert engine.time >= 1000

    def test_barrier_program_completes(self):
        image = barrier_program(workers=2, phases=3)
        engine, kernel = boot_uniprocessor(image, MachineConfig(cores=1))
        assert engine.run().status == "complete"
        # sum after 3 rounds of x -> 2x+1 on [1..8]
        expected = sum(((v * 2 + 1) * 2 + 1) * 2 + 1 for v in range(1, 9))
        assert kernel.output == [expected]


class TestTargets:
    def _start_and_boundary(self, iters=40):
        """Capture a mid-run boundary by running a twin engine."""
        image = counter_program(workers=2, iters=iters)
        probe, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        probe.run(stop_check=lambda e: e.time >= 1500)
        targets = {tid: ctx.retired for tid, ctx in probe.contexts.items()}
        return image, targets

    def test_threads_park_exactly_at_targets(self):
        image, targets = self._start_and_boundary()
        engine, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        engine.targets = targets
        outcome = engine.run()
        assert outcome.status == "complete"
        for tid, ctx in engine.contexts.items():
            assert ctx.retired == targets[tid]

    def test_divergent_targets_stall(self):
        """Impossible targets (thread can't reach) raise DivergenceSignal."""
        image = counter_program(workers=1, iters=2)
        engine, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        engine.targets = {1: 10_000, 1025: 10_000}
        with pytest.raises(DivergenceSignal):
            engine.run()

    def test_unexpected_spawn_is_divergence(self):
        image = counter_program(workers=2, iters=2)
        engine, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        engine.targets = {1: 100, 1025: 100}  # 1026 missing
        with pytest.raises(DivergenceSignal):
            engine.run()


class TestEnforce:
    def test_replaying_own_capture_reaches_same_state(self):
        image = counter_program(workers=2, iters=20)
        rec, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        outcome = rec.run()
        digest = rec.state_digest()

        rep, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        rep.run_schedule(outcome.schedule)
        assert rep.state_digest() == digest

    def test_replay_with_different_quantum_config_still_exact(self):
        """Enforce mode ignores its own quantum: the log rules."""
        image = counter_program(workers=2, iters=20)
        rec, _ = boot_uniprocessor(image, MachineConfig(cores=1, quantum=150))
        outcome = rec.run()
        rep, _ = boot_uniprocessor(image, MachineConfig(cores=1, quantum=9999))
        rep.run_schedule(outcome.schedule)
        assert rep.state_digest() == rec.state_digest()

    def test_unknown_thread_in_schedule(self):
        image = counter_program(workers=1, iters=1)
        rep, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        with pytest.raises(ReplayError):
            rep.run_schedule(ScheduleLog((Timeslice(tid=777, ops=1),)))

    def test_overlong_slice_detected(self):
        image = counter_program(workers=1, iters=1)
        rep, _ = boot_uniprocessor(image, MachineConfig(cores=1))
        with pytest.raises(ReplayError):
            rep.run_schedule(ScheduleLog((Timeslice(tid=1, ops=10_000),)))

    def test_fabricated_blocking_issue_detected(self):
        """A slice claiming the thread blocks where it cannot."""
        asm = Assembler()
        with asm.function("main"):
            asm.nop()
            asm.nop()
            asm.exit_()
        rep, _ = boot_uniprocessor(asm.assemble(), MachineConfig(cores=1))
        with pytest.raises(ReplayError):
            rep.run_schedule(
                ScheduleLog((Timeslice(tid=1, ops=1, ended_blocked=True),))
            )


class TestInjectedSyscalls:
    def test_time_values_replay_from_log(self):
        """TIME results must come from the log, not the replay clock."""
        from repro.oskernel.syscalls import SyscallKind

        asm = Assembler()
        with asm.function("main"):
            asm.work(500)
            asm.syscall("r1", SyscallKind.TIME, args=[])
            asm.exit_()
        image = asm.assemble()
        log = []
        rec, _ = boot_uniprocessor(image, MachineConfig(cores=1), log=log)
        outcome = rec.run()
        recorded_time = rec.contexts[1].registers[1]
        assert recorded_time >= 500

        injector = InjectedSyscalls(log)
        rep = UniprocessorEngine.boot(image, MachineConfig(cores=1), injector)
        rep.run_schedule(outcome.schedule)
        assert rep.contexts[1].registers[1] == recorded_time

    def test_log_exhaustion_parks_thread(self):
        from repro.oskernel.syscalls import SyscallKind

        asm = Assembler()
        with asm.function("main"):
            asm.syscall("r1", SyscallKind.TIME, args=[])
            asm.exit_()
        image = asm.assemble()
        engine = UniprocessorEngine.boot(
            image, MachineConfig(cores=1), InjectedSyscalls([])
        )
        with pytest.raises(DeadlockError):
            engine.run()
        assert engine.contexts[1].status == ThreadStatus.BLOCKED

    def test_kind_mismatch_raises_divergence(self):
        from repro.oskernel.syscalls import SyscallKind, SyscallRecord

        asm = Assembler()
        with asm.function("main"):
            asm.syscall("r1", SyscallKind.TIME, args=[])
            asm.exit_()
        image = asm.assemble()
        wrong = [SyscallRecord(tid=1, seq=0, kind=SyscallKind.RAND, retval=5)]
        engine = UniprocessorEngine.boot(
            image, MachineConfig(cores=1), InjectedSyscalls(wrong)
        )
        with pytest.raises(DivergenceSignal):
            engine.run()
