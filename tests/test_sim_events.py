"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek() is None
        assert queue.next_time() is None

    def test_push_pop_order_by_time(self):
        queue = EventQueue()
        queue.push(30, "c")
        queue.push(10, "a")
        queue.push(20, "b")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_push_order(self):
        queue = EventQueue()
        for index in range(5):
            queue.push(7, f"e{index}")
        assert [queue.pop().kind for _ in range(5)] == [f"e{i}" for i in range(5)]

    def test_payload_round_trip(self):
        queue = EventQueue()
        payload = {"tid": 3}
        queue.push(1, "io", payload)
        assert queue.pop().payload is payload

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(5, "x")
        assert queue.peek().kind == "x"
        assert len(queue) == 1

    def test_next_time(self):
        queue = EventQueue()
        queue.push(9, "later")
        queue.push(4, "sooner")
        assert queue.next_time() == 4

    def test_pop_ready_partitions_by_time(self):
        queue = EventQueue()
        queue.push(1, "a")
        queue.push(5, "b")
        queue.push(10, "c")
        ready = queue.pop_ready(5)
        assert [event.kind for event in ready] == ["a", "b"]
        assert queue.next_time() == 10

    def test_pop_ready_empty_when_nothing_due(self):
        queue = EventQueue()
        queue.push(10, "later")
        assert queue.pop_ready(9) == []
