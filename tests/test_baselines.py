"""Recording baselines: native, uniprocessor, CREW, value logging."""

from repro.baselines import (
    record_crew,
    record_uniprocessor,
    record_value_log,
    run_native,
)
from repro.baselines.crew import CrewInterceptor
from repro.baselines.value_log import ValueLogInterceptor
from repro.core import Replayer
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from repro.workloads import build_workload
from tests.conftest import counter_program


class TestNative:
    def test_runs_and_reports(self):
        image = counter_program(workers=2, iters=20)
        result = run_native(image, KernelSetup(), MachineConfig(cores=2))
        assert result.output == [40]
        assert result.duration > 0
        assert result.ops > 0

    def test_deterministic(self):
        image = counter_program(workers=2, iters=20)
        a = run_native(image, KernelSetup(), MachineConfig(cores=2))
        b = run_native(image, KernelSetup(), MachineConfig(cores=2))
        assert a.final_digest == b.final_digest
        assert a.duration == b.duration


class TestUniprocessorBaseline:
    def test_slower_than_native_for_cpu_bound(self):
        inst = build_workload("fft", workers=2, scale=2, seed=1)
        machine = MachineConfig(cores=2)
        native = run_native(inst.image, inst.setup, machine)
        uni = record_uniprocessor(
            build_workload("fft", workers=2, scale=2, seed=1).image,
            inst.setup,
            machine,
        )
        # W=2 CPU-bound: roughly 2x slowdown
        assert uni.duration > native.duration * 1.5

    def test_output_is_correct(self):
        image = counter_program(workers=2, iters=30)
        result = record_uniprocessor(image, KernelSetup(), MachineConfig(cores=2))
        assert result.output == [60]

    def test_recording_replays(self):
        image = counter_program(workers=2, iters=30)
        machine = MachineConfig(cores=2)
        result = record_uniprocessor(image, KernelSetup(), machine)
        replay = Replayer(image, machine).replay_sequential(result.recording)
        assert replay.verified

    def test_single_epoch_structure(self):
        image = counter_program(workers=2, iters=30)
        result = record_uniprocessor(image, KernelSetup(), MachineConfig(cores=2))
        assert result.recording.epoch_count() == 1
        assert result.recording.divergences() == 0


class TestCrew:
    def test_sharing_causes_faults(self):
        inst = build_workload("ocean", workers=2, scale=2, seed=1)
        crew = record_crew(inst.image, inst.setup, MachineConfig(cores=2))
        assert crew.faults > 0
        assert crew.log_bytes > 0

    def test_crew_slower_than_native(self):
        inst = build_workload("ocean", workers=2, scale=2, seed=1)
        machine = MachineConfig(cores=2)
        native = run_native(
            build_workload("ocean", workers=2, scale=2, seed=1).image,
            inst.setup,
            machine,
        )
        crew = record_crew(inst.image, inst.setup, machine)
        assert crew.duration > native.duration

    def test_fine_grained_sharing_worse_than_partitioned(self):
        """ocean (boundary sharing only) vs racy-counter (one hot word)."""
        ocean = build_workload("ocean", workers=2, scale=2, seed=1)
        hot = counter_program(workers=2, iters=200, locked=False, name="hot")
        machine = MachineConfig(cores=2)
        ocean_crew = record_crew(ocean.image, ocean.setup, machine)
        hot_crew = record_crew(hot, KernelSetup(), machine)
        hot_native = run_native(hot, KernelSetup(), machine)
        ocean_native = run_native(
            build_workload("ocean", workers=2, scale=2, seed=1).image,
            ocean.setup,
            machine,
        )
        hot_overhead = hot_crew.duration / hot_native.duration
        ocean_overhead = ocean_crew.duration / ocean_native.duration
        assert hot_overhead > ocean_overhead

    def test_interceptor_state_machine(self):
        crew = CrewInterceptor(fault_cost=10)
        # first touch: free
        assert crew(1, 100, True) == 0
        # same owner: free
        assert crew(1, 101, False) == 0
        # reader joins: downgrade fault
        assert crew(2, 100, False) == 10
        # second read by same reader: free
        assert crew(2, 100, False) == 0
        # writer upgrades: fault
        assert crew(2, 100, True) == 10
        # old owner reads: fault again
        assert crew(1, 100, False) == 10
        assert crew.faults == 3

    def test_private_pages_never_fault(self):
        crew = CrewInterceptor(fault_cost=10)
        for _ in range(10):
            assert crew(1, 100, True) == 0
            assert crew(2, 200, True) == 0
        assert crew.faults == 0


class TestValueLog:
    def test_shared_reads_logged(self):
        inst = build_workload("water", workers=2, scale=1, seed=1)
        result = record_value_log(inst.image, inst.setup, MachineConfig(cores=2))
        assert result.logged_reads > 0
        assert result.log_bytes == result.logged_reads * 16

    def test_private_reads_not_logged(self):
        interceptor = ValueLogInterceptor(entry_cost=3)
        interceptor(1, 100, True)
        assert interceptor(1, 100, False) == 0
        assert interceptor.logged_reads == 0

    def test_cross_thread_read_logged(self):
        interceptor = ValueLogInterceptor(entry_cost=3)
        interceptor(1, 100, True)
        assert interceptor(2, 100, False) == 3
        assert interceptor.logged_reads == 1

    def test_value_log_bigger_than_doubleplay_log(self):
        from repro.core import DoublePlayConfig, DoublePlayRecorder

        inst = build_workload("water", workers=2, scale=3, seed=1)
        machine = MachineConfig(cores=2)
        native = run_native(inst.image, inst.setup, machine)
        value = record_value_log(
            build_workload("water", workers=2, scale=3, seed=1).image,
            inst.setup,
            machine,
        )
        config = DoublePlayConfig(
            machine=machine, epoch_cycles=max(native.duration // 15, 500)
        )
        dp = DoublePlayRecorder(inst.image, inst.setup, config).record()
        # value logging records every shared read; DoublePlay's schedule log
        # is orders smaller (the paper's headline log-size claim)
        assert value.log_bytes > dp.recording.schedule_log_bytes()
