"""Forward recovery unit and integration tests."""

import pytest

from repro.checkpoint.manager import CheckpointManager
from repro.core.recovery import recover_epoch
from repro.errors import SimulationError
from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup
from tests.conftest import counter_program


def checkpoint_midway(image, workers=2, stop_at=700, setup=None, log=None):
    machine = MachineConfig(cores=workers)
    kernel = Kernel(setup or KernelSetup(), image.heap_base)
    engine = MulticoreEngine.boot(image, machine, LiveSyscalls(kernel, log or []))
    manager = CheckpointManager()
    engine.run(stop_check=lambda e: e.time >= stop_at)
    return machine, manager.take(engine, 1)


class TestRecoverEpoch:
    def test_produces_committed_checkpoint(self):
        image = counter_program(workers=2, iters=60)
        machine, start = checkpoint_midway(image)
        log = []
        result = recover_epoch(image, machine, KernelSetup(), start, 1500, log)
        assert result.committed.index == start.index + 1
        assert result.duration > 0
        assert result.schedule.total_ops() > 0

    def test_budget_bounds_re_execution(self):
        image = counter_program(workers=2, iters=200)
        machine, start = checkpoint_midway(image)
        short = recover_epoch(image, machine, KernelSetup(), start, 800, [])
        long = recover_epoch(image, machine, KernelSetup(), start, 4000, [])
        assert short.duration < long.duration
        assert not short.finished

    def test_finished_flag_on_completion(self):
        image = counter_program(workers=2, iters=10)
        machine, start = checkpoint_midway(image, stop_at=300)
        result = recover_epoch(image, machine, KernelSetup(), start, 10**6, [])
        assert result.finished

    def test_recovery_appends_syscall_records(self):
        image = counter_program(workers=2, iters=10)
        machine, start = checkpoint_midway(image, stop_at=300)
        log = []
        recover_epoch(image, machine, KernelSetup(), start, 10**6, log)
        # counter_program prints at the end -> at least one record
        assert any(r.kind.value == "print" for r in log)

    def test_recovery_collects_sync_order(self):
        image = counter_program(workers=2, iters=60)
        machine, start = checkpoint_midway(image)
        result = recover_epoch(image, machine, KernelSetup(), start, 2000, [])
        assert len(result.committed_sync.events) > 0

    def test_requires_kernel_state(self):
        image = counter_program(workers=2, iters=20)
        machine, start = checkpoint_midway(image)
        start.kernel_state = None
        with pytest.raises(SimulationError):
            recover_epoch(image, machine, KernelSetup(), start, 1000, [])

    def test_recovery_is_deterministic(self):
        image = counter_program(workers=2, iters=60)
        machine, start = checkpoint_midway(image)
        a = recover_epoch(image, machine, KernelSetup(), start, 1500, [])
        b = recover_epoch(image, machine, KernelSetup(), start, 1500, [])
        assert a.end_digest == b.end_digest
        assert a.schedule.to_plain() == b.schedule.to_plain()


class TestRecoveryEndToEnd:
    def test_racy_program_makes_progress_through_recoveries(self):
        """Heavily racy programs terminate: every recovery commits an epoch."""
        from repro.core import DoublePlayConfig, DoublePlayRecorder

        image = counter_program(workers=4, iters=80, locked=False, name="veryracy")
        config = DoublePlayConfig(
            machine=MachineConfig(cores=4), epoch_cycles=700
        )
        result = DoublePlayRecorder(image, KernelSetup(), config).record()
        assert result.recording.divergences() >= 3
        kernel = result.committed_kernel(KernelSetup(), image.heap_base)
        assert len(kernel.output) == 1  # program reached its final print

    def test_recovered_epochs_replay_like_any_other(self):
        from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer

        image = counter_program(workers=2, iters=80, locked=False, name="racy")
        config = DoublePlayConfig(machine=MachineConfig(cores=2), epoch_cycles=900)
        result = DoublePlayRecorder(image, KernelSetup(), config).record()
        assert any(e.recovered for e in result.recording.epochs)
        replayer = Replayer(image, MachineConfig(cores=2))
        single = [e.index for e in result.recording.epochs if e.recovered][0]
        assert replayer.replay_epoch(result.recording, single).verified

    def test_recovery_makespan_penalty(self):
        """Divergence costs show up in the record makespan."""
        from repro.core import DoublePlayConfig, DoublePlayRecorder
        from repro.baselines import run_native

        clean_image = counter_program(workers=2, iters=100, name="clean")
        racy_image = counter_program(workers=2, iters=100, locked=False, name="racy2")
        machine = MachineConfig(cores=2)
        config = DoublePlayConfig(machine=machine, epoch_cycles=1000)
        clean = DoublePlayRecorder(clean_image, KernelSetup(), config).record()
        racy = DoublePlayRecorder(racy_image, KernelSetup(), config).record()
        clean_native = run_native(clean_image, KernelSetup(), machine).duration
        racy_native = run_native(racy_image, KernelSetup(), machine).duration
        assert racy.recording.divergences() > 0
        assert racy.overhead_vs(racy_native) > clean.overhead_vs(clean_native)
