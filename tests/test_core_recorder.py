"""The DoublePlay recorder: epochs, commits, divergence handling."""

import pytest

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from tests.conftest import barrier_program, counter_program


def record(image, setup=None, workers=2, epoch_cycles=1200, **config_kw):
    config = DoublePlayConfig(
        machine=MachineConfig(cores=workers),
        epoch_cycles=epoch_cycles,
        **config_kw,
    )
    recorder = DoublePlayRecorder(image, setup or KernelSetup(), config)
    return recorder.record()


class TestRaceFreeRecording:
    def test_no_divergence_on_lock_counter(self):
        result = record(counter_program(workers=2, iters=60))
        assert result.recording.divergences() == 0
        assert result.recording.epoch_count() >= 3

    def test_no_divergence_on_barriers(self):
        result = record(barrier_program(workers=2, phases=6))
        assert result.recording.divergences() == 0

    def test_epoch_targets_are_monotone(self):
        result = record(counter_program(workers=2, iters=60))
        previous = {}
        for epoch in result.recording.epochs:
            for tid, target in epoch.targets.items():
                assert target >= previous.get(tid, 0)
            previous.update(epoch.targets)

    def test_final_digest_set(self):
        result = record(counter_program(workers=2, iters=40))
        assert result.recording.final_digest != 0

    def test_recording_deterministic(self):
        image = counter_program(workers=2, iters=40)
        a = record(image)
        b = record(image)
        assert a.makespan == b.makespan
        assert a.recording.final_digest == b.recording.final_digest
        assert [e.schedule.to_plain() for e in a.recording.epochs] == [
            e.schedule.to_plain() for e in b.recording.epochs
        ]

    def test_makespan_at_least_app_time(self):
        result = record(counter_program(workers=2, iters=60))
        assert result.makespan >= result.app_time - result.stats["checkpoint_cost"]

    def test_epoch_cycles_controls_epoch_count(self):
        image = counter_program(workers=2, iters=80)
        few = record(image, epoch_cycles=5000)
        many = record(image, epoch_cycles=800)
        assert many.recording.epoch_count() > few.recording.epoch_count()

    def test_committed_kernel_output_correct(self):
        image = counter_program(workers=2, iters=40)
        result = record(image)
        kernel = result.committed_kernel(KernelSetup(), image.heap_base)
        assert kernel.output == [80]

    def test_adaptive_epochs_start_short(self):
        image = counter_program(workers=2, iters=80)
        adaptive = record(image, epoch_cycles=2000, adaptive_epochs=True)
        fixed = record(image, epoch_cycles=2000, adaptive_epochs=False)
        first_adaptive = adaptive.recording.epochs[0].targets
        first_fixed = fixed.recording.epochs[0].targets
        assert sum(first_adaptive.values()) < sum(first_fixed.values())

    def test_no_spare_cores_costs_more(self):
        image = counter_program(workers=2, iters=80)
        spare = record(image, spare_cores=True)
        shared = record(image, spare_cores=False)
        assert shared.makespan > spare.makespan

    def test_stats_populated(self):
        result = record(counter_program(workers=2, iters=40))
        for key in ("divergences", "recoveries", "epochs", "checkpoint_cost",
                    "makespan", "app_time"):
            assert key in result.stats

    def test_overhead_vs_requires_positive_native(self):
        result = record(counter_program(workers=2, iters=40))
        with pytest.raises(ValueError):
            result.overhead_vs(0)


class TestRacyRecording:
    def _racy_image(self, iters=60):
        return counter_program(workers=2, iters=iters, locked=False, name="racy")

    def test_divergences_detected_and_recovered(self):
        result = record(self._racy_image())
        assert result.recording.divergences() >= 1
        assert result.stats["recoveries"] == result.recording.divergences()

    def test_recovered_epochs_marked(self):
        result = record(self._racy_image())
        recovered = [e for e in result.recording.epochs if e.recovered]
        assert len(recovered) == result.recording.divergences()

    def test_recovery_still_produces_replayable_recording(self):
        image = self._racy_image()
        result = record(image)
        replayer = Replayer(image, MachineConfig(cores=2))
        assert replayer.replay_sequential(result.recording).verified
        assert replayer.replay_parallel(result.recording).verified

    def test_racy_recording_commits_correct_result_range(self):
        image = self._racy_image(iters=60)
        result = record(image)
        kernel = result.committed_kernel(KernelSetup(), image.heap_base)
        assert 60 <= kernel.output[0] <= 120

    def test_hints_off_still_correct(self):
        image = counter_program(workers=2, iters=60)
        result = record(image, use_sync_hints=False)
        kernel = result.committed_kernel(KernelSetup(), image.heap_base)
        assert kernel.output == [120]
        replayer = Replayer(image, MachineConfig(cores=2))
        assert replayer.replay_sequential(result.recording).verified

    def test_hints_reduce_divergence_on_lock_heavy_code(self):
        image = counter_program(workers=3, iters=60)
        with_hints = record(image, workers=3, use_sync_hints=True)
        without = record(image, workers=3, use_sync_hints=False)
        assert with_hints.recording.divergences() == 0
        assert without.recording.divergences() >= with_hints.recording.divergences()

    def test_divergence_makes_recording_slower(self):
        clean = record(counter_program(workers=2, iters=60))
        racy = record(self._racy_image())
        # rollbacks cost time: racy overhead per epoch must exceed clean's
        assert racy.recording.divergences() > 0
        assert (
            racy.makespan / racy.app_time >= 1.0
        )


class TestServerRecording:
    def test_apache_records_and_validates(self):
        from repro.workloads import build_workload

        inst = build_workload("apache", workers=2, scale=3, seed=2)
        result = record(inst.image, inst.setup, epoch_cycles=1500)
        assert result.recording.divergences() == 0
        kernel = result.committed_kernel(inst.setup, inst.image.heap_base)
        assert inst.validate(kernel)

    def test_syscall_log_captures_inputs(self):
        from repro.workloads import build_workload

        inst = build_workload("pfscan", workers=2, scale=2, seed=2)
        result = record(inst.image, inst.setup, epoch_cycles=1500)
        kinds = {r.kind.value for r in result.recording.syscall_records}
        assert "read" in kinds and "open" in kinds
        data_words = sum(
            sum(len(words) for _, words in r.writes)
            for r in result.recording.syscall_records
        )
        assert data_words > 0
