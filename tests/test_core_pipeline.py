"""Timing composition: spare-core scheduling and the shared-core fluid model."""

import pytest

from repro.core.pipeline import (
    EpochTiming,
    schedule_shared_cores,
    schedule_spare_cores,
)


def epochs(spans, duration_factor=2, start=0):
    """Evenly spaced epochs: checkpoint k at start + k*span."""
    result = []
    t = start
    for index, span in enumerate(spans):
        result.append(
            EpochTiming(
                index=index,
                ready_time=t,
                boundary_time=t + span,
                duration=span * duration_factor,
            )
        )
        t += span
    return result


class TestSpareCores:
    def test_single_epoch(self):
        result = schedule_spare_cores(epochs([100]), workers=1, dispatch_cost=10)
        commit = result.commits[0]
        assert commit.start == 10
        assert commit.finish == 210  # max(start+200, boundary 100)

    def test_commit_waits_for_boundary(self):
        timing = [EpochTiming(index=0, ready_time=0, boundary_time=500, duration=50)]
        result = schedule_spare_cores(timing, workers=1, dispatch_cost=0)
        assert result.commits[0].finish == 500

    def test_pipelining_overlaps_epochs(self):
        result = schedule_spare_cores(
            epochs([100] * 6), workers=2, dispatch_cost=0
        )
        # steady state: commits spaced ~span apart, not duration apart
        finishes = [c.finish for c in result.commits]
        gaps = [b - a for a, b in zip(finishes, finishes[1:])]
        assert max(gaps) <= 200

    def test_makespan_is_last_commit(self):
        result = schedule_spare_cores(epochs([100] * 4), workers=2, dispatch_cost=0)
        assert result.makespan == max(c.finish for c in result.commits)

    def test_one_worker_serialises(self):
        result = schedule_spare_cores(epochs([100] * 4), workers=1, dispatch_cost=0)
        finishes = [c.finish for c in result.commits]
        assert finishes == sorted(finishes)
        # each epoch takes 200 on the single worker: total >= 800
        assert result.makespan >= 800

    def test_throttle_stall_when_executors_lag(self):
        # epochs take 10x their span: with 1 worker and inflight bound 1,
        # the thread-parallel run must stall
        result = schedule_spare_cores(
            epochs([100] * 6, duration_factor=10),
            workers=1,
            dispatch_cost=0,
            max_inflight=1,
        )
        assert result.throttle_stall > 0

    def test_no_stall_with_ample_capacity(self):
        result = schedule_spare_cores(
            epochs([100] * 6, duration_factor=1), workers=4, dispatch_cost=0
        )
        assert result.throttle_stall == 0

    def test_worker_free_carries_across_segments(self):
        result = schedule_spare_cores(
            epochs([100]), workers=2, dispatch_cost=0, worker_free=[1000, 1000]
        )
        assert result.commits[0].start >= 1000

    def test_empty_epoch_list(self):
        result = schedule_spare_cores([], workers=2, dispatch_cost=0, segment_start=50)
        assert result.makespan == 50
        assert result.commits == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            schedule_spare_cores([], workers=0, dispatch_cost=0)

    def test_mismatched_worker_free(self):
        with pytest.raises(ValueError):
            schedule_spare_cores([], workers=2, dispatch_cost=0, worker_free=[0])


class TestSharedCores:
    def test_sharing_dilates_completion(self):
        spare = schedule_spare_cores(epochs([100] * 4), workers=2, dispatch_cost=0)
        shared = schedule_shared_cores(
            epochs([100] * 4), tp_span=400, cores=2, dispatch_cost=0
        )
        assert shared.makespan > spare.makespan

    def test_no_spare_cores_roughly_doubles(self):
        """Running both executions on the app's cores costs ~2x."""
        spans = [100] * 10
        shared = schedule_shared_cores(
            epochs(spans), tp_span=1000, cores=2, dispatch_cost=0
        )
        assert 1.5 * 1000 <= shared.makespan <= 3.2 * 1000

    def test_all_epochs_commit(self):
        shared = schedule_shared_cores(
            epochs([100] * 5), tp_span=500, cores=2, dispatch_cost=0
        )
        assert [c.index for c in shared.commits] == [0, 1, 2, 3, 4]

    def test_empty(self):
        shared = schedule_shared_cores([], tp_span=0, cores=2, dispatch_cost=0)
        assert shared.commits == []

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            schedule_shared_cores([], tp_span=0, cores=0, dispatch_cost=0)

    def test_segment_start_offsets_everything(self):
        base = schedule_shared_cores(
            epochs([100] * 3), tp_span=300, cores=2, dispatch_cost=0
        )
        offset = schedule_shared_cores(
            epochs([100] * 3, start=5000),
            tp_span=300,
            cores=2,
            dispatch_cost=0,
            segment_start=5000,
        )
        assert offset.makespan >= base.makespan + 4900
