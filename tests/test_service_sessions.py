"""Record-as-a-service: multi-session coordination over one worker fleet.

Covers the service's four contracts:

1. **Determinism** — every session's recording is bit-identical to the
   same workload recorded solo at ``jobs=1``, no matter how many
   tenants interleave over the shared fleet (the golden-pinned slice
   lives in ``test_integration_matrix.py``).
2. **Isolation** — faults injected into one tenant exercise only that
   session's containment; other tenants' counters stay zero and their
   recordings stay identical. A pool-breaking crash costs neighbours
   wall-clock, never correctness.
3. **Flow control** — per-session lane credits bound each tenant's
   outstanding units (backpressure is measured, not silent), and the
   admission semaphore bounds concurrently-running sessions.
4. **Fleet economics** — digest-identical pages ship once fleet-wide;
   later tenants' dispatches omit what an earlier tenant shipped, and
   the accounting attributes the saved bytes.

Plus the regression test for the ``shared_pool`` module-global race:
concurrent ``shared_pool()`` / ``invalidate_shared_pool()`` callers
must never tear the same pool down twice or leak an orphan.
"""

import json
import threading

import pytest

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder
from repro.host import pool as host_pool
from repro.machine.config import MachineConfig
from repro.service import (
    FleetScheduler,
    RecordService,
    ServiceConfig,
    SessionRequest,
)
from repro.workloads import build_workload


def _canonical(plain: dict) -> str:
    return json.dumps(plain, sort_keys=True)


def _solo_plain(name: str, workers: int, scale: int, seed: int) -> dict:
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
        host_jobs=1,
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    return result.recording.to_plain()


# ---------------------------------------------------------------------------
# Determinism.
# ---------------------------------------------------------------------------


def test_concurrent_sessions_bit_identical_to_solo():
    combos = [("fft", 2, 1, 0), ("pbzip", 2, 1, 3), ("racy-counter", 2, 1, 7)]
    service = RecordService(ServiceConfig(jobs=2, max_active=len(combos)))
    requests = [
        SessionRequest(sid=f"s{i}", workload=n, workers=w, scale=sc, seed=sd)
        for i, (n, w, sc, sd) in enumerate(combos)
    ]
    report = service.run(requests)
    assert report.ok, [r.error for r in report.results]
    for result, (name, workers, scale, seed) in zip(report.results, combos):
        assert _canonical(result.recording_plain) == _canonical(
            _solo_plain(name, workers, scale, seed)
        ), f"{name}: service recording drifted from solo jobs=1"
        assert result.epochs >= 1
        assert result.metrics["service"]["units"] >= 1


def test_identical_tenants_identical_recordings():
    service = RecordService(ServiceConfig(jobs=2, max_active=4))
    requests = [
        SessionRequest(sid=f"s{i}", workload="fft", scale=1, seed=5)
        for i in range(4)
    ]
    report = service.run(requests)
    assert report.ok, [r.error for r in report.results]
    canon = _canonical(report.results[0].recording_plain)
    assert all(
        _canonical(r.recording_plain) == canon for r in report.results[1:]
    )


def test_replay_sessions_verify_recorded_sessions():
    service = RecordService(ServiceConfig(jobs=2, max_active=2))
    recorded = service.run(
        [SessionRequest(sid="rec", workload="pbzip", scale=1, seed=2)]
    )
    assert recorded.ok, [r.error for r in recorded.results]
    replayed = service.run(
        [
            SessionRequest(
                sid=f"rep{i}", workload="pbzip", scale=1, seed=2,
                kind="replay",
                recording_plain=recorded.results[0].recording_plain,
            )
            for i in range(2)
        ]
    )
    assert replayed.ok, [r.error for r in replayed.results]
    for result in replayed.results:
        assert result.verified is True
        assert result.epochs == recorded.results[0].epochs


def test_unknown_session_kind_fails_that_session_only():
    service = RecordService(ServiceConfig(jobs=2, max_active=2))
    report = service.run(
        [
            SessionRequest(sid="bad", workload="fft", scale=1, kind="bogus"),
            SessionRequest(sid="good", workload="fft", scale=1),
        ]
    )
    bad, good = report.results
    assert not bad.ok and "bogus" in bad.error
    assert good.ok and good.recording_plain is not None
    assert not report.ok


# ---------------------------------------------------------------------------
# Per-tenant fault isolation.
# ---------------------------------------------------------------------------


def test_fault_scoped_to_one_tenant_leaves_others_untouched():
    service = RecordService(ServiceConfig(jobs=2, max_active=3))
    report = service.run(
        [
            SessionRequest(sid="clean0", workload="fft", scale=1, seed=1,
                           faults=""),
            SessionRequest(sid="faulty", workload="fft", scale=1, seed=1,
                           faults="error:unit1"),
            SessionRequest(sid="clean1", workload="fft", scale=1, seed=1,
                           faults=""),
        ]
    )
    assert report.ok, [r.error for r in report.results]
    by_sid = {r.sid: r for r in report.results}
    faulty = by_sid["faulty"].metrics["faults"]
    assert faulty["task_errors"] >= 1, "injected fault never fired"
    for sid in ("clean0", "clean1"):
        counters = by_sid[sid].metrics["faults"]
        assert not any(counters.values()), (
            f"{sid} saw fault counters {counters} from another tenant"
        )
    canon = _canonical(by_sid["clean0"].recording_plain)
    for result in report.results:
        assert _canonical(result.recording_plain) == canon


def test_pool_breaking_crash_in_one_tenant_is_survivable_by_all():
    host_pool.shutdown_shared_pool()
    try:
        service = RecordService(ServiceConfig(jobs=2, max_active=3))
        report = service.run(
            [
                SessionRequest(sid="clean0", workload="fft", scale=1, seed=4,
                               faults=""),
                SessionRequest(sid="crasher", workload="fft", scale=1, seed=4,
                               faults="crash:unit1"),
                SessionRequest(sid="clean1", workload="fft", scale=1, seed=4,
                               faults=""),
            ]
        )
        assert report.ok, [r.error for r in report.results]
        by_sid = {r.sid: r for r in report.results}
        crasher = by_sid["crasher"].metrics["faults"]
        # crash + retry-crash + serial fallback is the worst case; at
        # minimum the injected crash fired and containment absorbed it.
        assert crasher["crashes"] >= 1
        assert crasher["serial_fallbacks"] >= 1
        # Recordings are identical regardless of which tenant crashed.
        canon = _canonical(by_sid["clean0"].recording_plain)
        for result in report.results:
            assert _canonical(result.recording_plain) == canon
        # Neighbours never have *injected* faults attributed; collateral
        # crash retries are possible (shared pool), serial fallbacks are
        # not (fallback only follows a same-unit repeat failure, and the
        # rebuilt pool runs clean units fine).
        for sid in ("clean0", "clean1"):
            assert by_sid[sid].metrics["faults"]["task_errors"] == 0
    finally:
        host_pool.shutdown_shared_pool()


# ---------------------------------------------------------------------------
# Flow control: lane backpressure and admission control.
# ---------------------------------------------------------------------------


def test_lane_credits_bound_outstanding_units():
    service = RecordService(
        ServiceConfig(jobs=2, max_active=2, queue_depth=1)
    )
    report = service.run(
        [SessionRequest(sid=f"s{i}", workload="pbzip", scale=1, seed=6)
         for i in range(2)]
    )
    assert report.ok, [r.error for r in report.results]
    for result in report.results:
        svc = result.metrics["service"]
        # pending + in-flight never exceeded the lane's credit depth.
        assert svc["queue_high_water"] <= 1
    assert report.fleet["queue_depth"] == 1


def test_admission_semaphore_bounds_active_sessions_and_measures_wait():
    service = RecordService(ServiceConfig(jobs=2, max_active=1))
    report = service.run(
        [SessionRequest(sid=f"s{i}", workload="fft", scale=1, seed=8)
         for i in range(3)]
    )
    assert report.ok, [r.error for r in report.results]
    waits = sorted(r.admission_wait for r in report.results)
    # With one admission slot, at least the last session queued behind
    # the full duration of an earlier one.
    assert waits[-1] > 0.0
    summary = report.summary()
    assert summary["admission_wait_max"] >= round(waits[-1], 6) - 1e-6
    assert summary["sessions"] == 3 and summary["ok"] == 3


# ---------------------------------------------------------------------------
# Fleet economics: cross-session blob dedup.
# ---------------------------------------------------------------------------


def test_cross_session_dedup_cuts_shipped_bytes():
    host_pool.shutdown_shared_pool()
    try:
        service = RecordService(ServiceConfig(jobs=2, max_active=1))
        # max_active=1 serializes the sessions, so the second tenant's
        # dispatches run strictly after the first shipped its pages.
        report = service.run(
            [SessionRequest(sid=f"s{i}", workload="fft", scale=1, seed=9)
             for i in range(2)]
        )
        assert report.ok, [r.error for r in report.results]
        first, second = (r.metrics["service"] for r in report.results)
        assert second["cross_session_hits"] >= 1, (
            "identical tenant never hit the fleet-wide blob cache"
        )
        assert second["cross_session_bytes_saved"] > 0
        assert second["bytes_shipped"] < first["bytes_shipped"]
        wire = report.fleet["wire"]
        assert wire["cross_session_hits"] >= second["cross_session_hits"]
        assert wire["cross_session_bytes_saved"] >= (
            second["cross_session_bytes_saved"]
        )
    finally:
        host_pool.shutdown_shared_pool()


# ---------------------------------------------------------------------------
# Fleet bookkeeping.
# ---------------------------------------------------------------------------


def test_fleet_rejects_duplicate_session_ids():
    fleet = FleetScheduler(jobs=1)
    fleet.register("twin")
    with pytest.raises(ValueError):
        fleet.register("twin")
    fleet.release("twin")
    fleet.register("twin")  # free again after release


def test_fleet_release_cancels_pending_tickets():
    fleet = FleetScheduler(jobs=1, queue_depth=4)
    dispatcher = fleet.register("s0")
    # No pump is running (fleet.start() never called), so submissions
    # just queue; release must cancel them and refund the credits.
    futures = [dispatcher.submit(lambda: None, None) for _ in range(3)]
    fleet.release("s0")
    assert all(f.cancelled() for f in futures)
    summary = fleet.summary()
    assert summary["units"] == 0


# ---------------------------------------------------------------------------
# Regression: the shared-pool module-global race.
# ---------------------------------------------------------------------------


class _FakePool:
    """Stands in for a spawned ProcessPoolExecutor (spawn cost: zero)."""

    def __init__(self, jobs):
        self.jobs = jobs
        self._broken = False
        self._processes = {}
        self.shutdowns = 0

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


def test_shared_pool_concurrent_callers_race(monkeypatch):
    """Hammer ``shared_pool``/``invalidate_shared_pool`` from many threads.

    Before the module lock, two callers could observe the same cached
    pool, both shut it down, and both install a fresh one — leaking an
    orphaned pool whose workers are never joined. With the lock, every
    retired pool is shut down exactly once and exactly one pool is live
    at the end.
    """
    host_pool.shutdown_shared_pool()
    created = []

    def fake_new_pool(jobs):
        pool = _FakePool(jobs)
        created.append(pool)
        return pool

    monkeypatch.setattr(host_pool, "_new_pool", fake_new_pool)
    errors = []
    start = threading.Barrier(8)

    def hammer(index):
        try:
            start.wait(timeout=10)
            for round_ in range(50):
                if (index + round_) % 3 == 0:
                    host_pool.invalidate_shared_pool()
                else:
                    # Growth requests force the drain-and-replace path.
                    pool = host_pool.shared_pool(1 + (index + round_) % 4)
                    assert isinstance(pool, _FakePool)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,), name=f"hammer-{i}")
        for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors

    live = [pool for pool in created if pool.shutdowns == 0]
    retired = [pool for pool in created if pool.shutdowns]
    # Exactly one pool survives (or none, if the last op invalidated),
    # and no retired pool was ever shut down twice.
    assert len(live) <= 1
    assert all(pool.shutdowns == 1 for pool in retired)
    host_pool.shutdown_shared_pool()
    assert all(pool.shutdowns <= 1 for pool in created)
