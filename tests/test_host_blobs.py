"""The content-addressed blob layer: encoding, caches, and the tracker.

Unit-level contracts under the wire protocol's parity guarantee: blob
encoding is exact (``-1`` and ``2**64 - 1`` are different pages), the
worker cache honours its byte budget and reports evictions, and the
coordinator's mirror of worker caches only ever errs on the side of
shipping more bytes.
"""

from __future__ import annotations

import pytest

from repro.checkpoint.checkpoint import Checkpoint
from repro.host.blobs import (
    BlobCache,
    WorkerCacheTracker,
    blob_cache_capacity,
    decode_blob_object,
)
from repro.memory.address_space import AddressSpace, MemorySnapshot
from repro.memory.blob import (
    TAG_PAGE_RAW,
    TAG_PAGE_WIDE,
    blob_digest,
    decode_blob,
    encode_object,
    encode_page_words,
)
from repro.memory.layout import PAGE_WORDS
from repro.memory.page import Page


# ----------------------------------------------------------------------
# Blob encoding
# ----------------------------------------------------------------------
def test_page_blob_roundtrip_raw():
    words = [i * 3 for i in range(PAGE_WORDS)]
    blob = encode_page_words(words)
    assert blob[:1] == TAG_PAGE_RAW
    kind, decoded = decode_blob(blob)
    assert kind == "page"
    assert decoded == words


def test_page_blob_roundtrip_wide_for_signed_words():
    words = [0] * PAGE_WORDS
    words[7] = -1
    blob = encode_page_words(words)
    assert blob[:1] == TAG_PAGE_WIDE
    kind, decoded = decode_blob(blob)
    assert kind == "page"
    assert decoded == words


def test_signed_and_unsigned_words_get_distinct_digests():
    # -1 and 2**64 - 1 are different page contents (``words ==``
    # distinguishes them even though the FNV page hash wraps both the
    # same way) — the wire must never conflate them.
    negative = [0] * PAGE_WORDS
    negative[0] = -1
    wrapped = [0] * PAGE_WORDS
    wrapped[0] = 2**64 - 1
    assert blob_digest(encode_page_words(negative)) != blob_digest(
        encode_page_words(wrapped)
    )


def test_object_blob_roundtrip():
    obj = (("lock", 3, 1), ("sem", 0, 2))
    kind, decoded = decode_blob(encode_object(obj))
    assert kind == "object"
    assert decoded == obj


def test_decode_blob_object_builds_pages():
    words = [11] * PAGE_WORDS
    page = decode_blob_object(encode_page_words(words))
    assert isinstance(page, Page)
    assert page.words == words
    assert page.refs == 1


def test_page_wire_blob_cached_and_invalidated_on_write():
    space = AddressSpace()
    space.map_addr(0)
    space.write(0, 42)
    page = next(iter(space.pages.values()))
    digest, blob = page.wire_blob()
    assert page.wire_blob() == (digest, blob)  # cached
    # A clone is content-equal, so the cache carries over...
    assert page.clone().wire_blob() == (digest, blob)
    # ...and any write invalidates it alongside the content hash.
    space.write(0, 43)
    written = next(iter(space.pages.values()))
    assert written.wire_blob()[0] != digest


# ----------------------------------------------------------------------
# Worker blob cache
# ----------------------------------------------------------------------
def _blob(tag: bytes, size: int) -> bytes:
    return encode_object(tag * size)


def test_blob_cache_lru_eviction_reports_digests():
    a, b, c = _blob(b"a", 100), _blob(b"b", 100), _blob(b"c", 100)
    cache = BlobCache(len(a) + len(b))
    assert cache.insert(1, a) == []
    assert cache.insert(2, b) == []
    assert cache.has(1) and cache.has(2)
    cache.get(1)  # refresh: 2 becomes least recently used
    assert cache.insert(3, c) == [2]
    assert cache.has(1) and cache.has(3) and not cache.has(2)
    assert cache.used_bytes == len(a) + len(c)
    assert cache.missing([1, 2, 3, 4]) == [2, 4]


def test_blob_cache_zero_capacity_never_retains():
    blob = _blob(b"x", 10)
    cache = BlobCache(0)
    # The blob is decoded but immediately reported as evicted, so the
    # coordinator's mirror nets to "worker holds nothing" — consistent.
    assert cache.insert(5, blob) == [5]
    assert len(cache) == 0 and cache.used_bytes == 0
    assert not cache.has(5)


def test_blob_cache_reinsert_refreshes_without_redecoding():
    blob = _blob(b"y", 10)
    cache = BlobCache(1024)
    cache.insert(7, blob)
    first = cache.get(7)
    assert cache.insert(7, blob) == []
    assert cache.get(7) is first
    assert cache.used_bytes == len(blob)


def test_blob_cache_capacity_env(monkeypatch):
    monkeypatch.delenv("REPRO_BLOB_CACHE_MB", raising=False)
    assert blob_cache_capacity() == 64 * 1024 * 1024
    monkeypatch.setenv("REPRO_BLOB_CACHE_MB", "8")
    assert blob_cache_capacity() == 8 * 1024 * 1024
    monkeypatch.setenv("REPRO_BLOB_CACHE_MB", "0.5")
    assert blob_cache_capacity() == 512 * 1024
    monkeypatch.setenv("REPRO_BLOB_CACHE_MB", "0")
    assert blob_cache_capacity() == 0
    monkeypatch.setenv("REPRO_BLOB_CACHE_MB", "junk")
    assert blob_cache_capacity() == 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Coordinator-side tracker
# ----------------------------------------------------------------------
def test_tracker_common_is_intersection_over_live_pids():
    tracker = WorkerCacheTracker()
    tracker.note_inserted(10, {1, 2, 3})
    tracker.note_inserted(11, {2, 3, 4})
    assert tracker.common([10, 11]) == {2, 3}
    # Any unknown pid means the omission rule cannot fire at all.
    assert tracker.common([10, 11, 12]) == set()
    assert tracker.common([]) == set()


def test_tracker_evictions_and_forgetting():
    tracker = WorkerCacheTracker()
    tracker.note_inserted(10, {1, 2, 3})
    tracker.note_evicted(10, {2, 99})  # unknown digests are a no-op
    assert tracker.common([10]) == {1, 3}
    tracker.forget_worker(10)
    assert tracker.common([10]) == set()


def test_tracker_prune_drops_dead_pids():
    tracker = WorkerCacheTracker()
    tracker.note_inserted(10, {1})
    tracker.note_inserted(11, {1})
    tracker.prune([11])
    assert tracker.common([10]) == set()
    assert tracker.common([11]) == {1}


# ----------------------------------------------------------------------
# Skeleton checkpoints end-to-end over the blob layer
# ----------------------------------------------------------------------
def _checkpoint(space: AddressSpace, index: int) -> Checkpoint:
    return Checkpoint(
        index=index, time=index * 100, memory=space.snapshot(), contexts={},
        sync_state=(),
    )


def test_wire_delta_carries_only_dirty_pages():
    space = AddressSpace()
    for addr in (0, 1 * PAGE_WORDS, 2 * PAGE_WORDS):
        space.map_addr(addr)
        space.write(addr, addr + 1)
    base = _checkpoint(space, 0)
    space.write(PAGE_WORDS, 777)  # dirty exactly one page
    space.map_addr(3 * PAGE_WORDS)
    space.write(3 * PAGE_WORDS, 9)  # and map a brand-new one
    nxt = _checkpoint(space, 1)

    delta = nxt.wire_delta(base)
    assert delta.is_delta
    assert set(delta.page_changes) == {1, 3}
    assert delta.page_drops == ()

    blobs = {}
    for checkpoint in (base, nxt):
        for page in checkpoint.memory.pages.values():
            digest, blob = page.wire_blob()
            blobs[digest] = blob

    import pickle

    shipped = pickle.loads(pickle.dumps((base.to_wire(), delta)))
    decoded = {}

    def resolve(digest):
        if digest not in decoded:
            decoded[digest] = decode_blob_object(blobs[digest])
        return decoded[digest]

    start = shipped[0].hydrate(resolve)
    boundary = shipped[1].hydrate(resolve, base_pages=start.memory.pages)
    assert start.digest() == base.digest()
    assert boundary.digest() == nxt.digest()
    # Clean pages hydrate to the *same* object in both checkpoints.
    assert start.memory.pages[0] is boundary.memory.pages[0]
    assert start.memory.pages[2] is boundary.memory.pages[2]
    assert start.memory.pages[1] is not boundary.memory.pages[1]


def test_wire_delta_records_unmapped_pages_as_drops():
    space = AddressSpace()
    for addr in (0, PAGE_WORDS):
        space.map_addr(addr)
        space.write(addr, 5)
    base = _checkpoint(space, 0)
    # The guest machine never unmaps today, but the delta encoding covers
    # it: build the boundary snapshot with page 1 gone.
    pruned = MemorySnapshot(
        {no: page for no, page in base.memory.pages.items() if no != 1}
    )
    nxt = Checkpoint(index=1, time=100, memory=pruned, contexts={}, sync_state=())
    delta = nxt.wire_delta(base)
    assert delta.page_drops == (1,)
    assert delta.page_changes == {}

    start = base.to_wire().hydrate(None)
    boundary = delta.hydrate(None)
    assert boundary is nxt  # coordinator shortcut
    # And through the worker path (no shortcuts):
    import pickle

    blobs = {p.wire_blob()[0]: p.wire_blob()[1] for p in base.memory.pages.values()}
    cold_base, cold_delta = pickle.loads(pickle.dumps((base.to_wire(), delta)))
    hydrated_base = cold_base.hydrate(lambda d: decode_blob_object(blobs[d]))
    hydrated = cold_delta.hydrate(
        lambda d: decode_blob_object(blobs[d]), base_pages=hydrated_base.memory.pages
    )
    assert 1 not in hydrated.memory.pages
    assert hydrated.digest() == nxt.digest()


def test_delta_hydration_without_base_raises():
    space = AddressSpace()
    space.map_addr(0)
    space.write(0, 1)
    base = _checkpoint(space, 0)
    space.write(0, 2)
    nxt = _checkpoint(space, 1)
    import pickle

    cold = pickle.loads(pickle.dumps(nxt.wire_delta(base)))
    with pytest.raises(ValueError):
        cold.hydrate(lambda d: None)
