"""Property test: random *structured* programs through the full pipeline.

Complements ``test_property_record_replay`` (flat action sequences) with
hypothesis-generated nested control flow — loops inside conditionals
inside critical sections — built with :class:`GuestBuilder`. Branch
conditions read shared lock-protected state, so thread control flow
genuinely depends on the interleaving, which is the hardest case for
epoch-boundary bookkeeping (different paths = different retired-op
meanings).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.isa.assembler import Assembler
from repro.isa.builder import GuestBuilder
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup

# A structured statement tree. Leaves are safe actions; interior nodes are
# control-flow constructs.
_leaf = st.one_of(
    st.tuples(st.just("work"), st.integers(min_value=1, max_value=25)),
    st.tuples(st.just("inc_shared")),     # lock-protected shared += 1
    st.tuples(st.just("atomic_bump")),    # fetchadd on a counter
    st.tuples(st.just("read_shared")),    # lock-protected read into private
)

_stmt = st.recursive(
    _leaf,
    lambda inner: st.one_of(
        st.tuples(
            st.just("loop"),
            st.integers(min_value=1, max_value=3),
            st.lists(inner, min_size=1, max_size=3),
        ),
        st.tuples(
            st.just("if_shared_ge"),
            st.integers(min_value=0, max_value=30),
            st.lists(inner, min_size=1, max_size=3),
        ),
    ),
    max_leaves=12,
)


def _emit(asm: Assembler, build: GuestBuilder, scope, private, statements):
    for statement in statements:
        kind = statement[0]
        if kind == "work":
            asm.work(statement[1])
        elif kind == "inc_shared":
            with build.critical("mutex"):
                tmp = scope.reg()
                asm.loadg(tmp, "shared")
                asm.addi(tmp, tmp, 1)
                asm.storeg(tmp, "shared")
                scope.release(tmp)
        elif kind == "atomic_bump":
            one = scope.reg(1)
            build.atomic_add("counter", one)
            scope.release(one)
        elif kind == "read_shared":
            with build.critical("mutex"):
                tmp = scope.reg()
                asm.loadg(tmp, "shared")
                asm.add(private, private, tmp)
                scope.release(tmp)
        elif kind == "loop":
            _, iters, body = statement
            counter = scope.reg()
            with build.for_range(counter, 0, iters):
                _emit(asm, build, scope, private, body)
            scope.release(counter)
        elif kind == "if_shared_ge":
            _, bound, body = statement
            observed = scope.reg()
            with build.critical("mutex"):
                asm.loadg(observed, "shared")
            # Branch on interleaving-dependent (but lock-protected) state.
            with build.if_ge(observed, bound):
                _emit(asm, build, scope, private, body)
            scope.release(observed)


def build_structured(statements, workers: int):
    asm = Assembler(name="structured")
    asm.word("mutex", 0)
    asm.word("shared", 0)
    asm.word("counter", 0)
    asm.word("sum", 0)
    build = GuestBuilder(asm)
    with asm.function("worker"):
        with build.scope() as scope:
            private = scope.reg(0)
            _emit(asm, build, scope, private, statements)
            build.atomic_add("sum", private)
        asm.exit_()
    with asm.function("main"):
        for index in range(workers):
            asm.spawn(f"r{20 + index}", "worker")
        for index in range(workers):
            asm.join(f"r{20 + index}")
        asm.exit_()
    return asm.assemble()


@settings(max_examples=20, deadline=None)
@given(
    statements=st.lists(_stmt, min_size=1, max_size=4),
    workers=st.integers(min_value=2, max_value=3),
    epoch_cycles=st.sampled_from([500, 1300]),
)
def test_structured_programs_record_and_replay(statements, workers, epoch_cycles):
    image = build_structured(statements, workers)
    machine = MachineConfig(cores=workers)
    config = DoublePlayConfig(machine=machine, epoch_cycles=epoch_cycles)
    result = DoublePlayRecorder(image, KernelSetup(), config).record()
    # interleaving-dependent control flow is still race-FREE here (all
    # shared reads are lock-protected), so no divergence is tolerated
    assert result.recording.divergences() == 0
    replayer = Replayer(image, machine)
    sequential = replayer.replay_sequential(result.recording)
    assert sequential.verified, sequential.details
    parallel = replayer.replay_parallel(result.recording)
    assert parallel.verified, parallel.details
