"""Checkpoints: capture, restore, resume-equivalence."""

from repro.checkpoint.manager import CheckpointManager
from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup
from tests.conftest import boot_multicore, counter_program


def run_to_midpoint(image, machine, setup=None):
    engine, kernel = boot_multicore(image, machine, setup)
    engine.run(stop_check=lambda e: e.time >= 800)
    return engine, kernel


class TestTake:
    def test_initial_checkpoint_has_main_thread(self):
        image = counter_program()
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        checkpoint = CheckpointManager().initial(engine)
        assert checkpoint.index == 0
        assert list(checkpoint.contexts) == [1]
        assert checkpoint.kernel_state is not None

    def test_take_charges_cores(self):
        image = counter_program(iters=50)
        engine, _ = run_to_midpoint(image, MachineConfig(cores=2))
        before = engine.quiesce()
        CheckpointManager().take(engine, 1)
        assert engine.time > before

    def test_checkpoint_contexts_are_copies(self):
        image = counter_program(iters=50)
        engine, _ = run_to_midpoint(image, MachineConfig(cores=2))
        checkpoint = CheckpointManager().take(engine, 1)
        frozen = {tid: ctx.retired for tid, ctx in checkpoint.contexts.items()}
        engine.run()
        assert {t: c.retired for t, c in checkpoint.contexts.items()} == frozen

    def test_checkpoint_memory_immutable(self):
        image = counter_program(iters=50)
        engine, _ = run_to_midpoint(image, MachineConfig(cores=2))
        checkpoint = CheckpointManager().take(engine, 1)
        frozen_hash = checkpoint.memory.content_hash()
        engine.run()
        assert checkpoint.memory.content_hash() == frozen_hash

    def test_targets_are_retired_counts(self):
        image = counter_program(iters=50)
        engine, _ = run_to_midpoint(image, MachineConfig(cores=2))
        checkpoint = CheckpointManager().take(engine, 1)
        assert checkpoint.targets() == {
            tid: ctx.retired for tid, ctx in checkpoint.contexts.items()
        }

    def test_digest_stable_and_content_sensitive(self):
        image = counter_program(iters=50)
        engine, _ = run_to_midpoint(image, MachineConfig(cores=2))
        manager = CheckpointManager()
        cp1 = manager.take(engine, 1)
        assert cp1.digest() == cp1.digest()
        engine.run(stop_check=lambda e: e.time >= engine.time + 300)
        cp2 = manager.take(engine, 2)
        assert cp1.digest() != cp2.digest()

    def test_discard_after_releases(self):
        image = counter_program(iters=50)
        engine, _ = run_to_midpoint(image, MachineConfig(cores=2))
        manager = CheckpointManager()
        cp1 = manager.take(engine, 1)
        engine.run(stop_check=lambda e: e.time >= engine.time + 200)
        manager.take(engine, 2)
        manager.discard_after(1)
        assert manager.taken == [cp1]


class TestResumeEquivalence:
    def _resume(self, image, machine, checkpoint, setup=None):
        kernel = Kernel(setup or KernelSetup(), image.heap_base)
        kernel.restore(checkpoint.kernel_state)
        engine = MulticoreEngine.from_checkpoint(
            image,
            machine,
            LiveSyscalls(kernel),
            memory_snapshot=checkpoint.memory,
            contexts=checkpoint.copy_contexts(),
            sync_state=checkpoint.sync_state,
            start_time=checkpoint.time,
        )
        engine.run()
        return engine, kernel

    def test_resume_produces_correct_semantic_result(self):
        """Checkpointing perturbs timing (quiesce + cost), so the resumed
        interleaving is a different *legal* execution — but program results
        must still be correct."""
        image = counter_program(workers=2, iters=40)
        machine = MachineConfig(cores=2)
        first, _ = run_to_midpoint(image, machine)
        checkpoint = CheckpointManager().take(first, 1)
        _, kernel = self._resume(image, machine, checkpoint)
        assert kernel.output == [80]

    def test_resume_is_deterministic(self):
        """Two resumes from the same checkpoint are bit-identical."""
        image = counter_program(workers=2, iters=40)
        machine = MachineConfig(cores=2)
        first, _ = run_to_midpoint(image, machine)
        checkpoint = CheckpointManager().take(first, 1)
        a, ka = self._resume(image, machine, checkpoint)
        b, kb = self._resume(image, machine, checkpoint)
        assert a.state_digest() == b.state_digest()
        assert ka.output == kb.output

    def test_resume_with_blocked_threads(self):
        """Checkpoint while a worker is blocked on the mutex; resume must
        keep the wait queue and finish correctly."""
        image = counter_program(workers=3, iters=30)
        machine = MachineConfig(cores=3)
        engine, _ = boot_multicore(image, machine)
        # stop at a point where contention is likely
        engine.run(stop_check=lambda e: e.time >= 300)
        checkpoint = CheckpointManager().take(engine, 1)

        kernel = Kernel(KernelSetup(), image.heap_base)
        kernel.restore(checkpoint.kernel_state)
        resumed = MulticoreEngine.from_checkpoint(
            image,
            machine,
            LiveSyscalls(kernel),
            memory_snapshot=checkpoint.memory,
            contexts=checkpoint.copy_contexts(),
            sync_state=checkpoint.sync_state,
            start_time=checkpoint.time,
        )
        resumed.run()
        assert kernel.output == [90]

    def test_resume_from_server_checkpoint(self):
        """Kernel state (pending arrivals, waiters) survives checkpointing:
        the resumed server still answers every request correctly."""
        from repro.workloads import build_workload

        inst = build_workload("apache", workers=2, scale=2, seed=3)
        machine = MachineConfig(cores=2)
        engine, _ = boot_multicore(inst.image, machine, inst.setup)
        engine.run(stop_check=lambda e: e.time >= 1500)
        assert not engine.all_exited()
        checkpoint = CheckpointManager().take(engine, 1)
        _, kernel = self._resume(inst.image, machine, checkpoint, inst.setup)
        assert inst.validate(kernel)
