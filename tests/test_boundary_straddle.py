"""Regression tests for operations straddling epoch boundaries.

The trickiest part of retired-op-count epoch boundaries is an op that the
thread-parallel run *issued* (or was even granted) before the boundary but
that retires after it: barrier arrivals (arrival counts others wait on),
condition waits (the atomic mutex release), lock/semaphore grants held in
flight. Each case below pins a configuration that historically stalled or
diverged spuriously before the corresponding fix.
"""

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from repro.workloads import build_workload


def record_clean(name, workers, scale, epoch_divisor=14, seed=1):
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    from repro.baselines import run_native

    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // epoch_divisor, 500),
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    replayer = Replayer(instance.image, machine)
    assert result.recording.divergences() == 0, (
        f"{name} W={workers} scale={scale}: spurious divergence"
    )
    assert instance.validate(
        result.committed_kernel(instance.setup, instance.image.heap_base)
    )
    assert replayer.replay_sequential(result.recording).verified
    assert replayer.replay_parallel(result.recording).verified
    return result


class TestCondwaitStraddle:
    def test_grant_pending_condwait_at_boundary(self):
        """A consumer granted its cond-reacquire right at a boundary must
        still *issue* the condwait in the epoch run (releasing the mutex),
        or producers stall behind a parked lock holder. (prodcons, W=3,
        scale=2 historically deadlocked the epoch executor.)"""
        record_clean("prodcons", workers=3, scale=2)

    def test_condvar_suite_across_configs(self):
        for workers in (2, 4):
            for scale in (1, 3):
                record_clean("prodcons", workers=workers, scale=scale)


class TestSemaphoreStraddle:
    def test_inherited_token_does_not_eat_future_turns(self):
        """A semaphore token granted before an epoch's capture begins must
        not consume the thread's *next* acquisition from the hint suffix.
        (prodcons-sem, W=3 historically stalled on exactly this.)"""
        record_clean("prodcons-sem", workers=3, scale=3)

    def test_take_drains_deferred_turns(self):
        """A successful P() advances the order; an already-deferred thread
        whose turn arrives must be granted from banked tokens. (W=4
        epoch 0 historically deadlocked with all threads deferred.)"""
        record_clean("prodcons-sem", workers=4, scale=3)


class TestBarrierStraddle:
    def test_grant_pending_barrier_arrivals(self):
        """Barrier release grants held across boundaries (water exercises
        arrivals straddling epochs heavily at short epoch lengths)."""
        record_clean("water", workers=3, scale=2, epoch_divisor=20)

    def test_fft_short_epochs(self):
        record_clean("fft", workers=4, scale=2, epoch_divisor=24)


class TestJoinAndIoStraddle:
    def test_join_granted_at_boundary(self):
        """Main's join grant straddling a boundary (fft, many epochs)."""
        record_clean("fft", workers=3, scale=1, epoch_divisor=10)

    def test_blocked_accept_across_boundaries(self):
        """Server workers blocked in the kernel across several epochs."""
        record_clean("apache", workers=3, scale=2, epoch_divisor=16)
