"""Structured guest-code builder tests (semantics via real runs)."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import Assembler
from repro.isa.builder import GuestBuilder
from repro.machine.config import MachineConfig
from repro.memory.layout import wrap_word
from tests.conftest import boot_multicore


def run_main(emit, data=()):
    asm = Assembler(name="builder-test")
    for symbol, length, values in data:
        asm.array(symbol, length, values=values)
    build = GuestBuilder(asm)
    with asm.function("main"):
        emit(asm, build)
        asm.exit_()
    engine, kernel = boot_multicore(asm.assemble(), MachineConfig(cores=1))
    engine.run()
    return engine.contexts[1].registers, kernel


class TestControlFlow:
    def test_for_range_counts(self):
        def emit(asm, build):
            with build.scope() as s:
                total = s.reg(0)
                i = s.reg()
                with build.for_range(i, 0, 10):
                    asm.addi(total, total, 2)
                asm.mov("r1", total)

        regs, _ = run_main(emit)
        assert regs[1] == 20

    def test_for_range_register_bound(self):
        def emit(asm, build):
            with build.scope() as s:
                bound = s.reg(7)
                total = s.reg(0)
                i = s.reg()
                with build.for_range(i, 2, bound):
                    asm.addi(total, total, 1)
                asm.mov("r1", total)

        regs, _ = run_main(emit)
        assert regs[1] == 5

    def test_nested_for_ranges(self):
        def emit(asm, build):
            with build.scope() as s:
                total = s.reg(0)
                i = s.reg()
                j = s.reg()
                with build.for_range(i, 0, 4):
                    with build.for_range(j, 0, 3):
                        asm.addi(total, total, 1)
                asm.mov("r1", total)

        regs, _ = run_main(emit)
        assert regs[1] == 12

    def test_while_true_with_break(self):
        def emit(asm, build):
            with build.scope() as s:
                n = s.reg(0)
                with build.while_true() as loop:
                    asm.addi(n, n, 1)
                    loop.break_if_ge(n, 6)
                asm.mov("r1", n)

        regs, _ = run_main(emit)
        assert regs[1] == 6

    def test_if_branches(self):
        def emit(asm, build):
            with build.scope() as s:
                x = s.reg(5)
                with build.if_zero(x):
                    asm.li("r1", 111)
                with build.if_nonzero(x):
                    asm.li("r2", 222)
                with build.if_ge(x, 5):
                    asm.li("r3", 333)
                with build.if_lt(x, 5):
                    asm.li("r1", 444)

        regs, _ = run_main(emit)
        assert regs[1] == 0
        assert regs[2] == 222
        assert regs[3] == 333


class TestRegisterScopes:
    def test_registers_recycled_across_scopes(self):
        asm = Assembler()
        build = GuestBuilder(asm)
        with build.scope() as s:
            first = s.reg()
        with build.scope() as s:
            second = s.reg()
        assert first == second  # reclaimed and reissued

    def test_pool_exhaustion_raises(self):
        asm = Assembler()
        build = GuestBuilder(asm)
        with pytest.raises(AssemblerError):
            with build.scope() as s:
                for _ in range(100):
                    s.reg()

    def test_release_foreign_register_rejected(self):
        asm = Assembler()
        build = GuestBuilder(asm)
        with build.scope() as s:
            with pytest.raises(AssemblerError):
                s.release("r9")


class TestIdioms:
    def test_checksum_array_matches_python(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]

        def emit(asm, build):
            build.checksum_array("r1", "data", len(values))

        regs, _ = run_main(emit, data=[("data", len(values), values)])
        expected = 0
        for value in values:
            expected = wrap_word(expected * 31 + value)
        assert regs[1] == expected

    def test_print_reg(self):
        def emit(asm, build):
            asm.li("r1", 99)
            build.print_reg("r1")

        _, kernel = run_main(emit)
        assert kernel.output == [99]

    def test_atomic_add(self):
        def emit(asm, build):
            asm.li("r1", 5)
            build.atomic_add("cell", "r1")
            build.atomic_add("cell", "r1")
            asm.loadg("r2", "cell")

        regs, _ = run_main(emit, data=[("cell", 1, [100])])
        assert regs[2] == 110

    def test_critical_section_end_to_end(self):
        """Two workers under build.critical never lose increments."""
        asm = Assembler(name="crit")
        asm.word("mutex", 0)
        asm.word("total", 0)
        build = GuestBuilder(asm)
        with asm.function("worker"):
            with build.scope() as s:
                i = s.reg()
                with build.for_range(i, 0, 30):
                    with build.critical("mutex"):
                        tmp = s.reg()
                        asm.loadg(tmp, "total")
                        asm.work(3)
                        asm.addi(tmp, tmp, 1)
                        asm.storeg(tmp, "total")
                        s.release(tmp)
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r20", "worker")
            asm.spawn("r21", "worker")
            asm.join("r20")
            asm.join("r21")
            asm.loadg("r1", "total")
            build.print_reg("r1")
            asm.exit_()
        engine, kernel = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        engine.run()
        assert kernel.output == [60]

    def test_barrier_idiom_end_to_end(self):
        asm = Assembler(name="bar")
        asm.word("barrier", 0)
        asm.array("cells", 2)
        build = GuestBuilder(asm)
        with asm.function("worker"):
            # r0 = index: write my cell, barrier, read the other
            with build.scope() as s:
                addr = s.reg()
                asm.li(addr, "cells")
                asm.add(addr, addr, "r0")
                val = s.reg()
                asm.addi(val, "r0", 10)
                asm.store(val, addr, 0)
                build.barrier("barrier", 2)
                other = s.reg(1)
                asm.sub(other, other, "r0")
                asm.li(addr, "cells")
                asm.add(addr, addr, other)
                asm.load(val, addr, 0)
                build.atomic_add("cells", val)  # fold into cell 0
            asm.exit_()
        with asm.function("main"):
            asm.li("r1", 0)
            asm.spawn("r20", "worker", args=["r1"])
            asm.li("r1", 1)
            asm.spawn("r21", "worker", args=["r1"])
            asm.join("r20")
            asm.join("r21")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        engine.run()


class TestBuilderRecordReplay:
    def test_builder_program_records_and_replays(self):
        """Programs written with the builder pass the full pipeline."""
        from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
        from repro.oskernel.kernel import KernelSetup

        asm = Assembler(name="builderdp")
        asm.word("mutex", 0)
        asm.word("total", 0)
        build = GuestBuilder(asm)
        with asm.function("worker"):
            with build.scope() as s:
                i = s.reg()
                with build.for_range(i, 0, 40):
                    with build.critical("mutex"):
                        tmp = s.reg()
                        asm.loadg(tmp, "total")
                        asm.addi(tmp, tmp, 1)
                        asm.storeg(tmp, "total")
                        s.release(tmp)
                    asm.work(8)
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r20", "worker")
            asm.spawn("r21", "worker")
            asm.join("r20")
            asm.join("r21")
            asm.loadg("r1", "total")
            build.print_reg("r1")
            asm.exit_()
        image = asm.assemble()
        machine = MachineConfig(cores=2)
        config = DoublePlayConfig(machine=machine, epoch_cycles=900)
        result = DoublePlayRecorder(image, KernelSetup(), config).record()
        assert result.recording.divergences() == 0
        kernel = result.committed_kernel(KernelSetup(), image.heap_base)
        assert kernel.output == [80]
        replayer = Replayer(image, machine)
        assert replayer.replay_sequential(result.recording).verified
        assert replayer.replay_parallel(result.recording).verified
