"""Unit and property tests for paged memory and copy-on-write snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GuestFault
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_WORDS, page_of


def make_space(words=None):
    space = AddressSpace()
    space.map_range(0, 4 * PAGE_WORDS)
    for addr, value in (words or {}).items():
        space.write(addr, value)
    return space


class TestBasicAccess:
    def test_read_written_value(self):
        space = make_space()
        space.write(10, 99)
        assert space.read(10) == 99

    def test_unwritten_words_are_zero(self):
        assert make_space().read(3) == 0

    def test_unmapped_read_faults(self):
        space = make_space()
        with pytest.raises(GuestFault):
            space.read(100 * PAGE_WORDS)

    def test_unmapped_write_faults(self):
        space = make_space()
        with pytest.raises(GuestFault):
            space.write(100 * PAGE_WORDS, 1)

    def test_from_data_maps_and_initialises(self):
        space = AddressSpace.from_data({70: 7, 130: 13})
        assert space.read(70) == 7
        assert space.read(130) == 13
        assert not space.dirty  # initialisation is not "dirtying"

    def test_block_round_trip(self):
        space = make_space()
        space.write_block(8, [1, 2, 3])
        assert space.read_block(8, 3) == [1, 2, 3]

    def test_map_range_spans_pages(self):
        space = AddressSpace()
        space.map_range(PAGE_WORDS - 1, 2)
        assert space.is_mapped(PAGE_WORDS - 1)
        assert space.is_mapped(PAGE_WORDS)


class TestCopyOnWrite:
    def test_snapshot_preserves_old_values(self):
        space = make_space({5: 50})
        snap = space.snapshot()
        space.write(5, 51)
        assert snap.read(5) == 50
        assert space.read(5) == 51

    def test_write_after_snapshot_copies_once_per_page(self):
        space = make_space()
        space.snapshot()
        space.write(0, 1)
        space.write(1, 2)  # same page: no second copy
        assert space.cow_copies == 1
        space.write(PAGE_WORDS, 3)  # different page
        assert space.cow_copies == 2

    def test_no_copy_without_snapshot(self):
        space = make_space()
        space.write(0, 1)
        assert space.cow_copies == 0

    def test_released_snapshot_stops_causing_copies(self):
        space = make_space()
        snap = space.snapshot()
        snap.release()
        space.write(0, 1)
        assert space.cow_copies == 0

    def test_release_is_idempotent(self):
        space = make_space()
        snap = space.snapshot()
        snap.release()
        snap.release()
        space.write(0, 1)
        assert space.cow_copies == 0

    def test_from_snapshot_view_is_isolated_both_ways(self):
        space = make_space({3: 30})
        snap = space.snapshot()
        view = AddressSpace.from_snapshot(snap)
        view.write(3, 99)
        space.write(4, 44)
        assert space.read(3) == 30
        assert view.read(3) == 99
        assert view.read(4) == 0

    def test_two_views_of_one_snapshot_are_isolated(self):
        space = make_space()
        snap = space.snapshot()
        a = AddressSpace.from_snapshot(snap)
        b = AddressSpace.from_snapshot(snap)
        a.write(0, 1)
        b.write(0, 2)
        assert a.read(0) == 1
        assert b.read(0) == 2
        assert snap.read(0) == 0

    def test_dirty_tracking_reset_by_snapshot(self):
        space = make_space()
        space.write(0, 1)
        assert page_of(0) in space.dirty
        space.snapshot()
        assert not space.dirty

    def test_take_dirty_clears(self):
        space = make_space()
        space.write(PAGE_WORDS + 1, 5)
        dirty = space.take_dirty()
        assert dirty == {1}
        assert not space.dirty


class TestComparison:
    def test_same_content_on_identical_spaces(self):
        a = make_space({1: 10, 64: 9})
        b = make_space({1: 10, 64: 9})
        assert a.same_content(b)
        assert a.content_hash() == b.content_hash()

    def test_different_values_detected(self):
        a = make_space({1: 10})
        b = make_space({1: 11})
        assert not a.same_content(b)
        assert a.content_hash() != b.content_hash()

    def test_different_mappings_detected(self):
        a = make_space()
        b = make_space()
        b.map_page(50)
        assert not a.same_content(b)

    def test_snapshot_hash_matches_space_hash(self):
        space = make_space({2: 22})
        snap = space.snapshot()
        assert snap.content_hash() == space.content_hash()

    def test_diff_pages(self):
        a = make_space({0: 1})
        b = make_space({0: 2, PAGE_WORDS: 7})
        differing, _ = a.diff_pages(b)
        assert differing == {0, 1}

    def test_hash_stable_after_cow_round_trip(self):
        space = make_space({0: 5})
        before = space.content_hash()
        snap = space.snapshot()
        space.write(0, 6)
        space.write(0, 5)
        assert space.content_hash() == before
        assert snap.content_hash() == before


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4 * PAGE_WORDS - 1),
            st.integers(min_value=-(2**40), max_value=2**40),
        ),
        max_size=40,
    ),
    snapshot_at=st.integers(min_value=0, max_value=40),
)
def test_property_snapshot_is_point_in_time(writes, snapshot_at):
    """A snapshot reads exactly what a dict model held at snapshot time."""
    space = make_space()
    model = {}
    snap = None
    frozen_model = None
    for index, (addr, value) in enumerate(writes):
        if index == snapshot_at:
            snap = space.snapshot()
            frozen_model = dict(model)
        space.write(addr, value)
        model[addr] = value
    if snap is None:
        snap = space.snapshot()
        frozen_model = dict(model)
    for addr in range(0, 4 * PAGE_WORDS, 7):
        assert snap.read(addr) == frozen_model.get(addr, 0)
    for addr, value in model.items():
        assert space.read(addr) == value


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2 * PAGE_WORDS - 1),
            st.integers(min_value=0, max_value=2**32),
        ),
        max_size=30,
    )
)
def test_property_content_hash_tracks_content(writes):
    """Two spaces receiving the same writes always hash identically."""
    a = make_space()
    b = make_space()
    for addr, value in writes:
        a.write(addr, value)
    b.snapshot()  # force COW paths on one side only
    for addr, value in writes:
        b.write(addr, value)
    assert a.content_hash() == b.content_hash()
    assert a.same_content(b)
