"""Direct unit tests for the simulated filesystem and network."""

import pytest

from repro.errors import SyscallError
from repro.oskernel.files import SimFileSystem
from repro.oskernel.net import Arrival, SimNetwork


class TestSimFileSystem:
    def test_open_creates_missing_file(self):
        fs = SimFileSystem({})
        fd = fs.open(9)
        assert fs.read(fd, 5) == []
        fs.write(fd, [1, 2])
        assert fs.file_contents(9) == [1, 2]

    def test_reads_advance_offset(self):
        fs = SimFileSystem({0: [1, 2, 3, 4]})
        fd = fs.open(0)
        assert fs.read(fd, 2) == [1, 2]
        assert fs.read(fd, 10) == [3, 4]
        assert fs.read(fd, 10) == []

    def test_negative_read_rejected(self):
        fs = SimFileSystem({0: [1]})
        fd = fs.open(0)
        with pytest.raises(SyscallError):
            fs.read(fd, -1)

    def test_unknown_fd_rejected(self):
        fs = SimFileSystem({})
        with pytest.raises(SyscallError):
            fs.read(99, 1)
        with pytest.raises(SyscallError):
            fs.write(99, [1])
        with pytest.raises(SyscallError):
            fs.close(99)

    def test_write_appends_not_overwrites(self):
        fs = SimFileSystem({0: [7]})
        fd = fs.open(0)
        fs.write(fd, [8])
        assert fs.file_contents(0) == [7, 8]

    def test_snapshot_round_trip_preserves_offsets(self):
        fs = SimFileSystem({0: [1, 2, 3]})
        fd = fs.open(0)
        fs.read(fd, 1)
        state = fs.snapshot()
        fs.read(fd, 2)
        fs.restore(state)
        assert fs.read(fd, 2) == [2, 3]

    def test_snapshot_is_deep(self):
        fs = SimFileSystem({0: [1]})
        fd = fs.open(0)
        state = fs.snapshot()
        fs.write(fd, [99])
        fs.restore(state)
        assert fs.file_contents(0) == [1]


class TestSimNetwork:
    def make(self, *times):
        return SimNetwork(
            [Arrival(time=t, payload=(t, t + 1)) for t in times]
        )

    def test_accept_before_listen_rejected(self):
        net = self.make(1)
        net.admit_arrivals(10)
        with pytest.raises(SyscallError):
            net.try_accept()

    def test_arrivals_admitted_by_time(self):
        net = self.make(10, 20, 30)
        assert net.admit_arrivals(15) == 1
        assert net.backlog_size() == 1
        assert net.admit_arrivals(30) == 2

    def test_next_arrival_time_progresses(self):
        net = self.make(10, 20)
        assert net.next_arrival_time() == 10
        net.admit_arrivals(10)
        assert net.next_arrival_time() == 20
        net.admit_arrivals(20)
        assert net.next_arrival_time() is None

    def test_accept_pops_fifo(self):
        net = self.make(1, 2)
        net.listen()
        net.admit_arrivals(5)
        first = net.try_accept()
        second = net.try_accept()
        assert net.recv(first, 10) == [1, 2]
        assert net.recv(second, 10) == [2, 3]
        assert net.try_accept() is None

    def test_recv_cursor(self):
        net = self.make(1)
        net.listen()
        net.admit_arrivals(1)
        fd = net.try_accept()
        assert net.recv(fd, 1) == [1]
        assert net.recv(fd, 5) == [2]
        assert net.recv(fd, 5) == []

    def test_unknown_fd_rejected(self):
        net = self.make()
        with pytest.raises(SyscallError):
            net.recv(5, 1)
        with pytest.raises(SyscallError):
            net.send(5, [1])

    def test_conversations_and_pending(self):
        net = self.make(1, 50)
        net.listen()
        net.admit_arrivals(10)
        fd = net.try_accept()
        net.send(fd, [42])
        conversations = net.all_conversations()
        assert conversations[fd] == ([1, 2], [42])
        assert net.pending_requests() == 1  # the t=50 arrival

    def test_snapshot_round_trip(self):
        net = self.make(1, 50)
        net.listen()
        net.admit_arrivals(10)
        fd = net.try_accept()
        net.recv(fd, 1)
        state = net.snapshot()
        net.recv(fd, 5)
        net.send(fd, [9])
        net.restore(state)
        assert net.recv(fd, 5) == [2]
        assert net.all_responses()[fd] == []
        # un-admitted arrivals still pending after restore
        assert net.next_arrival_time() == 50
