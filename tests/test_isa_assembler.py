"""Unit tests for the assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import Assembler
from repro.isa.instructions import Op
from repro.memory.layout import DATA_BASE, PAGE_WORDS


def trivial():
    asm = Assembler()
    with asm.function("main"):
        asm.exit_()
    return asm


class TestDataSegment:
    def test_word_allocates_sequentially(self):
        asm = trivial()
        first = asm.word("a", 1)
        second = asm.word("b", 2)
        assert first == DATA_BASE
        assert second == DATA_BASE + 1

    def test_array_with_values_and_fill(self):
        asm = trivial()
        base = asm.array("arr", 4, fill=9, values=[1, 2])
        image = asm.assemble()
        assert [image.data[base + i] for i in range(4)] == [1, 2, 9, 9]

    def test_duplicate_symbol_rejected(self):
        asm = trivial()
        asm.word("x")
        with pytest.raises(AssemblerError):
            asm.word("x")

    def test_zero_length_array_rejected(self):
        with pytest.raises(AssemblerError):
            trivial().array("z", 0)

    def test_too_many_values_rejected(self):
        with pytest.raises(AssemblerError):
            trivial().array("z", 1, values=[1, 2])

    def test_page_aligned_array(self):
        asm = trivial()
        asm.word("pad")
        base = asm.page_aligned_array("big", 3, values=[5])
        assert base % PAGE_WORDS == 0
        assert asm.assemble().data[base] == 5

    def test_address_of(self):
        asm = trivial()
        base = asm.word("here")
        assert asm.address_of("here") == base

    def test_address_of_unknown_raises(self):
        with pytest.raises(AssemblerError):
            trivial().address_of("nope")

    def test_heap_base_past_data(self):
        asm = trivial()
        asm.array("arr", 100)
        image = asm.assemble()
        assert image.heap_base > asm.address_of("arr") + 99
        assert image.heap_base % PAGE_WORDS == 0


class TestLabels:
    def test_forward_reference_resolves(self):
        asm = Assembler()
        with asm.function("main"):
            asm.jmp("end")
            asm.nop()
            asm.label("end")
            asm.exit_()
        image = asm.assemble()
        assert image.code[0].op is Op.JMP
        assert image.code[0].a == 2

    def test_labels_are_function_local(self):
        asm = Assembler()
        with asm.function("f"):
            asm.label("spot")
            asm.jmp("spot")
            asm.exit_()
        with asm.function("main"):
            asm.label("spot")
            asm.jmp("spot")
            asm.exit_()
        image = asm.assemble()
        # each jmp targets its own function's label
        assert image.code[0].a == 0
        assert image.code[2].a == 2

    def test_function_names_visible_everywhere(self):
        asm = Assembler()
        with asm.function("helper"):
            asm.ret()
        with asm.function("main"):
            asm.call("helper")
            asm.exit_()
        assert asm.assemble().code[1].a == 0

    def test_unknown_label_raises_at_assemble(self):
        asm = Assembler()
        with asm.function("main"):
            asm.jmp("nowhere")
            asm.exit_()
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        with asm.function("main"):
            asm.label("dup")
            with pytest.raises(AssemblerError):
                asm.label("dup")

    def test_nested_function_rejected(self):
        asm = Assembler()
        with asm.function("main"):
            with pytest.raises(AssemblerError):
                with asm.function("inner"):
                    pass
            asm.exit_()

    def test_missing_entry_rejected(self):
        asm = Assembler()
        with asm.function("notmain"):
            asm.exit_()
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_custom_entry(self):
        asm = Assembler()
        with asm.function("start"):
            asm.exit_()
        image = asm.assemble(entry="start")
        assert image.entry == 0


class TestOperands:
    def test_register_names_and_indices(self):
        asm = Assembler()
        with asm.function("main"):
            asm.li("r3", 1)
            asm.li(4, 2)
            asm.exit_()
        image = asm.assemble()
        assert image.code[0].a == 3
        assert image.code[1].a == 4

    def test_register_out_of_range(self):
        asm = Assembler(registers=8)
        with asm.function("main"):
            with pytest.raises(AssemblerError):
                asm.li("r8", 0)
            asm.exit_()

    def test_bad_register_name(self):
        asm = Assembler()
        with asm.function("main"):
            with pytest.raises(AssemblerError):
                asm.li("x1", 0)
            asm.exit_()

    def test_symbol_as_immediate(self):
        asm = Assembler()
        base = asm.word("target", 0)
        with asm.function("main"):
            asm.li("r1", "target")
            asm.loadg("r2", "target")
            asm.exit_()
        image = asm.assemble()
        assert image.code[0].b == base
        assert image.code[1].b == base

    def test_unknown_symbol_immediate_raises(self):
        asm = Assembler()
        with asm.function("main"):
            asm.li("r1", "ghost")
            asm.exit_()
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_spawn_arg_limit(self):
        asm = Assembler()
        with asm.function("main"):
            with pytest.raises(AssemblerError):
                asm.spawn("r1", "main", args=["r1"] * 5)
            asm.exit_()

    def test_syscall_arg_limit(self):
        from repro.oskernel.syscalls import SyscallKind

        asm = Assembler()
        with asm.function("main"):
            with pytest.raises(AssemblerError):
                asm.syscall("r1", SyscallKind.TIME, args=["r1"] * 4)
            asm.exit_()

    def test_work_must_be_positive(self):
        asm = Assembler()
        with asm.function("main"):
            with pytest.raises(AssemblerError):
                asm.work(0)
            asm.exit_()

    def test_too_few_registers_rejected(self):
        with pytest.raises(AssemblerError):
            Assembler(registers=2)
