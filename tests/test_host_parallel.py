"""Host-parallel execution: bit-identical results, structured failures.

``host_jobs`` may change only wall-clock time. Every recording byte,
digest and simulated-time metric must be identical at any jobs count —
these tests compare jobs=2 directly against the serial path (the full
28-config golden matrix additionally runs through the parallel path in
the ``REPRO_TEST_JOBS=2`` CI leg).
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import run_native
from repro.core import (
    DoublePlayConfig,
    DoublePlayRecorder,
    ReplayFailure,
    Replayer,
)
from repro.core.pipeline import schedule_host_units
from repro.cli import main as cli_main
from repro.machine.config import MachineConfig
from repro.workloads import build_workload


def run_cli(*argv):
    import io

    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def _build(name, workers, scale=2, seed=11):
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine, epoch_cycles=max(native.duration // 12, 500)
    )
    return instance, machine, config


def _record(name, workers, jobs):
    instance, machine, config = _build(name, workers)
    recorder = DoublePlayRecorder(
        instance.image, instance.setup, config.replace(host_jobs=jobs)
    )
    return instance, machine, recorder.record()


# ----------------------------------------------------------------------
# Record determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,workers,jobs",
    [
        ("pbzip", 2, 2),
        ("pbzip", 2, 4),
        ("fft", 3, 2),
        ("racy-counter", 2, 2),  # exercises divergence + cancel + recovery
        ("prodcons-sem", 3, 2),
    ],
)
def test_record_jobs_bit_identical(name, workers, jobs):
    _, _, serial = _record(name, workers, jobs=1)
    _, _, parallel = _record(name, workers, jobs=jobs)

    assert json.dumps(parallel.recording.to_plain(), sort_keys=True) == json.dumps(
        serial.recording.to_plain(), sort_keys=True
    ), f"{name}: recording bytes differ at jobs={jobs}"
    assert parallel.makespan == serial.makespan
    assert parallel.tp_finish == serial.tp_finish
    assert parallel.app_time == serial.app_time
    assert parallel.stats == serial.stats
    assert parallel.recording.final_digest == serial.recording.final_digest
    assert [e.end_digest for e in parallel.recording.epochs] == [
        e.end_digest for e in serial.recording.epochs
    ]
    # Host accounting reflects what actually ran, and never leaks into
    # the recording itself.
    assert serial.host == {"jobs": 1}
    assert parallel.host["jobs"] == jobs
    assert parallel.host["units"] >= parallel.recording.epoch_count() - parallel.stats[
        "recoveries"
    ]
    assert "host" not in parallel.recording.stats


def test_record_divergence_cancels_and_recovers_identically():
    _, _, serial = _record("racy-counter", 3, jobs=1)
    _, _, parallel = _record("racy-counter", 3, jobs=2)
    assert serial.stats["divergences"] > 0  # the workload actually diverges
    assert parallel.stats == serial.stats
    assert [e.recovered for e in parallel.recording.epochs] == [
        e.recovered for e in serial.recording.epochs
    ]


# ----------------------------------------------------------------------
# Fault slice: a misbehaving worker changes accounting, never results.
# (tests/test_host_faults.py covers the full containment matrix.)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec,counter",
    [("crash:unit1", "crashes"), ("error:unit1", "task_errors")],
)
def test_record_jobs_bit_identical_under_faults(monkeypatch, spec, counter):
    _, _, serial = _record("pbzip", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT", spec)
    _, _, faulted = _record("pbzip", 2, jobs=4)
    assert json.dumps(faulted.recording.to_plain(), sort_keys=True) == json.dumps(
        serial.recording.to_plain(), sort_keys=True
    ), f"recording bytes differ under injected {spec}"
    assert faulted.stats == serial.stats
    assert faulted.makespan == serial.makespan
    assert faulted.host["faults"][counter] >= 1
    assert faulted.host["faults"]["serial_fallbacks"] >= 1


# ----------------------------------------------------------------------
# Replay determinism + structured failure details
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,workers", [("pbzip", 2), ("fft", 3)])
def test_replay_parallel_jobs_bit_identical(name, workers):
    instance, machine, result = _record(name, workers, jobs=1)
    replayer = Replayer(instance.image, machine)
    serial = replayer.replay_parallel(result.recording)
    parallel = replayer.replay_parallel(result.recording, jobs=2)
    assert parallel.verified and serial.verified
    assert parallel.total_cycles == serial.total_cycles
    assert parallel.makespan == serial.makespan
    assert parallel.epochs_replayed == serial.epochs_replayed
    assert parallel.workers == serial.workers
    assert (serial.jobs, parallel.jobs) == (1, 2)
    assert parallel.host["jobs"] == 2
    assert len(parallel.host["unit_cpu"]) == parallel.epochs_replayed


@pytest.mark.parametrize("jobs", [1, 2])
def test_replay_failure_reports_epoch_index(jobs):
    instance, machine, result = _record("fft", 2, jobs=1)
    recording = result.recording
    victim = recording.epochs[2]
    original = victim.end_digest
    victim.end_digest = original ^ 0xDEAD
    try:
        outcome = Replayer(instance.image, machine).replay_parallel(
            recording, jobs=jobs
        )
    finally:
        victim.end_digest = original
    assert not outcome.verified
    assert len(outcome.details) == 1
    failure = outcome.details[0]
    assert isinstance(failure, ReplayFailure)
    assert failure.epoch == victim.index
    assert "digest mismatch" in failure.message
    assert str(failure).startswith(f"epoch {victim.index} ")


def test_sequential_replay_failures_are_structured():
    instance, machine, result = _record("fft", 2, jobs=1)
    recording = result.recording
    recording.final_digest ^= 1
    outcome = Replayer(instance.image, machine).replay_sequential(recording)
    recording.final_digest ^= 1
    assert not outcome.verified
    assert isinstance(outcome.details[0], ReplayFailure)
    assert outcome.details[0].epoch is None
    assert str(outcome.details[0]) == "final state digest mismatch"


def test_replay_result_surfaces_workers():
    instance, machine, result = _record("fft", 2, jobs=1)
    replayer = Replayer(instance.image, machine)
    bounded = replayer.replay_parallel(result.recording, workers=3)
    assert bounded.workers == 3
    unbounded = replayer.replay_parallel(result.recording)
    assert unbounded.workers == result.recording.epoch_count()
    assert replayer.replay_sequential(result.recording).workers == 1


# ----------------------------------------------------------------------
# Config + CLI threading
# ----------------------------------------------------------------------
def test_host_jobs_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_JOBS", "3")
    assert DoublePlayConfig().host_jobs == 3
    monkeypatch.setenv("REPRO_TEST_JOBS", "not-a-number")
    assert DoublePlayConfig().host_jobs == 1
    monkeypatch.delenv("REPRO_TEST_JOBS")
    assert DoublePlayConfig().host_jobs == 1
    assert DoublePlayConfig(host_jobs=4).resolve_host_jobs() == 4
    assert DoublePlayConfig(host_jobs=0).resolve_host_jobs() == 1


def test_cli_record_jobs(tmp_path):
    path = tmp_path / "rec.json"
    code, out = run_cli(
        "record", "fft", "--scale", "2", "--seed", "11",
        "--jobs", "2", "-o", str(path),
    )
    assert code == 0
    assert "recorded fft" in out
    code_serial, _ = run_cli(
        "record", "fft", "--scale", "2", "--seed", "11",
        "-o", str(tmp_path / "serial.json"),
    )
    assert code_serial == 0
    parallel = json.loads(path.read_text())
    serial = json.loads((tmp_path / "serial.json").read_text())
    assert parallel == serial  # saved artefacts identical at any jobs count


def test_cli_replay_jobs(tmp_path):
    path = tmp_path / "rec.json"
    code, _ = run_cli(
        "record", "fft", "--scale", "2", "--seed", "11", "-o", str(path)
    )
    assert code == 0
    code, out = run_cli("replay", str(path), "--jobs", "2")
    assert code == 0
    assert "parallel[jobs=2] replay" in out
    assert "verified" in out


# ----------------------------------------------------------------------
# The host-unit list scheduler (benchmark model)
# ----------------------------------------------------------------------
def test_schedule_host_units():
    assert schedule_host_units([], 4) == 0.0
    assert schedule_host_units([5.0], 4) == 5.0
    # 4 equal units on 2 workers: two per worker.
    assert schedule_host_units([1.0] * 4, 2) == 2.0
    # In-order greedy: [3,1,1,1] on 2 workers → slots (3, 1+1+1).
    assert schedule_host_units([3.0, 1.0, 1.0, 1.0], 2) == 3.0
    with pytest.raises(ValueError):
        schedule_host_units([1.0], 0)
