"""Host-pool fault tolerance: crashes, hangs, and worker exceptions.

The epoch-parallel attempt is disposable by design, so a host fault must
never change an observable result — only wall-clock time and the host
accounting. Every test here injects a deterministic fault (via
``REPRO_FAULT``, see :mod:`repro.host.faults`), lets the containment
policy (retry once, then serial fallback) finish the run, and asserts the
recording or replay verdict is bit-identical to the clean ``jobs=1``
path, with the failure counters reporting what happened.

Also covers the pool-management regressions: a broken shared pool used
to be cached (and returned, broken) forever; growing the pool used to
cancel in-flight units; spawning workers used to leak ``PYTHONPATH``
into the coordinator's environment permanently.
"""

from __future__ import annotations

import json
import os
import pickle
import time

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.core.config import default_unit_timeout
from repro.errors import (
    HostPoolError,
    WorkerCrashError,
    WorkerTaskError,
    WorkerTimeoutError,
)
from repro.host import faults as fault_mod
from repro.host.pool import (
    HostExecutor,
    _worker_ping,
    shared_pool,
    shutdown_shared_pool,
)
from repro.machine.config import MachineConfig
from repro.workloads import build_workload


def _record(name, workers, jobs, **overrides):
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
        host_jobs=jobs,
        **overrides,
    )
    recorder = DoublePlayRecorder(instance.image, instance.setup, config)
    return instance, machine, recorder.record()


def _assert_bit_identical(faulted, serial):
    assert json.dumps(faulted.recording.to_plain(), sort_keys=True) == json.dumps(
        serial.recording.to_plain(), sort_keys=True
    ), "fault containment changed the recording"
    assert faulted.makespan == serial.makespan
    assert faulted.tp_finish == serial.tp_finish
    assert faulted.app_time == serial.app_time
    assert faulted.stats == serial.stats
    assert faulted.recording.final_digest == serial.recording.final_digest


# ----------------------------------------------------------------------
# Pool management regressions
# ----------------------------------------------------------------------
def test_shared_pool_rebuilds_after_worker_death():
    pool = shared_pool(2)
    with pytest.raises(BrokenProcessPool):
        pool.submit(os._exit, 70).result(timeout=60)
    # Regression: the broken pool used to be cached and returned forever.
    rebuilt = shared_pool(2)
    assert rebuilt is not pool
    assert rebuilt.submit(_worker_ping).result(timeout=60) > 0


def test_record_succeeds_after_pool_poisoned():
    """A worker death in one run must not poison the next recording."""
    pool = shared_pool(2)
    with pytest.raises(BrokenProcessPool):
        pool.submit(os._exit, 70).result(timeout=60)
    _, _, serial = _record("fft", 2, jobs=1)
    _, _, parallel = _record("fft", 2, jobs=2)
    _assert_bit_identical(parallel, serial)
    assert not any(parallel.host["faults"].values())


def test_shared_pool_growth_drains_in_flight_units():
    shutdown_shared_pool()
    pool = shared_pool(1)
    future = pool.submit(time.sleep, 0.4)
    grown = shared_pool(2)
    assert grown is not pool
    # Regression: growth used to shutdown(wait=False, cancel_futures=True),
    # yanking the old pool out from under still-draining units.
    assert future.done() and not future.cancelled()
    assert future.result(timeout=0) is None


def test_worker_import_path_is_scoped(monkeypatch):
    """Spawning workers must not persistently mutate os.environ."""
    shutdown_shared_pool()
    monkeypatch.setenv("PYTHONPATH", "/tmp/unrelated-entry")
    pool = shared_pool(1)
    assert pool.submit(_worker_ping).result(timeout=60) > 0
    assert os.environ["PYTHONPATH"] == "/tmp/unrelated-entry"
    shutdown_shared_pool()
    monkeypatch.delenv("PYTHONPATH")
    pool = shared_pool(1)
    assert pool.submit(_worker_ping).result(timeout=60) > 0
    assert "PYTHONPATH" not in os.environ
    shutdown_shared_pool()


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
def test_worker_errors_are_structured_and_picklable():
    crash = WorkerCrashError("worker died", position=2, attempt=1)
    timeout = WorkerTimeoutError("too slow", position=1, attempt=0, timeout=1.5)
    task = WorkerTaskError(
        "ValueError: boom", position=3, attempt=1,
        exc_type="ValueError", traceback_text="Traceback ...",
    )
    for err in (crash, timeout, task):
        assert isinstance(err, HostPoolError)
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is type(err)
        assert (clone.position, clone.attempt) == (err.position, err.attempt)
        assert str(clone) == str(err)
    assert pickle.loads(pickle.dumps(timeout)).timeout == 1.5
    roundtrip = pickle.loads(pickle.dumps(task))
    assert roundtrip.exc_type == "ValueError"
    assert roundtrip.traceback_text == "Traceback ..."
    assert (crash.kind, timeout.kind, task.kind) == (
        "crash", "timeout", "task-error",
    )


def test_parse_fault_specs():
    specs = fault_mod.parse_fault_specs(
        "crash:unit2, replay:hang:unit1:2.5, slow:unit0:0.1, record:error:unit3"
    )
    assert [s.kind for s in specs] == ["crash", "hang", "slow", "error"]
    assert [s.position for s in specs] == [2, 1, 0, 3]
    assert specs[1].scope == "replay" and specs[1].seconds == 2.5
    assert specs[0].matches("record", 2) and specs[0].matches("replay", 2)
    assert not specs[1].matches("record", 1)
    assert fault_mod.faults_for(specs, "record", 3) == (specs[3],)
    assert fault_mod.parse_fault_specs("") == ()
    with pytest.raises(ValueError):
        fault_mod.parse_fault_specs("nonsense")
    with pytest.raises(ValueError):
        fault_mod.parse_fault_specs("explode:unit1")
    with pytest.raises(ValueError):
        fault_mod.parse_fault_specs("crash:unit")
    with pytest.raises(ValueError):
        fault_mod.parse_fault_specs("crash:unit1:wat")
    with pytest.raises(ValueError):
        # 'once' needs a fuse directory (REPRO_FAULT_STATE)
        fault_mod.parse_fault_specs("crash:unit1:once")
    once = fault_mod.parse_fault_specs("crash:unit1:once", state_dir="/tmp/x")
    assert once[0].once and once[0].state_dir == "/tmp/x"


def test_default_unit_timeout_env(monkeypatch):
    monkeypatch.delenv("REPRO_UNIT_TIMEOUT", raising=False)
    assert default_unit_timeout() == 60.0
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "2.5")
    assert default_unit_timeout() == 2.5
    assert DoublePlayConfig().unit_timeout == 2.5
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "not-a-number")
    assert default_unit_timeout() == 60.0
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "-3")
    assert default_unit_timeout() == 0.0
    assert HostExecutor(2, unit_timeout=1.25).unit_timeout == 1.25


# ----------------------------------------------------------------------
# Fault-injected recording: always completes, always bit-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec,counter,expect_fallback",
    [
        ("crash:unit1", "crashes", True),
        ("error:unit2", "task_errors", True),
        ("slow:unit1:0.05", None, False),
    ],
)
def test_record_faults_bit_identical(monkeypatch, spec, counter, expect_fallback):
    _, _, serial = _record("fft", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT", spec)
    _, _, faulted = _record("fft", 2, jobs=4)
    _assert_bit_identical(faulted, serial)
    counts = faulted.host["faults"]
    if counter is None:
        assert not any(counts.values())
    else:
        assert counts[counter] >= 1
        assert counts["retries"] >= 1
        if expect_fallback:
            assert counts["serial_fallbacks"] >= 1
        assert faulted.host["fault_events"], "events missing from accounting"
        assert all(
            set(event) == {"kind", "position", "attempt", "error"}
            for event in faulted.host["fault_events"]
        )


def test_record_hang_contained_by_unit_timeout(monkeypatch):
    _, _, serial = _record("fft", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT", "hang:unit1:30")
    _, _, faulted = _record("fft", 2, jobs=4, unit_timeout=1.0)
    _assert_bit_identical(faulted, serial)
    counts = faulted.host["faults"]
    assert counts["timeouts"] >= 1
    assert counts["serial_fallbacks"] >= 1


def test_record_crash_and_hang_complete_via_fallback(monkeypatch):
    """The acceptance scenario: a crash AND a hang in one jobs=4 recording."""
    _, _, serial = _record("fft", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT", "crash:unit1,hang:unit3:30")
    _, _, faulted = _record("fft", 2, jobs=4, unit_timeout=1.0)
    _assert_bit_identical(faulted, serial)
    counts = faulted.host["faults"]
    assert counts["crashes"] >= 1
    assert counts["timeouts"] >= 1
    assert counts["serial_fallbacks"] >= 2
    assert counts["retries"] >= 2


def test_record_crash_once_recovers_on_retry(monkeypatch, tmp_path):
    """With a one-shot fault the retry (not the fallback) saves the unit.

    Pipelining is pinned off: this test exercises the *batch* retry path,
    and a speculative dispatch would otherwise blow the one-shot fuse
    before the batch ever dispatched (the speculative variants live in
    the pipelined-fault tests below).
    """
    monkeypatch.setenv("REPRO_PIPELINE", "0")
    _, _, serial = _record("fft", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path))
    monkeypatch.setenv("REPRO_FAULT", "crash:unit1:once")
    _, _, faulted = _record("fft", 2, jobs=4)
    _assert_bit_identical(faulted, serial)
    counts = faulted.host["faults"]
    assert counts["crashes"] >= 1
    assert counts["retries"] >= 1
    # The fuse blew on the first attempt, so nothing ever needed the
    # serial fallback: every retry ran clean.
    assert counts["serial_fallbacks"] == 0
    assert counts["timeouts"] == 0 and counts["task_errors"] == 0


def test_record_fault_with_divergence_and_recovery(monkeypatch, tmp_path):
    """Host containment composes with guest forward recovery."""
    monkeypatch.setenv("REPRO_PIPELINE", "0")  # one-shot fuse, batch path
    _, _, serial = _record("racy-counter", 2, jobs=1)
    assert serial.stats["divergences"] > 0  # the workload actually diverges
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path))
    monkeypatch.setenv("REPRO_FAULT", "crash:unit0:once")
    _, _, faulted = _record("racy-counter", 2, jobs=2)
    _assert_bit_identical(faulted, serial)
    assert faulted.host["faults"]["crashes"] >= 1


# ----------------------------------------------------------------------
# Pipelined speculation under faults
#
# With the two-deep commit pipeline on (the default), epoch N's unit is
# dispatched while the thread-parallel run executes N+1 and beyond. A
# speculative attempt is disposable twice over: host faults silently
# discard it (the full-knowledge batch re-runs the position with normal
# containment), and segment-end validation drops any run whose snapshot
# cuts proved stale. Either way the recording must stay byte-identical
# to jobs=1.
# ----------------------------------------------------------------------
def test_pipelined_clean_run_accepts_speculation():
    """No faults: speculative results are accepted, never re-run."""
    _, _, serial = _record("fft", 2, jobs=1)
    _, _, parallel = _record("fft", 2, jobs=4)
    _assert_bit_identical(parallel, serial)
    spec = parallel.host["speculation"]
    assert spec["dispatched"] >= 1
    assert spec["accepted"] >= 1
    assert spec["discarded"] == 0
    assert not any(parallel.host["faults"].values())


@pytest.mark.parametrize(
    "spec,timeout,counter",
    [
        ("crash:unit1", None, "crashes"),
        ("hang:unit1:30", 1.0, "timeouts"),
        ("error:unit1", None, "task_errors"),
    ],
)
def test_pipelined_faults_discard_speculation(monkeypatch, spec, timeout, counter):
    """A host fault during speculation is contained twice.

    The fault fires on *every* dispatch of the position: the speculative
    attempt dies (silently discarded), then the batch attempts die and
    the retry/serial-fallback containment finishes the unit — recording
    byte-identical to jobs=1 throughout.
    """
    _, _, serial = _record("fft", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT", spec)
    overrides = {"unit_timeout": timeout} if timeout is not None else {}
    _, _, faulted = _record("fft", 2, jobs=4, **overrides)
    _assert_bit_identical(faulted, serial)
    assert faulted.host["speculation"]["discarded"] >= 1
    counts = faulted.host["faults"]
    assert counts[counter] >= 1, "batch path never saw the fault"
    assert counts["serial_fallbacks"] >= 1


def test_pipelined_speculative_crash_only_is_invisible(monkeypatch, tmp_path):
    """A one-shot crash consumed by the speculation leaves no fault trace.

    The fuse blows on the speculative dispatch, so the batch re-run of
    the position runs clean: zero entries in the fault counters (those
    count only batch containment), one discarded speculation, and a
    byte-identical recording.
    """
    _, _, serial = _record("fft", 2, jobs=1)
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path))
    monkeypatch.setenv("REPRO_FAULT", "crash:unit1:once")
    _, _, faulted = _record("fft", 2, jobs=4)
    _assert_bit_identical(faulted, serial)
    assert faulted.host["speculation"]["discarded"] >= 1
    assert not any(faulted.host["faults"].values())


def test_pipelined_divergence_while_speculating():
    """A divergence in epoch N must void in-flight speculation cleanly.

    racy-counter diverges mid-segment while later epochs' speculative
    units are already in the pool. The merge loop stops at the diverged
    position, recovery rolls the segment back, and whatever speculation
    returned for the discarded tail must leave no trace — recording and
    stats byte-identical to jobs=1.
    """
    _, _, serial = _record("racy-counter", 2, jobs=1)
    assert serial.stats["divergences"] > 0
    _, _, parallel = _record("racy-counter", 2, jobs=2)
    _assert_bit_identical(parallel, serial)
    assert parallel.host["speculation"]["dispatched"] >= 1
    assert not any(parallel.host["faults"].values())


def test_pipeline_env_toggle_is_parity(monkeypatch):
    """REPRO_PIPELINE=0 changes wall-clock shape only, never results."""
    _, _, piped = _record("pbzip", 2, jobs=2)
    assert piped.host["speculation"]["dispatched"] >= 1
    monkeypatch.setenv("REPRO_PIPELINE", "0")
    _, _, phased = _record("pbzip", 2, jobs=2)
    assert phased.host["speculation"]["dispatched"] == 0
    _assert_bit_identical(piped, phased)


# ----------------------------------------------------------------------
# Fault-injected parallel replay
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec,timeout,counter",
    [
        ("crash:unit1", None, "crashes"),
        ("hang:unit1:30", 1.0, "timeouts"),
        ("error:unit1", None, "task_errors"),
    ],
)
def test_replay_parallel_faults_bit_identical(monkeypatch, spec, timeout, counter):
    instance, machine, result = _record("fft", 2, jobs=1)
    replayer = Replayer(instance.image, machine)
    serial = replayer.replay_parallel(result.recording)
    monkeypatch.setenv("REPRO_FAULT", spec)
    kwargs = {"unit_timeout": timeout} if timeout is not None else {}
    faulted = replayer.replay_parallel(result.recording, jobs=4, **kwargs)
    assert faulted.verified, faulted.details
    assert faulted.total_cycles == serial.total_cycles
    assert faulted.makespan == serial.makespan
    assert faulted.epochs_replayed == serial.epochs_replayed
    counts = faulted.host["faults"]
    assert counts[counter] >= 1
    assert counts["serial_fallbacks"] >= 1


def test_fault_scope_filters_by_phase(monkeypatch):
    """A record-scoped fault must not fire during replay, and vice versa."""
    instance, machine, result = _record("fft", 2, jobs=1)
    replayer = Replayer(instance.image, machine)
    monkeypatch.setenv("REPRO_FAULT", "record:error:unit1")
    outcome = replayer.replay_parallel(result.recording, jobs=2)
    assert outcome.verified
    assert not any(outcome.host["faults"].values())
    monkeypatch.setenv("REPRO_FAULT", "replay:error:unit1")
    _, _, recorded = _record("fft", 2, jobs=2)
    assert not any(recorded.host["faults"].values())


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def run_cli(*argv):
    import io

    from repro.cli import main as cli_main

    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_record_reports_contained_faults(monkeypatch, tmp_path):
    clean = tmp_path / "clean.json"
    code, _ = run_cli(
        "record", "fft", "--scale", "2", "--seed", "11", "-o", str(clean)
    )
    assert code == 0
    monkeypatch.setenv("REPRO_FAULT", "crash:unit1")
    faulted = tmp_path / "faulted.json"
    code, out = run_cli(
        "record", "fft", "--scale", "2", "--seed", "11",
        "--jobs", "4", "-o", str(faulted),
    )
    assert code == 0
    assert "host faults contained" in out
    assert "crash(es)" in out
    assert json.loads(faulted.read_text()) == json.loads(clean.read_text())


def test_cli_replay_reports_contained_faults(monkeypatch, tmp_path):
    path = tmp_path / "rec.json"
    code, _ = run_cli(
        "record", "fft", "--scale", "2", "--seed", "11", "-o", str(path)
    )
    assert code == 0
    monkeypatch.setenv("REPRO_FAULT", "error:unit1")
    code, out = run_cli(
        "replay", str(path), "--jobs", "2", "--unit-timeout", "30"
    )
    assert code == 0
    assert "verified" in out
    assert "host faults contained" in out
