"""Vector clocks and the happens-before race detector."""

from hypothesis import given, strategies as st

from repro.exec.trace import CollectingObserver, TraceEvent
from repro.race.detector import RaceDetector, find_races
from repro.race.vector_clock import VectorClock


class TestVectorClock:
    def test_fresh_clock_is_zero(self):
        assert VectorClock().get(1) == 0

    def test_tick_advances_only_own_component(self):
        clock = VectorClock().tick(1).tick(1).tick(2)
        assert clock.get(1) == 2
        assert clock.get(2) == 1
        assert clock.get(3) == 0

    def test_join_is_componentwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({1: 2, 2: 5, 3: 1})
        joined = a.join(b)
        assert joined == VectorClock({1: 3, 2: 5, 3: 1})

    def test_happens_before_reflexive(self):
        clock = VectorClock({1: 2})
        assert clock.happens_before(clock)

    def test_happens_before_after_tick(self):
        a = VectorClock({1: 1})
        b = a.tick(1)
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_concurrent_clocks(self):
        a = VectorClock({1: 1})
        b = VectorClock({2: 1})
        assert not a.ordered_with(b) or a == b

    def test_operations_do_not_mutate(self):
        a = VectorClock({1: 1})
        a.tick(1)
        a.join(VectorClock({2: 9}))
        assert a == VectorClock({1: 1})

    def test_zero_components_ignored_in_equality(self):
        assert VectorClock({1: 0, 2: 3}) == VectorClock({2: 3})

    @given(
        st.dictionaries(st.integers(1, 5), st.integers(0, 10), max_size=5),
        st.dictionaries(st.integers(1, 5), st.integers(0, 10), max_size=5),
    )
    def test_property_join_upper_bound(self, a_map, b_map):
        a, b = VectorClock(a_map), VectorClock(b_map)
        joined = a.join(b)
        assert a.happens_before(joined)
        assert b.happens_before(joined)

    @given(st.dictionaries(st.integers(1, 5), st.integers(0, 10), max_size=5))
    def test_property_join_idempotent(self, mapping):
        clock = VectorClock(mapping)
        assert clock.join(clock) == clock


def ev(kind, tid, addr, time=0):
    return TraceEvent(kind=kind, tid=tid, addr=addr, time=time)


class TestDetectorHandcrafted:
    def test_unordered_writes_race(self):
        races = find_races([ev("write", 1, 100), ev("write", 2, 100)])
        assert len(races) == 1
        assert races[0].kind == "write-write"

    def test_write_then_unordered_read_races(self):
        races = find_races([ev("write", 1, 100), ev("read", 2, 100)])
        assert len(races) == 1
        assert races[0].kind == "write-read"

    def test_read_then_unordered_write_races(self):
        races = find_races([ev("read", 2, 100), ev("write", 1, 100)])
        assert len(races) == 1
        assert races[0].kind == "read-write"

    def test_same_thread_never_races(self):
        races = find_races(
            [ev("write", 1, 100), ev("read", 1, 100), ev("write", 1, 100)]
        )
        assert races == []

    def test_concurrent_reads_do_not_race(self):
        assert find_races([ev("read", 1, 100), ev("read", 2, 100)]) == []

    def test_lock_orders_accesses(self):
        events = [
            ev("acquire", 1, 50),
            ev("write", 1, 100),
            ev("release", 1, 50),
            ev("acquire", 2, 50),
            ev("write", 2, 100),
            ev("release", 2, 50),
        ]
        assert find_races(events) == []

    def test_different_locks_do_not_order(self):
        events = [
            ev("acquire", 1, 50),
            ev("write", 1, 100),
            ev("release", 1, 50),
            ev("acquire", 2, 51),
            ev("write", 2, 100),
            ev("release", 2, 51),
        ]
        assert len(find_races(events)) == 1

    def test_spawn_orders_parent_before_child(self):
        events = [
            ev("write", 1, 100),
            ev("spawn", 1, 2),
            ev("write", 2, 100),
        ]
        assert find_races(events) == []

    def test_join_orders_child_before_parent(self):
        events = [
            ev("spawn", 1, 2),
            ev("write", 2, 100),
            ev("exit", 2, 0),
            ev("join", 1, 2),
            ev("write", 1, 100),
        ]
        assert find_races(events) == []

    def test_barrier_orders_across_generation(self):
        events = [
            ev("write", 1, 100),
            ev("barrier", 1, 60, time=500),
            ev("barrier", 2, 60, time=500),
            ev("write", 2, 100),
        ]
        assert find_races(events) == []

    def test_distinct_barrier_generations_grouped_separately(self):
        events = [
            ev("write", 1, 100),
            ev("barrier", 1, 60, time=500),
            ev("barrier", 2, 60, time=500),
            ev("barrier", 1, 60, time=900),
            ev("barrier", 2, 60, time=900),
            ev("write", 2, 100),
        ]
        assert find_races(events) == []

    def test_each_address_reported_once(self):
        events = [
            ev("write", 1, 100),
            ev("write", 2, 100),
            ev("write", 1, 100),
            ev("write", 2, 100),
        ]
        assert len(find_races(events)) == 1

    def test_distinct_addresses_reported_separately(self):
        events = [
            ev("write", 1, 100),
            ev("write", 2, 100),
            ev("write", 1, 200),
            ev("write", 2, 200),
        ]
        assert len(find_races(events)) == 2


class TestDetectorOnWorkloads:
    def _trace(self, name, workers=2, scale=2, seed=4):
        from repro.baselines import run_native
        from repro.machine.config import MachineConfig
        from repro.workloads import build_workload

        inst = build_workload(name, workers=workers, scale=scale, seed=seed)
        observer = CollectingObserver()
        run_native(inst.image, inst.setup, MachineConfig(cores=workers), [observer])
        return observer.events

    def test_lock_counter_program_race_free(self):
        from tests.conftest import counter_program
        from tests.conftest import boot_multicore
        from repro.machine.config import MachineConfig

        observer = CollectingObserver()
        engine, _ = boot_multicore(counter_program(iters=20), MachineConfig(cores=2))
        engine.observers.append(observer)
        engine.run()
        assert find_races(observer.events) == []

    def test_unlocked_counter_program_races(self):
        from tests.conftest import counter_program, boot_multicore
        from repro.machine.config import MachineConfig

        observer = CollectingObserver()
        engine, _ = boot_multicore(
            counter_program(iters=20, locked=False), MachineConfig(cores=2)
        )
        engine.observers.append(observer)
        engine.run()
        assert len(find_races(observer.events)) >= 1

    def test_race_free_suite_is_race_free(self):
        for name in ("pbzip", "mysql", "fft", "ocean", "water", "radix", "prodcons", "prodcons-sem"):
            assert find_races(self._trace(name)) == [], name

    def test_racy_suite_races(self):
        for name in ("racy-counter", "racy-lazyinit"):
            assert find_races(self._trace(name)), name

    def test_atomics_are_ordered_not_racing(self):
        """pfscan's atomic count merge must not be flagged."""
        assert find_races(self._trace("pfscan")) == []
