"""Recording crashing programs — replay up to the instant of the crash."""

import pytest

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.errors import GuestFault
from repro.isa.assembler import Assembler
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from repro.oskernel.syscalls import SyscallKind
from tests.conftest import boot_multicore


def crashing_program(work_before=60, crasher="null-deref"):
    """Workers do useful lock-protected work; then one thread crashes."""
    asm = Assembler(name="crash")
    asm.word("counter", 0)
    asm.word("mutex", 0)
    with asm.function("worker"):
        asm.li("r2", 0)
        asm.label("loop")
        asm.li("r3", "mutex")
        asm.lock("r3")
        asm.loadg("r4", "counter")
        asm.addi("r4", "r4", 1)
        asm.storeg("r4", "counter")
        asm.unlock("r3")
        asm.work(10)
        asm.addi("r2", "r2", 1)
        asm.blti("r2", work_before, "loop")
        asm.exit_()
    with asm.function("main"):
        asm.spawn("r10", "worker")
        asm.spawn("r11", "worker")
        asm.work(400)
        if crasher == "null-deref":
            asm.li("r1", 0)
            asm.load("r2", "r1", 0)       # crash: load from address 0
        elif crasher == "div-zero":
            asm.li("r1", 1)
            asm.li("r2", 0)
            asm.div("r3", "r1", "r2")     # crash: division by zero
        asm.join("r10")
        asm.join("r11")
        asm.exit_()
    return asm.assemble()


def record(image, epoch_cycles=600):
    config = DoublePlayConfig(machine=MachineConfig(cores=2), epoch_cycles=epoch_cycles)
    return DoublePlayRecorder(image, KernelSetup(), config).record()


class TestFaultBoundaries:
    def test_unguarded_engine_still_raises(self):
        image = crashing_program()
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        with pytest.raises(GuestFault):
            engine.run()

    def test_halt_on_fault_returns_status(self):
        image = crashing_program()
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        engine.halt_on_fault = True
        assert engine.run() == "faulted"
        assert engine.fault is not None

    def test_faulting_op_applied_no_effects(self):
        """The crashing thread's retired count excludes the faulting op."""
        image = crashing_program(crasher="div-zero")
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        engine.halt_on_fault = True
        engine.run()
        main = engine.contexts[1]
        assert main.registers[3] == 0  # div result never written

    def test_partial_syscall_buffer_faults_cleanly(self):
        """READ into a partially unmapped buffer must move no words."""
        from repro.oskernel.kernel import Kernel
        from repro.memory.layout import PAGE_WORDS

        asm = Assembler(name="badbuf")
        asm.word("cell", 0)
        with asm.function("main"):
            asm.li("r1", 0)
            asm.syscall("r2", SyscallKind.OPEN, args=["r1"])
            # buffer starting on the last mapped word, spilling onto an
            # unmapped page
            asm.li("r3", 1)
            asm.syscall("r4", SyscallKind.ALLOC, args=["r3"])
            asm.li("r5", PAGE_WORDS * 2)
            asm.syscall("r6", SyscallKind.READ, args=["r2", "r4", "r5"])
            asm.exit_()
        setup = KernelSetup(files={0: list(range(200))})
        engine, kernel = boot_multicore(asm.assemble(), MachineConfig(cores=1), setup)
        engine.halt_on_fault = True
        assert engine.run() == "faulted"
        # offset unmoved: the read had no effect at all
        fd_state = kernel.fs.snapshot()[1]
        assert all(offset == 0 for _, offset in fd_state.values())


class TestCrashRecording:
    def test_recording_captures_the_crash(self):
        image = crashing_program()
        result = record(image)
        assert result.fault is not None
        assert "unmapped" in result.fault
        assert result.recording.epoch_count() >= 1

    def test_crash_recording_replays_to_pre_crash_state(self):
        image = crashing_program()
        result = record(image)
        replayer = Replayer(image, MachineConfig(cores=2))
        sequential = replayer.replay_sequential(result.recording)
        assert sequential.verified, sequential.details
        assert replayer.replay_parallel(result.recording).verified

    def test_final_epoch_time_travel_to_crash(self):
        """Single-epoch replay of the last epoch = the crash neighbourhood."""
        image = crashing_program()
        result = record(image)
        last = result.recording.epochs[-1].index
        replayer = Replayer(image, MachineConfig(cores=2))
        outcome = replayer.replay_epoch(result.recording, last)
        assert outcome.verified

    def test_crash_recording_is_deterministic(self):
        image = crashing_program()
        a = record(image)
        b = record(image)
        assert a.fault == b.fault
        assert a.recording.final_digest == b.recording.final_digest

    def test_racy_crasher_recovers_then_records_crash(self):
        """Races before the crash forward-recover; the crash still records."""
        asm = Assembler(name="racycrash")
        asm.word("counter", 0)
        with asm.function("worker"):
            asm.li("r2", 0)
            asm.label("loop")
            asm.loadg("r4", "counter")
            asm.work(5)
            asm.addi("r4", "r4", 1)
            asm.storeg("r4", "counter")
            asm.addi("r2", "r2", 1)
            asm.blti("r2", 60, "loop")
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r10", "worker")
            asm.spawn("r11", "worker")
            asm.join("r10")
            asm.join("r11")
            asm.li("r1", 0)
            asm.load("r2", "r1", 0)   # crash after the racy phase
            asm.exit_()
        image = asm.assemble()
        result = record(image, epoch_cycles=500)
        assert result.fault is not None
        replayer = Replayer(image, MachineConfig(cores=2))
        assert replayer.replay_sequential(result.recording).verified
