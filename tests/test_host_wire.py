"""Wire round-trips: pickling guest state preserves behaviour exactly.

The host-parallelism layer ships checkpoints, recordings and work units
to worker processes via pickle. The contract (DESIGN.md "Host
performance layer"): content-derived caches transfer, host-local caches
(TLBs, decoded handler table, page refcounts) are stripped and rebuilt
cold — and a cold-cache object behaves identically to a warm one.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder
from repro.exec.interpreter import decode_program
from repro.host.blobs import decode_blob_object
from repro.host.wire import (
    record_units_for_segment,
    replay_units_for_recording,
    signal_slice,
    syscall_slice,
)
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace, MemorySnapshot
from repro.memory.layout import PAGE_WORDS
from repro.isa.assembler import Assembler
from repro.memory.page import Page
from repro.workloads import build_workload


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def _record(name="pbzip", workers=2, scale=2, seed=11):
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine, epoch_cycles=max(native.duration // 12, 500)
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    return instance, machine, result


# ----------------------------------------------------------------------
# Pages and snapshots
# ----------------------------------------------------------------------
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=2**64 - 1),
        min_size=PAGE_WORDS,
        max_size=PAGE_WORDS,
    )
)
@settings(max_examples=25, deadline=None)
def test_page_roundtrip_preserves_content_and_hash(words):
    page = Page(list(words))
    warm = page.content_hash()
    page.refs = 7  # host-local sharing state must NOT transfer

    clone = roundtrip(page)
    assert clone.words == page.words
    assert clone.refs == 1
    assert clone.content_hash() == warm

    # Cold-cache path: a page pickled before hashing hashes identically.
    cold = roundtrip(Page(list(words)))
    assert cold._hash is None or cold._hash == warm
    assert cold.content_hash() == warm


def test_snapshot_roundtrip_preserves_digest_and_sharing():
    space = AddressSpace()
    for addr in (0, 100, 1000):
        space.map_addr(addr)
        space.write(addr, addr * 3 + 1)
    snap = space.snapshot()
    warm = snap.content_hash()

    clone = roundtrip(snap)
    assert isinstance(clone, MemorySnapshot)
    assert clone.content_hash() == warm
    assert clone.page_count() == snap.page_count()
    # Unpickled pages are private to the receiving process.
    assert all(page.refs == 1 for page in clone.pages.values())
    assert clone.read(100) == snap.read(100)
    # release() must work (and be idempotent) on the restored side.
    clone.release()
    clone.release()


def test_address_space_roundtrip_strips_tlbs_identical_behaviour():
    space = AddressSpace()
    for addr in range(0, 200, 7):
        space.map_addr(addr)
        space.write(addr, addr + 5)
    space.read(7)  # warm both TLBs
    warm_hash = space.content_hash()

    clone = roundtrip(space)
    assert clone._rtlb_no is None and clone._wtlb_no is None
    assert clone.content_hash() == warm_hash
    assert clone.read(7) == space.read(7)
    assert clone.cow_copies == space.cow_copies
    # Writes through the cold TLB behave identically.
    clone.write(7, 99)
    space.write(7, 99)
    assert clone.content_hash() == space.content_hash()


# ----------------------------------------------------------------------
# Program images: the decoded handler table is host-local
# ----------------------------------------------------------------------
def test_program_image_roundtrip_rebuilds_decode_cache():
    asm = Assembler(name="wiretest")
    with asm.function("main"):
        asm.li("r1", 5)
        asm.li("r2", 37)
        asm.add("r3", "r1", "r2")
        asm.exit_()
    image = asm.assemble()
    decode_program(image)  # warm the cache
    assert "_decoded" in image.__dict__

    clone = roundtrip(image)
    assert "_decoded" not in clone.__dict__  # stripped at the boundary
    assert clone.code == image.code
    assert clone.entry == image.entry
    assert clone.name == image.name
    # Rebuilt table drives the same handlers over equal instructions.
    rebuilt = decode_program(clone)
    original = decode_program(image)
    assert len(rebuilt) == len(original)
    assert all(r[0] is o[0] for r, o in zip(rebuilt, original))


def test_program_image_pickle_strips_superblock_tables():
    """Fused-block tables are host-local: stripped at the wire, rebuilt.

    The table holds generated function objects (like the decode cache),
    so it must never travel; the wire form is exactly the declared
    dataclass fields, whatever caches warmed up in ``__dict__``.
    """
    from repro.exec.superblock import table_for

    instance = build_workload("fft", workers=2, scale=2, seed=11)
    image = instance.image
    machine = MachineConfig(cores=2)
    decode_program(image)
    table_for(image, machine.costs)
    assert "_superblocks" in image.__dict__

    assert set(image.__getstate__()) == {
        "code", "entry", "data", "symbols", "functions",
        "register_count", "heap_base", "name",
    }
    clone = roundtrip(image)
    assert "_superblocks" not in clone.__dict__
    assert "_decoded" not in clone.__dict__
    # The cold clone lazily rebuilds an equivalent table: same fusable
    # block heads discovered from the identical code tuple.
    rebuilt = table_for(clone, machine.costs)
    original = table_for(image, machine.costs)
    assert [s is not None for s in rebuilt] == [s is not None for s in original]


def test_worker_program_memo_decodes_once_and_caps(monkeypatch):
    """Worker-side decode-table rebuilds are memoised per program digest.

    A worker decodes (and block-discovers) each program image once per
    process, keyed by the program blob digest; the memo pins the decoded
    image so its tables survive blob-cache eviction, FIFO-capped so a
    long-lived worker can't accumulate stale images.
    """
    from repro.host import pool as host_pool

    monkeypatch.setattr(host_pool, "_worker_programs", {})
    calls = []

    def resolve(digest):
        calls.append(digest)
        return f"image-{digest}"

    assert host_pool._worker_program(1, resolve) == "image-1"
    assert host_pool._worker_program(1, resolve) == "image-1"
    assert calls == [1], "second lookup must hit the memo"
    for digest in range(2, 2 + host_pool._WORKER_PROGRAM_CAP - 1):
        host_pool._worker_program(digest, resolve)
    assert len(host_pool._worker_programs) == host_pool._WORKER_PROGRAM_CAP
    host_pool._worker_program(99, resolve)
    assert len(host_pool._worker_programs) == host_pool._WORKER_PROGRAM_CAP
    assert 1 not in host_pool._worker_programs, "FIFO evicts the oldest"
    host_pool._worker_program(1, resolve)
    assert calls.count(1) == 2, "evicted image re-resolves"


def test_program_image_roundtrip_runs_identically():
    instance = build_workload("fft", workers=2, scale=2, seed=11)
    machine = MachineConfig(cores=2)
    native = run_native(instance.image, instance.setup, machine)
    clone_native = run_native(roundtrip(instance.image), instance.setup, machine)
    assert clone_native.duration == native.duration
    assert clone_native.final_digest == native.final_digest


# ----------------------------------------------------------------------
# Checkpoints and recordings
# ----------------------------------------------------------------------
def _blob_resolver(blobs):
    """A coordinator-free resolve(): decode each blob once, memoised."""
    decoded = {}

    def resolve(digest):
        if digest not in decoded:
            decoded[digest] = decode_blob_object(blobs[digest])
        return decoded[digest]

    return resolve


def test_checkpoint_skeleton_roundtrip_hydrates_identically():
    _, _, result = _record()
    for epoch in result.recording.epochs[:4]:
        checkpoint = epoch.start_checkpoint
        warm = checkpoint.digest()
        blobs = {}
        for page in checkpoint.memory.pages.values():
            digest, blob = page.wire_blob()
            blobs[digest] = blob
        skeleton = checkpoint.to_wire()
        # On the coordinator, hydration is the original object — free.
        assert skeleton.hydrate(None) is checkpoint

        clone = roundtrip(skeleton)
        assert clone._local is None  # coordinator shortcut never ships
        hydrated = clone.hydrate(_blob_resolver(blobs))
        assert hydrated.kernel_state is None  # executors never need it
        assert hydrated.digest() == warm
        assert hydrated.contexts_digest() == checkpoint.contexts_digest()
        assert hydrated.targets() == checkpoint.targets()
        assert hydrated.time == checkpoint.time

        # Cold caches: wipe them and recompute from transferred content.
        hydrated._digest = None
        hydrated._ctx_digest = None
        hydrated.memory._hash = None
        hydrated.memory._sorted = None
        for page in hydrated.memory.pages.values():
            page.invalidate_hash()
        assert hydrated.digest() == warm


def test_recording_roundtrip_preserves_plain_form():
    _, _, result = _record("fft", workers=3)
    recording = result.recording
    clone = roundtrip(recording)
    assert clone.to_plain() == recording.to_plain()
    assert clone.final_digest == recording.final_digest
    assert clone.total_log_bytes() == recording.total_log_bytes()
    assert clone.initial_checkpoint.digest() == recording.initial_checkpoint.digest()


# ----------------------------------------------------------------------
# Work units and log slices
# ----------------------------------------------------------------------
def test_log_slices_keep_exactly_the_reachable_records():
    _, _, result = _record()
    recording = result.recording
    for epoch in recording.epochs:
        start = epoch.start_checkpoint
        counts = {t: c.syscall_count for t, c in start.contexts.items()}
        kept = syscall_slice(recording.syscall_records, start)
        assert all(r.seq >= counts.get(r.tid, 0) for r in kept)
        dropped = set(recording.syscall_records) - set(kept)
        assert all(r.seq < counts[r.tid] for r in dropped)

        retired = {t: c.retired for t, c in start.contexts.items()}
        for record in signal_slice(recording.signal_records, start):
            assert record[1] >= retired.get(record[0], 0)


def test_replay_units_roundtrip_preserves_digests():
    _, _, result = _record()
    batch = replay_units_for_recording(result.recording)
    assert len(batch.units) == result.recording.epoch_count()
    resolve = _blob_resolver(batch.blobs)
    for unit, epoch in zip(batch.units, result.recording.epochs):
        clone = roundtrip(unit)
        assert clone.end_digest == epoch.end_digest
        assert clone.start.hydrate(resolve).digest() == epoch.start_checkpoint.digest()
        assert clone.targets == epoch.targets
        assert clone.sync_events == epoch.sync_log.events
        assert clone.schedule.slices == epoch.schedule.slices
        # The shared log references strip their coordinator shortcut and
        # resolve (through the batch blob set) to the serial path's logs.
        assert clone.syscalls._local is None
        assert resolve(clone.syscalls.digest) == tuple(
            result.recording.syscalls_for_epochs()
        )
        assert resolve(clone.signals.digest) == tuple(
            result.recording.signal_records
        )


def test_record_units_share_pages_by_content():
    """A page unchanged across the epoch must never be re-shipped.

    The unit's boundary is a pure delta against its start: pages shared
    by object identity (copy-on-write) or equal by content stay out of
    ``page_changes``, and hydration maps both tables to the *same* page
    object — so the worker's divergence check keeps its O(1) identity
    fast path, and the wire carries only the epoch's dirty pages.
    """
    _, _, result = _record()
    recording = result.recording
    checkpoints = [e.start_checkpoint for e in recording.epochs]
    batch = record_units_for_segment(
        checkpoints,
        hints=[],
        hint_marks=[0] * len(checkpoints),
        syscall_log=recording.syscall_records,
        signal_log=recording.signal_records,
        first_epoch_index=0,
        use_sync_hints=True,
    )
    checked = 0
    for unit in batch.units:
        start_cp = checkpoints[unit.position]
        boundary_cp = checkpoints[unit.position + 1]
        assert not unit.start.is_delta
        assert unit.boundary.is_delta
        shared_before = {
            no
            for no, page in start_cp.memory.pages.items()
            if boundary_cp.memory.pages.get(no) is page
        }
        # Object-shared pages never appear in the delta.
        assert not (set(unit.boundary.page_changes) & shared_before)
        clone = roundtrip(unit)
        resolve = _blob_resolver(batch.blobs)
        start = clone.start.hydrate(resolve)
        boundary = clone.boundary.hydrate(resolve, base_pages=start.memory.pages)
        shared_after = {
            no
            for no, page in start.memory.pages.items()
            if boundary.memory.pages.get(no) is page
        }
        # Content addressing can only widen sharing (digest-equal pages
        # collapse onto one object even when the originals were distinct).
        assert shared_before <= shared_after, "hydration lost page sharing"
        assert start.kernel_state is None
        assert boundary.kernel_state is None
        assert start.digest() == start_cp.digest()
        assert boundary.digest() == boundary_cp.digest()
        if shared_before:
            checked += 1
    assert checked, "no unit had a surviving shared page — widen the workload"
