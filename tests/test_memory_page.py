"""Page-level unit tests."""

import pytest

from repro.memory.layout import (
    DATA_BASE,
    PAGE_WORDS,
    offset_of,
    page_of,
    wrap_word,
)
from repro.memory.page import Page


class TestLayout:
    def test_page_math(self):
        assert page_of(0) == 0
        assert page_of(PAGE_WORDS - 1) == 0
        assert page_of(PAGE_WORDS) == 1
        assert offset_of(PAGE_WORDS + 3) == 3

    def test_data_base_is_off_page_zero(self):
        assert page_of(DATA_BASE) >= 1

    def test_wrap_word_identity_in_range(self):
        assert wrap_word(0) == 0
        assert wrap_word(42) == 42
        assert wrap_word(-42) == -42
        assert wrap_word(2**63 - 1) == 2**63 - 1
        assert wrap_word(-(2**63)) == -(2**63)

    def test_wrap_word_overflow(self):
        assert wrap_word(2**63) == -(2**63)
        assert wrap_word(2**64) == 0
        assert wrap_word(2**64 + 5) == 5

    def test_wrap_word_congruence(self):
        for value in (3, -7, 2**70 + 9, -(2**65) - 1):
            assert (wrap_word(value) - value) % (2**64) == 0


class TestPage:
    def test_fresh_page_is_zeroed(self):
        page = Page()
        assert page.words == [0] * PAGE_WORDS
        assert page.refs == 1

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Page([1, 2, 3])

    def test_clone_is_independent(self):
        page = Page()
        page.words[0] = 9
        page.invalidate_hash()
        clone = page.clone()
        clone.words[0] = 10
        assert page.words[0] == 9
        assert clone.refs == 1

    def test_hash_cached_and_invalidated(self):
        page = Page()
        first = page.content_hash()
        page.words[5] = 1
        # without invalidation the stale cache would be returned
        assert page.content_hash() == first
        page.invalidate_hash()
        assert page.content_hash() != first

    def test_same_content_shortcuts_identity(self):
        page = Page()
        assert page.same_content(page)

    def test_same_content_by_value(self):
        a = Page()
        b = Page()
        assert a.same_content(b)
        b.words[1] = 2
        b.invalidate_hash()
        assert not a.same_content(b)

    def test_clone_carries_hash_cache(self):
        page = Page()
        cached = page.content_hash()
        clone = page.clone()
        assert clone.content_hash() == cached
