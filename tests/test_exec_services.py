"""Syscall service personalities: live logging and injection."""

import pytest

from repro.errors import DivergenceSignal
from repro.exec.services import InjectedSyscalls, LiveSyscalls
from repro.isa.context import ThreadContext
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_WORDS
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallDone, SyscallKind, SyscallRecord


def make_ctx(tid=1, syscalls=0):
    ctx = ThreadContext(tid=tid, pc=0, registers=[0] * 8)
    ctx.syscall_count = syscalls
    return ctx


def make_mem():
    mem = AddressSpace()
    mem.map_range(0, 4 * PAGE_WORDS)
    return mem


class TestLiveSyscalls:
    def test_logs_completions_with_sequence_numbers(self):
        kernel = Kernel(KernelSetup(), 10 * PAGE_WORDS)
        log = []
        services = LiveSyscalls(kernel, log)
        mem = make_mem()
        ctx = make_ctx()
        services.invoke(ctx, SyscallKind.TIME, (), mem, 5)
        ctx.syscall_count = 1
        services.invoke(ctx, SyscallKind.GETPID, (), mem, 6)
        assert [(r.tid, r.seq, r.kind) for r in log] == [
            (1, 0, SyscallKind.TIME),
            (1, 1, SyscallKind.GETPID),
        ]
        assert log[0].retval == 5

    def test_no_log_when_disabled(self):
        kernel = Kernel(KernelSetup(), 10 * PAGE_WORDS)
        services = LiveSyscalls(kernel, None)
        services.invoke(make_ctx(), SyscallKind.TIME, (), make_mem(), 0)
        assert services.log is None  # and nothing crashed

    def test_read_logs_buffer_writes(self):
        kernel = Kernel(KernelSetup(files={0: [1, 2, 3]}), 10 * PAGE_WORDS)
        log = []
        services = LiveSyscalls(kernel, log)
        mem = make_mem()
        ctx = make_ctx()
        fd = services.invoke(ctx, SyscallKind.OPEN, (0,), mem, 0).retval
        ctx.syscall_count = 1
        outcome = services.invoke(ctx, SyscallKind.READ, (fd, 8, 3), mem, 0)
        assert outcome.writes == ((8, (1, 2, 3)),)
        assert log[-1].writes == ((8, (1, 2, 3)),)
        assert log[-1].transferred == 3


class TestInjectedSyscalls:
    def test_injects_retval_and_memory(self):
        records = [
            SyscallRecord(
                tid=1, seq=0, kind=SyscallKind.READ, retval=2,
                writes=((8, (7, 9)),), transferred=2,
            )
        ]
        services = InjectedSyscalls(records)
        mem = make_mem()
        outcome = services.invoke(make_ctx(), SyscallKind.READ, (3, 8, 2), mem, 0)
        assert isinstance(outcome, SyscallDone)
        assert outcome.retval == 2
        assert mem.read_block(8, 2) == [7, 9]
        assert services.consumed == 1

    def test_lookup_is_per_thread_sequence(self):
        records = [
            SyscallRecord(tid=2, seq=0, kind=SyscallKind.TIME, retval=111),
            SyscallRecord(tid=1, seq=0, kind=SyscallKind.TIME, retval=222),
        ]
        services = InjectedSyscalls(records)
        outcome = services.invoke(make_ctx(tid=1), SyscallKind.TIME, (), make_mem(), 0)
        assert outcome.retval == 222

    def test_missing_record_blocks(self):
        from repro.oskernel.syscalls import SyscallBlock

        services = InjectedSyscalls([])
        outcome = services.invoke(make_ctx(), SyscallKind.TIME, (), make_mem(), 0)
        assert isinstance(outcome, SyscallBlock)

    def test_kind_mismatch_raises_and_calls_back(self):
        seen = []
        records = [SyscallRecord(tid=1, seq=0, kind=SyscallKind.RAND, retval=5)]
        services = InjectedSyscalls(records, on_mismatch=seen.append)
        with pytest.raises(DivergenceSignal):
            services.invoke(make_ctx(), SyscallKind.TIME, (), make_mem(), 0)
        assert seen and "time" in seen[0]

    def test_alloc_injection_maps_pages(self):
        base = 50 * PAGE_WORDS
        records = [
            SyscallRecord(tid=1, seq=0, kind=SyscallKind.ALLOC, retval=base)
        ]
        services = InjectedSyscalls(records)
        mem = make_mem()
        services.invoke(make_ctx(), SyscallKind.ALLOC, (10,), mem, 0)
        mem.write(base + 9, 1)
        assert mem.read(base + 9) == 1

    def test_no_kernel_events(self):
        services = InjectedSyscalls([])
        assert services.wakeups(100, make_mem()) == []
        assert services.signal_deliveries(100) == []
        assert services.next_event_time() is None
