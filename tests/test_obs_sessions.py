"""Per-session observability isolation (the service's scoped obs).

The service runs many record/replay sessions on concurrent threads of
one process, so the obs layer grew thread-scoped overrides: a session
activates a private ``StatsRegistry`` (counters) and installs a private
— or explicitly absent — ``Tracer`` (spans). These tests pin the
isolation contract at both levels:

* unit level — the scoped registry/tracer primitives themselves:
  overrides are per-thread, ``None`` is an explicit "no tracing here"
  override, and clearing restores the module global;
* service level — interleaved sessions report the same execution
  counters a solo run does, traced sessions collect exactly their own
  spans, and nothing ever lands in another session's (or the main
  thread's) trace.
"""

import json
import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.service import RecordService, ServiceConfig, SessionRequest


@pytest.fixture(autouse=True)
def _no_leaked_scope():
    """No test may leak a scoped registry/tracer or a global trace."""
    yield
    assert obs_spans.current() is None, "test leaked an active tracer"
    obs_spans.stop_trace()
    obs_spans.clear_session_tracer()
    obs_metrics.deactivate_session_registry()


# ---------------------------------------------------------------------------
# Unit level: the scoped primitives.
# ---------------------------------------------------------------------------


def test_session_registry_is_thread_scoped():
    baseline = obs_metrics.process_stats().snapshot()
    results = {}
    ready = threading.Barrier(2)

    def session(name, bumps):
        registry = obs_metrics.activate_session_registry()
        try:
            ready.wait(timeout=10)
            for _ in range(bumps):
                obs_metrics.process_stats().add(f"{name}.counter")
            results[name] = registry.snapshot()
        finally:
            obs_metrics.deactivate_session_registry()

    threads = [
        threading.Thread(target=session, args=("a", 3)),
        threading.Thread(target=session, args=("b", 5)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)

    # Each thread saw only its own counters...
    assert results["a"] == {"a.counter": 3}
    assert results["b"] == {"b.counter": 5}
    # ...and the process-global registry saw none of them.
    assert obs_metrics.process_stats().snapshot() == baseline


def test_deactivated_registry_falls_back_to_process_global():
    obs_metrics.activate_session_registry()
    obs_metrics.process_stats().add("scoped.only")
    obs_metrics.deactivate_session_registry()
    assert "scoped.only" not in obs_metrics.process_stats().snapshot()


def test_session_tracer_override_is_thread_scoped():
    global_tracer = obs_spans.start_trace()
    try:
        outcomes = {}

        def silent_session():
            # Explicit None: this session must not see (or feed) the
            # main thread's live trace.
            obs_spans.set_session_tracer(None)
            try:
                outcomes["silent_enabled"] = obs_spans.enabled()
                with obs_spans.span("ghost", obs_spans.CAT_EPOCH):
                    pass
            finally:
                obs_spans.clear_session_tracer()

        def traced_session():
            mine = obs_spans.Tracer()
            obs_spans.set_session_tracer(mine)
            try:
                with obs_spans.span("own-span", obs_spans.CAT_EPOCH):
                    pass
                outcomes["own_spans"] = [s.name for s in mine.spans]
            finally:
                obs_spans.clear_session_tracer()

        threads = [
            threading.Thread(target=silent_session),
            threading.Thread(target=traced_session),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        assert outcomes["silent_enabled"] is False
        assert outcomes["own_spans"] == ["own-span"]
        # The main thread's trace never saw either session.
        assert [s.name for s in global_tracer.spans] == []
        # And the main thread itself still traces.
        assert obs_spans.current() is global_tracer
    finally:
        obs_spans.stop_trace()


def test_clear_session_tracer_without_override_is_harmless():
    obs_spans.clear_session_tracer()
    obs_spans.clear_session_tracer()
    assert obs_spans.current() is None


# ---------------------------------------------------------------------------
# Service level: interleaved sessions.
# ---------------------------------------------------------------------------


def _session_requests(count, **kwargs):
    return [
        SessionRequest(sid=f"s{i}", workload="fft", scale=1, seed=13, **kwargs)
        for i in range(count)
    ]


def test_interleaved_sessions_report_solo_execution_metrics():
    service = RecordService(ServiceConfig(jobs=2, max_active=3))
    solo = service.run(_session_requests(1))
    assert solo.ok, [r.error for r in solo.results]
    interleaved = service.run(_session_requests(3))
    assert interleaved.ok, [r.error for r in interleaved.results]

    reference = solo.results[0].metrics
    for result in interleaved.results:
        # Deterministic execution counters match the solo run exactly —
        # no bleed-in from neighbours, no bleed-out to them. (Host/wire
        # groups legitimately differ: they describe the shared fleet.)
        for group in ("exec", "record"):
            assert result.metrics.get(group) == reference.get(group), (
                f"{result.sid}: {group} counters drifted under interleaving"
            )


def test_traced_session_collects_only_its_own_spans():
    service = RecordService(ServiceConfig(jobs=2, max_active=3))
    report = service.run(
        [
            SessionRequest(sid="traced0", workload="fft", scale=1, seed=13,
                           trace=True),
            SessionRequest(sid="dark", workload="fft", scale=1, seed=13),
            SessionRequest(sid="traced1", workload="fft", scale=1, seed=13,
                           trace=True),
        ]
    )
    assert report.ok, [r.error for r in report.results]
    by_sid = {r.sid: r for r in report.results}

    assert by_sid["dark"].tracer is None
    for sid in ("traced0", "traced1"):
        tracer = by_sid[sid].tracer
        assert tracer is not None and tracer.spans, f"{sid} collected nothing"
        # Exactly one execute span per executed epoch — the count the
        # run's own merged counters report, nothing from neighbours.
        executes = [s for s in tracer.spans if s.name == "execute"]
        epochs = by_sid[sid].metrics["exec"]["epochs"]
        assert len(executes) == epochs, (
            f"{sid}: {len(executes)} execute spans vs {epochs} epochs"
        )
    # Identical sessions collect identical span shapes.
    shape0 = sorted(
        (s.name, s.cat) for s in by_sid["traced0"].tracer.spans
    )
    shape1 = sorted(
        (s.name, s.cat) for s in by_sid["traced1"].tracer.spans
    )
    assert shape0 == shape1
    # The service never leaks a trace into the caller's thread.
    assert obs_spans.current() is None


def test_sessions_never_touch_the_callers_global_trace():
    global_tracer = obs_spans.start_trace()
    try:
        service = RecordService(ServiceConfig(jobs=2, max_active=2))
        report = service.run(_session_requests(2))
        assert report.ok, [r.error for r in report.results]
        # The caller's trace saw no session spans: sessions without
        # trace=True run with the explicit None override, not the
        # module-global tracer.
        assert [s.name for s in global_tracer.spans] == []
    finally:
        obs_spans.stop_trace()


def test_session_recordings_unaffected_by_tracing():
    service = RecordService(ServiceConfig(jobs=2, max_active=2))
    untraced = service.run(_session_requests(1))
    traced = service.run(_session_requests(1, trace=True))
    assert untraced.ok and traced.ok
    assert json.dumps(
        untraced.results[0].recording_plain, sort_keys=True
    ) == json.dumps(traced.results[0].recording_plain, sort_keys=True)
