"""ThreadLogIndex edge cases: the shard-extent query of the durable log.

``positions_between`` defines which records belong to an epoch's shard
(``repro.record.shards``): the half-open per-thread key window between
consecutive checkpoints' counts. These tests pin the edge cases that
matter for durability — empty-tid streams, records straddling an epoch
boundary, and the partition property (consecutive windows are disjoint
and concatenation-exact) — first on synthetic logs, then on a real
recording's checkpoint floors.
"""

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder
from repro.host.wire import ThreadLogIndex
from repro.machine.config import MachineConfig
from repro.record.shards import checkpoint_floors
from repro.workloads import build_workload


def _index(records):
    """Index over synthetic ``(tid, key)`` records."""
    return ThreadLogIndex(records, lambda r: r[0], lambda r: r[1])


class TestEmptyStreams:
    def test_empty_log(self):
        index = _index([])
        assert index.slice_from({}) == ()
        assert index.positions_between({}, None) == ()
        assert index.slice_between({1: 0}, {1: 5}) == ()

    def test_floor_for_absent_tid_is_harmless(self):
        # A thread named in the floors but owning no records (it did no
        # syscalls this epoch) contributes an empty shard, not an error.
        records = [(1, 0), (1, 1)]
        index = _index(records)
        assert index.slice_between({1: 0, 9: 3}, {1: 2, 9: 7}) == tuple(records)

    def test_tid_absent_from_start_floors_starts_at_zero(self):
        # A thread spawned mid-epoch has no entry in the start
        # checkpoint; all its records up to the end floor belong here.
        records = [(1, 0), (2, 0), (2, 1), (1, 1)]
        index = _index(records)
        assert index.slice_between({1: 0}, {1: 2, 2: 1}) == (
            (1, 0), (2, 0), (1, 1),
        )

    def test_tid_absent_from_end_floors_is_unbounded(self):
        # The final window has no end checkpoint for threads that exited
        # after it — absent from end_floors means "keep everything".
        records = [(1, 0), (1, 1), (2, 0)]
        index = _index(records)
        assert index.slice_between({1: 1}, {2: 1}) == ((1, 1), (2, 0))
        assert index.slice_between({1: 1, 2: 1}, {2: 1}) == ((1, 1),)

    def test_empty_window_when_floors_equal(self):
        records = [(1, 0), (1, 1), (1, 2)]
        index = _index(records)
        assert index.positions_between({1: 1}, {1: 1}) == ()


class TestBoundaryStraddle:
    """A record at exactly a checkpoint's count belongs to the NEXT epoch.

    Boundary-straddling calls are logged at completion, after the
    checkpoint at count k was cut — so ``seq == k`` must land in the
    following window (the ``[start, end)`` rule), never be duplicated,
    never be dropped.
    """

    def test_record_at_end_floor_excluded(self):
        records = [(1, 0), (1, 1), (1, 2)]
        index = _index(records)
        assert index.slice_between({1: 0}, {1: 2}) == ((1, 0), (1, 1))

    def test_record_at_start_floor_included(self):
        records = [(1, 0), (1, 1), (1, 2)]
        index = _index(records)
        assert index.slice_between({1: 2}, None) == ((1, 2),)

    def test_straddler_lands_in_exactly_one_window(self):
        # Epoch boundary at count 2 for tid 1: the record with key 2
        # shows up in the second window only.
        records = [(1, 0), (2, 0), (1, 1), (1, 2), (2, 1), (1, 3)]
        index = _index(records)
        first = index.slice_between({}, {1: 2, 2: 1})
        second = index.slice_between({1: 2, 2: 1}, None)
        assert (1, 2) not in first
        assert (1, 2) in second
        assert sorted(first + second) == sorted(records)


class TestWindowAlgebra:
    RECORDS = [
        (1, 0), (2, 0), (1, 1), (3, 0), (2, 1), (1, 2), (3, 1), (2, 2),
    ]

    def test_none_end_floors_equals_slice_from(self):
        index = _index(self.RECORDS)
        floors = {1: 1, 2: 2}
        assert index.slice_between(floors, None) == index.slice_from(floors)

    def test_log_order_preserved(self):
        index = _index(self.RECORDS)
        window = index.slice_between({}, None)
        assert window == tuple(self.RECORDS)

    def test_consecutive_windows_partition_the_log(self):
        # Monotone per-thread floors cut the log into disjoint windows
        # whose concatenation is the full log in order — the property
        # that makes per-epoch shards concatenation-exact. Intermediate
        # boundaries name every live thread, exactly as real checkpoints
        # do (a tid omitted from an end boundary reads as unbounded).
        index = _index(self.RECORDS)
        boundaries = [{}, {1: 1, 2: 1, 3: 1}, {1: 2, 2: 2, 3: 2}, None]
        windows = [
            index.slice_between(boundaries[i], boundaries[i + 1])
            for i in range(len(boundaries) - 1)
        ]
        merged = tuple(record for window in windows for record in window)
        assert sorted(merged) == sorted(self.RECORDS)
        positions = [
            p
            for i in range(len(boundaries) - 1)
            for p in index.positions_between(boundaries[i], boundaries[i + 1])
        ]
        assert sorted(positions) == list(range(len(self.RECORDS)))

    def test_record_at(self):
        index = _index(self.RECORDS)
        for position, record in enumerate(self.RECORDS):
            assert index.record_at(position) == record


def test_checkpoint_floors_partition_a_real_syscall_log():
    """Epoch windows from real checkpoints reconstruct the global log.

    This is the exact slicing the durable log's shard extents use:
    floors from consecutive epoch start checkpoints, final window
    unbounded. Each window must be disjoint and their concatenation the
    committed syscall log, record for record.
    """
    instance = build_workload("pbzip", workers=2, scale=2, seed=11)
    machine = MachineConfig(cores=2)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine, epoch_cycles=max(native.duration // 12, 500)
    )
    recording = DoublePlayRecorder(
        instance.image, instance.setup, config
    ).record().recording
    assert recording.syscall_records, "workload produced no syscalls"

    index = ThreadLogIndex.for_syscalls(recording.syscall_records)
    floors = [
        checkpoint_floors(epoch.start_checkpoint)[0]
        for epoch in recording.epochs
    ]
    windows = [
        index.slice_between(
            floors[i], floors[i + 1] if i + 1 < len(floors) else None
        )
        for i in range(len(floors))
    ]
    merged = [record for window in windows for record in window]
    assert merged == list(recording.syscall_records)
