"""Multicore engine: determinism, parallelism, blocking, deadlock."""

import pytest

from repro.errors import DeadlockError
from repro.isa.assembler import Assembler
from repro.isa.context import ThreadStatus
from repro.machine.config import MachineConfig
from repro.oskernel.syscalls import SyscallKind
from tests.conftest import boot_multicore, counter_program


class TestDeterminism:
    def test_identical_runs_identical_state(self):
        image = counter_program(workers=3, iters=15)
        a, _ = boot_multicore(image, MachineConfig(cores=2))
        b, _ = boot_multicore(image, MachineConfig(cores=2))
        a.run()
        b.run()
        assert a.state_digest() == b.state_digest()
        assert a.time == b.time

    def test_core_count_changes_timing_not_result(self):
        image = counter_program(workers=2, iters=20)
        one, k1 = boot_multicore(image, MachineConfig(cores=1))
        two, k2 = boot_multicore(image, MachineConfig(cores=2))
        one.run()
        two.run()
        assert k1.output == k2.output == [40]
        assert two.time < one.time  # real parallel speedup

    def test_parallel_speedup_is_substantial(self):
        asm = Assembler()
        with asm.function("worker"):
            asm.work(2000)
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r1", "worker")
            asm.spawn("r2", "worker")
            asm.join("r1")
            asm.join("r2")
            asm.exit_()
        image = asm.assemble()
        seq, _ = boot_multicore(image, MachineConfig(cores=1))
        par, _ = boot_multicore(image, MachineConfig(cores=2))
        seq.run()
        par.run()
        assert par.time < seq.time * 0.65


class TestThreadLifecycle:
    def test_spawn_passes_arguments(self):
        asm = Assembler()
        asm.word("out", 0)
        with asm.function("child"):
            asm.add("r4", "r0", "r1")
            asm.storeg("r4", "out")
            asm.exit_()
        with asm.function("main"):
            asm.li("r1", 30)
            asm.li("r2", 12)
            asm.spawn("r3", "child", args=["r1", "r2"])
            asm.join("r3")
            asm.loadg("r5", "out")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        engine.run()
        assert engine.contexts[1].registers[5] == 42

    def test_child_tids_deterministic(self):
        image = counter_program(workers=2, iters=1)
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        engine.run()
        assert set(engine.contexts) == {1, 1025, 1026}

    def test_join_already_exited_thread(self):
        asm = Assembler()
        with asm.function("quick"):
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r1", "quick")
            asm.work(500)  # child certainly done
            asm.join("r1")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        assert engine.run() == "done"

    def test_join_blocks_until_exit(self):
        asm = Assembler()
        with asm.function("slow"):
            asm.work(1000)
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r1", "slow")
            asm.join("r1")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        engine.run()
        assert engine.time >= 1000

    def test_grandchildren(self):
        asm = Assembler()
        asm.word("out", 0)
        with asm.function("leaf"):
            asm.li("r2", 5)
            asm.storeg("r2", "out")
            asm.exit_()
        with asm.function("mid"):
            asm.spawn("r1", "leaf")
            asm.join("r1")
            asm.exit_()
        with asm.function("main"):
            asm.spawn("r1", "mid")
            asm.join("r1")
            asm.loadg("r3", "out")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        engine.run()
        assert engine.contexts[1].registers[3] == 5
        assert 1025 * 1024 + 1 in engine.contexts


class TestBlockingAndDeadlock:
    def test_self_deadlock_detected(self):
        asm = Assembler()
        asm.word("m", 0)
        with asm.function("main"):
            asm.li("r1", "m")
            asm.lock("r1")
            asm.lock("r1")  # faults: non-reentrant
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=1))
        from repro.errors import GuestFault

        with pytest.raises(GuestFault):
            engine.run()

    def test_abba_deadlock_detected(self):
        asm = Assembler()
        asm.word("a", 0)
        asm.word("b", 0)
        with asm.function("worker"):
            asm.li("r1", "b")
            asm.lock("r1")
            asm.work(200)
            asm.li("r2", "a")
            asm.lock("r2")
            asm.exit_()
        with asm.function("main"):
            asm.li("r1", "a")
            asm.lock("r1")
            asm.spawn("r3", "worker")
            asm.work(200)
            asm.li("r2", "b")
            asm.lock("r2")
            asm.join("r3")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=2))
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert set(excinfo.value.blocked_tids) == {1, 1025}

    def test_blocked_thread_releases_core(self):
        """A thread blocked on accept must not spin a core."""
        from repro.oskernel.kernel import KernelSetup
        from repro.oskernel.net import Arrival

        asm = Assembler()
        with asm.function("main"):
            asm.syscall("r1", SyscallKind.LISTEN, args=[])
            asm.syscall("r2", SyscallKind.ACCEPT, args=["r1"])
            asm.exit_()
        setup = KernelSetup(arrivals=[Arrival(time=5000, payload=(1,))])
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=1), setup)
        engine.run()
        # time jumped to the arrival instead of burning 5000 cycles of ops
        assert engine.time >= 5000
        assert engine.ops < 50

    def test_stop_check_pauses_and_resumes(self):
        image = counter_program(workers=2, iters=30)
        engine, kernel = boot_multicore(image, MachineConfig(cores=2))
        status = engine.run(stop_check=lambda e: e.time >= 500)
        assert status == "stopped"
        assert not engine.all_exited()
        assert engine.run() == "done"
        assert kernel.output == [60]

    def test_quantum_preemption_shares_one_core(self):
        """With one core and two compute threads, both make progress."""
        asm = Assembler()
        asm.word("a", 0)
        asm.word("b", 0)
        for name, cell in (("wa", "a"), ("wb", "b")):
            with asm.function(name):
                asm.li("r2", 0)
                asm.label("loop")
                asm.work(100)
                asm.li("r1", 1)
                asm.storeg("r1", cell)
                asm.addi("r2", "r2", 1)
                asm.blti("r2", 50, "loop")
                asm.exit_()
        with asm.function("main"):
            asm.spawn("r1", "wa")
            asm.spawn("r2", "wb")
            asm.join("r1")
            asm.join("r2")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=1))
        # stop early; both threads must have run (preemption happened)
        engine.run(stop_check=lambda e: e.time >= 4000)
        assert engine.mem.read(engine.program.address_of("a")) == 1
        assert engine.mem.read(engine.program.address_of("b")) == 1


class TestQuiesce:
    def test_quiesce_aligns_core_clocks(self):
        image = counter_program(workers=2, iters=30)
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        engine.run(stop_check=lambda e: e.time >= 400)
        time = engine.quiesce()
        assert all(core.time == time for core in engine.cores)

    def test_advance_all_charges_every_core(self):
        image = counter_program(workers=2, iters=30)
        engine, _ = boot_multicore(image, MachineConfig(cores=2))
        engine.run(stop_check=lambda e: e.time >= 400)
        engine.quiesce()
        before = engine.time
        engine.advance_all(100)
        assert engine.time == before + 100

    def test_run_continues_after_quiesce(self):
        image = counter_program(workers=2, iters=30)
        engine, kernel = boot_multicore(image, MachineConfig(cores=2))
        engine.run(stop_check=lambda e: e.time >= 400)
        engine.quiesce()
        engine.advance_all(50)
        assert engine.run() == "done"
        assert kernel.output == [60]
