"""Analysis layer: metrics, tables, and (fast variants of) the drivers."""

import pytest

from repro.analysis import experiments
from repro.analysis.metrics import fmt_bytes, fmt_pct, geomean_overhead
from repro.analysis.tables import render_table


class TestMetrics:
    def test_geomean_of_equal_values(self):
        assert geomean_overhead([0.2, 0.2, 0.2]) == pytest.approx(0.2)

    def test_geomean_between_min_and_max(self):
        value = geomean_overhead([0.1, 0.4])
        assert 0.1 < value < 0.4

    def test_geomean_empty_raises(self):
        with pytest.raises(ValueError):
            geomean_overhead([])

    def test_fmt_pct(self):
        assert fmt_pct(0.1234) == "12.3%"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3 << 20) == "3.00 MiB"


class TestRenderTable:
    def test_alignment_and_missing_cells(self):
        rows = [{"a": "x", "b": 1}, {"a": "longer"}]
        text = render_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longer" in text
        # all data lines equal width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        text = render_table([], ["a"])
        assert "a" in text


class TestDrivers:
    """Small-scale runs of every experiment driver (shape assertions; the
    full-scale numbers live in benchmarks/)."""

    def test_workload_characteristics_fields(self):
        rows = experiments.workload_characteristics(workers=2, scale=1)
        assert {row["workload"] for row in rows} >= {"pbzip", "fft"}
        for row in rows:
            for key in ("threads", "instructions", "syscalls", "sync_ops",
                        "shared_pages", "races"):
                assert key in row

    def test_overhead_experiment_small(self):
        rows = experiments.overhead_experiment(
            workers=2, scale=4, names=["pfscan", "ocean"]
        )
        assert rows[-1]["workload"] == "GEOMEAN"
        assert all(row["divergences"] == 0 for row in rows[:-1])

    def test_overhead_experiment_shared_cores_costs_more(self):
        spare = experiments.overhead_experiment(
            workers=2, scale=4, names=["pfscan"]
        )
        shared = experiments.overhead_experiment(
            workers=2, scale=4, names=["pfscan"], spare_cores=False
        )
        assert shared[-1]["overhead_raw"] > spare[-1]["overhead_raw"]

    def test_log_size_experiment_small(self):
        rows = experiments.log_size_experiment(
            workers=2, scale=4, names=["pfscan", "water"]
        )
        for row in rows:
            assert row["dp_total_raw"] > 0

    def test_replay_speed_experiment_small(self):
        rows = experiments.replay_speed_experiment(
            workers=2, scale=4, names=["ocean"]
        )
        assert rows[0]["verified"]
        assert rows[0]["par_x_raw"] < rows[0]["seq_x_raw"]

    def test_divergence_experiment_small(self):
        rows = experiments.divergence_experiment(workers=2, scale=3)
        assert all(row["replay_ok"] for row in rows)
        hinted_clean = [
            row for row in rows if not row["racy"] and row["sync_hints"]
        ]
        assert all(row["divergences"] == 0 for row in hinted_clean)

    def test_epoch_length_experiment_small(self):
        rows = experiments.epoch_length_experiment(
            name="pfscan", workers=2, scale=6, divisors=(4, 12, 30)
        )
        assert [row["epochs"] for row in rows] == sorted(
            row["epochs"] for row in rows
        )

    def test_baseline_comparison_small(self):
        rows = experiments.baseline_comparison(
            workers=2, scale=4, names=["ocean"]
        )
        row = rows[0]
        assert row["doubleplay_raw"] < row["uniproc_raw"]

    def test_ablation_checkpoint_cost_small(self):
        rows = experiments.ablation_checkpoint_cost(
            name="pfscan", workers=2, scale=4, cow_costs=(2, 60)
        )
        assert rows[0]["overhead_raw"] <= rows[1]["overhead_raw"]

    def test_race_free_and_racy_name_partitions(self):
        race_free = set(experiments.race_free_names())
        racy = set(experiments.racy_names())
        assert not race_free & racy
        assert "pbzip" in race_free
        assert "racy-counter" in racy
