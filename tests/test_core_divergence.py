"""Divergence detection unit tests (epoch-boundary comparison)."""

from repro.checkpoint.manager import CheckpointManager
from repro.core.divergence import compare_epoch_end
from repro.core.epoch_runner import run_epoch
from repro.exec.multicore import MulticoreEngine
from repro.exec.services import InjectedSyscalls, LiveSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.record.sync_log import SyncOrderLog
from tests.conftest import boot_multicore, counter_program


def capture_epoch(image, workers=2, stop_at=1200, setup=None, log=None):
    """Thread-parallel run producing (start cp, boundary cp, syscall log,
    hint events)."""
    machine = MachineConfig(cores=workers)
    syscall_log = [] if log is None else log
    kernel = Kernel(setup or KernelSetup(), image.heap_base)
    engine = MulticoreEngine.boot(image, machine, LiveSyscalls(kernel, syscall_log))
    hints = []
    engine.acquisition_log = hints
    manager = CheckpointManager()
    start = manager.initial(engine)
    engine.run(stop_check=lambda e: e.time >= stop_at)
    boundary = manager.take(engine, 1)
    return machine, start, boundary, syscall_log, hints


class TestEpochRunner:
    def test_clean_epoch_matches(self):
        image = counter_program(workers=2, iters=60)
        machine, start, boundary, log, hints = capture_epoch(image)
        result = run_epoch(
            image, machine, 0, start, boundary, log,
            SyncOrderLog(tuple(hints)), True,
        )
        assert result.ok, result.reason
        assert result.schedule.total_ops() > 0
        assert result.duration > 0

    def test_epoch_result_digest_matches_boundary(self):
        image = counter_program(workers=2, iters=60)
        machine, start, boundary, log, hints = capture_epoch(image)
        result = run_epoch(
            image, machine, 0, start, boundary, log,
            SyncOrderLog(tuple(hints)), True,
        )
        assert result.end_digest == boundary.digest()

    def test_committed_sync_log_collected(self):
        image = counter_program(workers=2, iters=60)
        machine, start, boundary, log, hints = capture_epoch(image)
        result = run_epoch(
            image, machine, 0, start, boundary, log,
            SyncOrderLog(tuple(hints)), True,
        )
        assert len(result.committed_sync.events) > 0

    def test_wrong_boundary_is_divergence(self):
        """Comparing against a later checkpoint's state must mismatch."""
        image = counter_program(workers=2, iters=60)
        machine = MachineConfig(cores=2)
        syscall_log = []
        kernel = Kernel(KernelSetup(), image.heap_base)
        engine = MulticoreEngine.boot(image, machine, LiveSyscalls(kernel, syscall_log))
        hints = []
        engine.acquisition_log = hints
        manager = CheckpointManager()
        start = manager.initial(engine)
        engine.run(stop_check=lambda e: e.time >= 800)
        middle = manager.take(engine, 1)
        engine.run(stop_check=lambda e: e.time >= 1600)
        later = manager.take(engine, 2)
        # run the first epoch but give it the *second* boundary's digest to
        # match against — targets come from `later`, so the executor runs
        # further than `middle`; against `middle` this must diverge.
        result = run_epoch(
            image, machine, 0, start, middle, syscall_log,
            SyncOrderLog(tuple(hints)), True,
        )
        assert result.ok  # sanity: correct boundary matches
        mismatch = compare_and_diverge(image, machine, start, middle, later,
                                       syscall_log, hints)
        assert mismatch

    def test_racy_epoch_can_diverge(self):
        image = counter_program(workers=2, iters=80, locked=False, name="racy")
        machine, start, boundary, log, hints = capture_epoch(image, stop_at=900)
        result = run_epoch(
            image, machine, 0, start, boundary, log,
            SyncOrderLog(tuple(hints)), True,
        )
        # either it happens to match or it reports a divergence; both legal,
        # but the result must be well-formed either way
        if not result.ok:
            assert result.reason


def compare_and_diverge(image, machine, start, middle, later, syscall_log, hints):
    """Run to `later`'s targets, compare against `middle` — must differ."""
    injector = InjectedSyscalls(syscall_log)
    engine = UniprocessorEngine.from_checkpoint(
        image,
        machine,
        injector,
        memory_snapshot=start.memory,
        contexts=start.copy_contexts(),
        sync_state=start.sync_state,
        targets=later.targets(),
        wake_blocked_io=True,
    )
    from repro.record.sync_log import SyncOrderOracle

    engine.sync.oracle = SyncOrderOracle(SyncOrderLog(tuple(hints)))
    engine.run()
    report = compare_epoch_end(engine, middle)
    return not report.matches


class TestCompareReport:
    def test_check_cost_positive(self):
        image = counter_program(workers=2, iters=60)
        machine, start, boundary, log, hints = capture_epoch(image)
        result = run_epoch(
            image, machine, 0, start, boundary, log,
            SyncOrderLog(tuple(hints)), True,
        )
        assert result.report.check_cost > 0

    def test_report_details_empty_on_match(self):
        image = counter_program(workers=2, iters=60)
        machine, start, boundary, log, hints = capture_epoch(image)
        result = run_epoch(
            image, machine, 0, start, boundary, log,
            SyncOrderLog(tuple(hints)), True,
        )
        assert result.report.details == []
        assert bool(result.report)
