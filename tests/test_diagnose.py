"""Divergence diagnosis tests."""

import pytest

from repro.analysis.diagnose import diagnose_epoch, diagnose_recording
from repro.core import DoublePlayConfig, DoublePlayRecorder
from repro.errors import ReplayError
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from tests.conftest import counter_program


def record(image, workers=2, epoch_cycles=900):
    config = DoublePlayConfig(
        machine=MachineConfig(cores=workers), epoch_cycles=epoch_cycles
    )
    return DoublePlayRecorder(image, KernelSetup(), config).record()


class TestDiagnose:
    def test_recovered_epochs_name_the_racing_address(self):
        image = counter_program(workers=2, iters=80, locked=False, name="racy")
        result = record(image)
        assert result.recording.divergences() > 0
        machine = MachineConfig(cores=2)
        diagnoses = diagnose_recording(image, machine, result.recording)
        assert diagnoses, "recovered epochs must exist"
        counter_addr = image.address_of("counter")
        racy = [d for d in diagnoses if d.racy]
        assert racy, "at least one recovered epoch shows the race"
        assert any(counter_addr in d.racy_addresses for d in racy)
        assert all(d.recovered for d in diagnoses)

    def test_clean_epochs_diagnose_clean(self):
        image = counter_program(workers=2, iters=60)
        result = record(image)
        machine = MachineConfig(cores=2)
        diagnosis = diagnose_epoch(
            image, machine, result.recording, result.recording.epochs[1].index
        )
        assert not diagnosis.racy
        assert diagnosis.racy_addresses == []

    def test_race_free_recording_has_no_recovered_epochs(self):
        image = counter_program(workers=2, iters=60)
        result = record(image)
        machine = MachineConfig(cores=2)
        assert diagnose_recording(image, machine, result.recording) == []

    def test_unknown_epoch_rejected(self):
        image = counter_program(workers=2, iters=40)
        result = record(image)
        with pytest.raises(ReplayError):
            diagnose_epoch(image, MachineConfig(cores=2), result.recording, 999)

    def test_unmaterialised_checkpoint_rejected(self):
        import json

        from repro.record.recording import Recording

        image = counter_program(workers=2, iters=60)
        result = record(image)
        plain = json.loads(json.dumps(result.recording.to_plain()))
        restored = Recording.from_plain(plain, result.recording.initial_checkpoint)
        later = restored.epochs[-1].index
        with pytest.raises(ReplayError):
            diagnose_epoch(image, MachineConfig(cores=2), restored, later)
