"""Command-line interface tests."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_workloads(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("pbzip", "apache", "radix", "racy-counter"):
            assert name in text


class TestRun:
    def test_runs_and_validates(self):
        code, text = run_cli("run", "pfscan", "--scale", "2")
        assert code == 0
        assert "valid=True" in text

    def test_worker_count_respected(self):
        code, text = run_cli("run", "fft", "--workers", "4", "--scale", "2")
        assert code == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "nope")


class TestRecordReplay:
    def test_record_reports_stats(self):
        code, text = run_cli("record", "pbzip", "--scale", "4")
        assert code == 0
        assert "divergences" in text
        assert "schedule_bytes" in text

    def test_record_flags(self):
        code, text = run_cli(
            "record", "fft", "--scale", "2", "--no-sync-hints",
            "--epoch-divisor", "8",
        )
        assert code == 0

    def test_record_then_replay_round_trip(self, tmp_path):
        path = tmp_path / "rec.json"
        code, _ = run_cli("record", "mysql", "--scale", "4", "-o", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["workload"]["name"] == "mysql"

        code, text = run_cli("replay", str(path))
        assert code == 0
        assert "verified" in text

        code, text = run_cli("replay", str(path), "--parallel")
        assert code == 0
        assert "verified" in text

        code, text = run_cli("replay", str(path), "--epoch", "1")
        assert code == 0
        assert "verified" in text

    def test_racy_recording_replays_from_disk(self, tmp_path):
        path = tmp_path / "racy.json"
        code, text = run_cli(
            "record", "racy-counter", "--scale", "2", "--workers", "3",
            "-o", str(path),
        )
        assert code == 0
        code, text = run_cli("replay", str(path))
        assert code == 0
        assert "verified" in text


class TestDurableLogCli:
    def _record_durable(self, log_dir, *extra):
        return run_cli(
            "record", "pbzip", "--scale", "4",
            "--log-dir", str(log_dir), *extra,
        )

    def test_from_epoch_zero_is_explicit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FSYNC", "0")
        log_dir = tmp_path / "log"
        code, _ = self._record_durable(log_dir)
        assert code == 0
        # Regression: `--from-epoch 0` used to be indistinguishable from
        # "not given" — it must be an explicit, valid suffix target.
        code, text = run_cli(
            "replay", str(log_dir), "--from-epoch", "0"
        )
        assert code == 0
        assert "from epoch 0" in text and "verified" in text
        # ...and on a JSON recording it must error, even at 0.
        json_path = tmp_path / "rec.json"
        code, _ = run_cli(
            "record", "pbzip", "--scale", "4", "-o", str(json_path)
        )
        assert code == 0
        code, text = run_cli(
            "replay", str(json_path), "--from-epoch", "0"
        )
        assert code == 2
        assert "needs a durable log directory" in text

    def test_flight_window_requires_log_dir(self):
        code, text = run_cli("record", "pbzip", "--flight-window", "3")
        assert code == 2
        assert "--flight-window requires --log-dir" in text
        code, text = run_cli(
            "record", "pbzip", "--log-dir", "/tmp/x", "--flight-window", "0"
        )
        assert code == 2
        assert "must be >= 1" in text

    def test_flight_window_record_and_recover(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FSYNC", "0")
        monkeypatch.setenv("REPRO_LOG_GROUP_KB", "1")
        log_dir = tmp_path / "log"
        code, text = self._record_durable(
            log_dir, "--log-spill", "--flight-window", "2",
            "--epoch-divisor", "24",
        )
        assert code == 0
        manifest = json.loads((log_dir / "manifest.json").read_text())
        assert manifest["flight_window"] == 2
        assert len(manifest["epochs"]) <= 2
        code, text = run_cli("log", "recover", str(log_dir))
        assert code == 0
        assert "complete" in text and "verified" in text
        code, text = run_cli("replay", str(log_dir), "--tail")
        assert code == 0
        assert "tail" in text and "verified" in text

    def test_tail_needs_directory(self, tmp_path):
        json_path = tmp_path / "rec.json"
        json_path.write_text("{}")
        code, text = run_cli("replay", str(json_path), "--tail")
        assert code == 2
        assert "needs a durable log directory" in text

    def test_recover_rejects_missing_log(self, tmp_path):
        code, text = run_cli("log", "recover", str(tmp_path))
        assert code == 2
        assert "no durable log manifest" in text

    def test_recover_reports_integrity_problems(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FSYNC", "0")
        log_dir = tmp_path / "log"
        code, _ = self._record_durable(log_dir)
        assert code == 0
        (log_dir / "blobs" / "pack.dppack").unlink()
        code, text = run_cli("log", "recover", str(log_dir))
        assert code == 1
        assert "FAILED" in text and "integrity problem" in text


class TestExperiment:
    def test_table1(self):
        code, text = run_cli("experiment", "table1")
        assert code == 0
        assert "races" in text
        assert "pbzip" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")


class TestDiagnose:
    def test_diagnose_racy_recording(self, tmp_path):
        path = tmp_path / "racy.json"
        code, _ = run_cli(
            "record", "racy-counter", "--workers", "3", "--scale", "2",
            "-o", str(path),
        )
        assert code == 0
        code, text = run_cli("diagnose", str(path))
        assert code == 0
        assert "epoch" in text

    def test_diagnose_clean_recording(self, tmp_path):
        path = tmp_path / "clean.json"
        run_cli("record", "fft", "--scale", "2", "-o", str(path))
        code, text = run_cli("diagnose", str(path))
        assert code == 0
        assert "nothing to diagnose" in text
