"""Command-line interface tests."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_workloads(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("pbzip", "apache", "radix", "racy-counter"):
            assert name in text


class TestRun:
    def test_runs_and_validates(self):
        code, text = run_cli("run", "pfscan", "--scale", "2")
        assert code == 0
        assert "valid=True" in text

    def test_worker_count_respected(self):
        code, text = run_cli("run", "fft", "--workers", "4", "--scale", "2")
        assert code == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "nope")


class TestRecordReplay:
    def test_record_reports_stats(self):
        code, text = run_cli("record", "pbzip", "--scale", "4")
        assert code == 0
        assert "divergences" in text
        assert "schedule_bytes" in text

    def test_record_flags(self):
        code, text = run_cli(
            "record", "fft", "--scale", "2", "--no-sync-hints",
            "--epoch-divisor", "8",
        )
        assert code == 0

    def test_record_then_replay_round_trip(self, tmp_path):
        path = tmp_path / "rec.json"
        code, _ = run_cli("record", "mysql", "--scale", "4", "-o", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["workload"]["name"] == "mysql"

        code, text = run_cli("replay", str(path))
        assert code == 0
        assert "verified" in text

        code, text = run_cli("replay", str(path), "--parallel")
        assert code == 0
        assert "verified" in text

        code, text = run_cli("replay", str(path), "--epoch", "1")
        assert code == 0
        assert "verified" in text

    def test_racy_recording_replays_from_disk(self, tmp_path):
        path = tmp_path / "racy.json"
        code, text = run_cli(
            "record", "racy-counter", "--scale", "2", "--workers", "3",
            "-o", str(path),
        )
        assert code == 0
        code, text = run_cli("replay", str(path))
        assert code == 0
        assert "verified" in text


class TestExperiment:
    def test_table1(self):
        code, text = run_cli("experiment", "table1")
        assert code == 0
        assert "races" in text
        assert "pbzip" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")


class TestDiagnose:
    def test_diagnose_racy_recording(self, tmp_path):
        path = tmp_path / "racy.json"
        code, _ = run_cli(
            "record", "racy-counter", "--workers", "3", "--scale", "2",
            "-o", str(path),
        )
        assert code == 0
        code, text = run_cli("diagnose", str(path))
        assert code == 0
        assert "epoch" in text

    def test_diagnose_clean_recording(self, tmp_path):
        path = tmp_path / "clean.json"
        run_cli("record", "fft", "--scale", "2", "-o", str(path))
        code, text = run_cli("diagnose", str(path))
        assert code == 0
        assert "nothing to diagnose" in text
