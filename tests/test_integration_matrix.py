"""The full-contract matrix: every workload × worker counts.

For each configuration: the committed recording validates against the
workload's own oracle, race-free recordings never diverge, and both
replay strategies verify. This is the repository's strongest single
integration statement, kept fast with small scales.
"""

import pytest

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.machine.config import MachineConfig
from repro.workloads import WORKLOADS, build_workload, workload_names

CONFIGS = [(name, workers) for name in workload_names() for workers in (2, 3)]


@pytest.mark.parametrize("name,workers", CONFIGS)
def test_record_validate_replay(name, workers):
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = result.recording

    # 1. the committed execution produces a correct program result
    kernel = result.committed_kernel(instance.setup, instance.image.heap_base)
    assert instance.validate(kernel), f"{name} committed output invalid"

    # 2. race-free workloads never diverge under sync hints
    if not WORKLOADS[name].racy:
        assert recording.divergences() == 0, f"{name} diverged spuriously"

    # 3. divergences and recoveries always balance
    assert recording.divergences() == result.stats["recoveries"]

    # 4. both replay strategies reproduce the committed states exactly
    replayer = Replayer(instance.image, machine)
    sequential = replayer.replay_sequential(recording)
    assert sequential.verified, f"{name}: {sequential.details}"
    parallel = replayer.replay_parallel(recording)
    assert parallel.verified, f"{name}: {parallel.details}"

    # 5. recording is never free: makespan at least the app's own time
    assert result.makespan >= result.app_time - result.stats["checkpoint_cost"]
