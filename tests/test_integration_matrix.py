"""The full-contract matrix: every workload × worker counts.

For each configuration: the committed recording validates against the
workload's own oracle, race-free recordings never diverge, and both
replay strategies verify. This is the repository's strongest single
integration statement, kept fast with small scales.
"""

import json

import pytest

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.machine.config import MachineConfig
from repro.memory.hashing import combine_hashes
from repro.workloads import WORKLOADS, build_workload, workload_names

CONFIGS = [(name, workers) for name in workload_names() for workers in (2, 3)]

# Golden end-to-end values per (workload, workers) at scale=2, seed=11:
# (native duration, native digest, makespan, epoch count, final digest,
#  combined epoch end-digests, total log bytes). These pin the simulator's
# observable behaviour bit-for-bit — any host-side optimisation (dispatch
# tables, TLBs, hash caching) must leave every one of them unchanged.
GOLDEN = {
    ("aget", 2): (4807, 12651562650872444726, 5747, 10,
                  9750065671864226844, 4447608908880550891, 3936),
    ("aget", 3): (4575, 86832004083554708, 5448, 10,
                  86832004083554708, 1763391140910181180, 4344),
    ("apache", 2): (5377, 15557036813043296881, 7312, 12,
                    15667671969702678195, 2155579163447930320, 3872),
    ("apache", 3): (5583, 11856920576053863941, 6393, 10,
                    15233928128316885767, 9199542772119446140, 4560),
    ("fft", 2): (3466, 1023587758859363579, 4048, 8,
                 1023587758859363579, 6006708359676509811, 584),
    ("fft", 3): (3791, 5607265402854933670, 4752, 9,
                 5607265402854933670, 7927598431155298058, 944),
    ("lu", 2): (4896, 14551909104814060594, 5814, 11,
                14551909104814060594, 16981150695979687117, 1136),
    ("lu", 3): (5033, 14978186051075779708, 5961, 11,
                14978186051075779708, 17186382475764968431, 1592),
    ("mysql", 2): (4089, 9624155467934768117, 5877, 10,
                   6095974313538744895, 4732499191363289370, 3472),
    ("mysql", 3): (3311, 948195989078979533, 4969, 8,
                   4341614222855619633, 13232087581114816424, 3856),
    ("ocean", 2): (4579, 11527734004478394154, 5313, 10,
                   11527734004478394154, 6994437026708409131, 848),
    ("ocean", 3): (4840, 3550062865480851614, 5809, 11,
                   3550062865480851614, 1008239838482505802, 1232),
    ("pbzip", 2): (5230, 11529552014372706206, 7083, 12,
                   11529552014372706206, 874082006809833535, 6024),
    ("pbzip", 3): (4225, 15316583958854145957, 6628, 10,
                   17272036854511172949, 13244271545710141243, 6960),
    ("pfscan", 2): (4124, 18003381354230837672, 5166, 9,
                    18003381354230837672, 13868236508608381773, 6736),
    ("pfscan", 3): (3213, 5110011646564275461, 5121, 8,
                    5110011646564275461, 13020697379226720733, 7488),
    ("prodcons", 2): (938, 920605467332395685, 1313, 2,
                      920605467332395685, 17304008216913788021, 736),
    ("prodcons", 3): (1789, 8053473133804911, 2263, 4,
                      8053473133804911, 12034645484827403544, 1872),
    ("prodcons-sem", 2): (850, 15626521186015135587, 1235, 2,
                          15626521186015135587, 2775192677128591728, 968),
    ("prodcons-sem", 3): (1558, 13088482847976153957, 2255, 4,
                          13088482847976153957, 5094968567319453553, 2048),
    ("racy-counter", 2): (1861, 3448562615946056474, 9602, 8,
                          12724300268640189663, 9912476949056978793, 344),
    ("racy-counter", 3): (1922, 5374146475501369629, 18625, 11,
                          14223301674063300882, 158827803329310059, 464),
    ("racy-lazyinit", 2): (589, 4908108182066075022, 980, 2,
                           4908108182066075022, 14562062304790101566, 184),
    ("racy-lazyinit", 3): (650, 3840646583692704329, 1344, 2,
                           3840646583692704329, 17035089182703621485, 272),
    ("radix", 2): (6235, 7917491320764720759, 7218, 13,
                   7917491320764720759, 14361880256660075860, 1040),
    ("radix", 3): (7216, 16673423257611233481, 8252, 13,
                   16673423257611233481, 12142456901315693440, 1400),
    ("water", 2): (2426, 16377078339086888187, 3082, 5,
                   16377078339086888187, 12862172388543010355, 808),
    ("water", 3): (3032, 2956172348081215986, 4107, 7,
                   7184107632185205554, 16867501009319820216, 1400),
}


@pytest.mark.parametrize("name,workers", CONFIGS)
def test_record_validate_replay(name, workers):
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = result.recording

    # 1. the committed execution produces a correct program result
    kernel = result.committed_kernel(instance.setup, instance.image.heap_base)
    assert instance.validate(kernel), f"{name} committed output invalid"

    # 2. race-free workloads never diverge under sync hints
    if not WORKLOADS[name].racy:
        assert recording.divergences() == 0, f"{name} diverged spuriously"

    # 3. divergences and recoveries always balance
    assert recording.divergences() == result.stats["recoveries"]

    # 4. both replay strategies reproduce the committed states exactly
    replayer = Replayer(instance.image, machine)
    sequential = replayer.replay_sequential(recording)
    assert sequential.verified, f"{name}: {sequential.details}"
    parallel = replayer.replay_parallel(recording)
    assert parallel.verified, f"{name}: {parallel.details}"

    # 5. recording is never free: makespan at least the app's own time
    assert result.makespan >= result.app_time - result.stats["checkpoint_cost"]

    # 6. zero behavioural drift: cycle counts, digests and log sizes match
    # the committed goldens exactly
    observed = (
        native.duration,
        native.final_digest,
        result.makespan,
        recording.epoch_count(),
        recording.final_digest,
        combine_hashes([epoch.end_digest for epoch in recording.epochs]),
        recording.total_log_bytes(),
    )
    assert observed == GOLDEN[(name, workers)], (
        f"{name}/{workers}: behavioural drift — expected "
        f"{GOLDEN[(name, workers)]}, got {observed}"
    )


# Host-parallelism parity: ``host_jobs`` may change only wall-clock time.
# A representative slice of the matrix (race-free pipelines, barrier
# kernels, a divergence-heavy racy workload) records and replays with
# worker processes and must hit the same goldens byte-for-byte. The
# ``REPRO_TEST_JOBS=2`` CI leg additionally sweeps the *full* matrix
# above through the parallel path. jobs ∈ {2, 4} covers multi-worker
# merge order beyond the two-worker case.
HOST_PARITY = [
    ("pbzip", 2, 2),
    ("pbzip", 2, 4),
    ("fft", 3, 2),
    ("apache", 2, 2),
    ("racy-counter", 2, 2),
    ("racy-counter", 3, 4),
    ("prodcons-sem", 3, 2),
    ("water", 3, 2),
]


@pytest.mark.parametrize("name,workers,jobs", HOST_PARITY)
def test_host_parallel_matches_goldens(name, workers, jobs):
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
    )
    serial = DoublePlayRecorder(instance.image, instance.setup, config).record()
    parallel = DoublePlayRecorder(
        instance.image, instance.setup, config.replace(host_jobs=jobs)
    ).record()

    # Byte-identical recording, digests, and every simulated-time metric.
    assert json.dumps(parallel.recording.to_plain(), sort_keys=True) == json.dumps(
        serial.recording.to_plain(), sort_keys=True
    )
    assert (parallel.makespan, parallel.tp_finish, parallel.app_time) == (
        serial.makespan, serial.tp_finish, serial.app_time,
    )
    assert parallel.stats == serial.stats

    # And the goldens themselves are reproduced through worker processes.
    observed = (
        native.duration,
        native.final_digest,
        parallel.makespan,
        parallel.recording.epoch_count(),
        parallel.recording.final_digest,
        combine_hashes([e.end_digest for e in parallel.recording.epochs]),
        parallel.recording.total_log_bytes(),
    )
    assert observed == GOLDEN[(name, workers)]

    # Process-parallel replay reaches the serial replay's verdict exactly.
    replayer = Replayer(instance.image, machine)
    replay_serial = replayer.replay_parallel(serial.recording)
    replay_jobs = replayer.replay_parallel(parallel.recording, jobs=jobs)
    assert replay_jobs.verified, f"{name}: {replay_jobs.details}"
    assert (replay_jobs.total_cycles, replay_jobs.makespan) == (
        replay_serial.total_cycles, replay_serial.makespan,
    )


# Superinstruction parity: trace-level superblock fusion is a pure
# interpreter-speed optimisation — every golden tuple must be reproduced
# with fusion disabled, proving the fused handlers retire the exact
# instruction stream the generic loop does. The main matrix above runs
# with fusion ON (the default); this slice re-runs every configuration
# with ``REPRO_SUPERBLOCKS=0``.
@pytest.mark.parametrize("name,workers", CONFIGS)
def test_goldens_without_superblocks(monkeypatch, name, workers):
    monkeypatch.setenv("REPRO_SUPERBLOCKS", "0")
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = result.recording
    observed = (
        native.duration,
        native.final_digest,
        result.makespan,
        recording.epoch_count(),
        recording.final_digest,
        combine_hashes([epoch.end_digest for epoch in recording.epochs]),
        recording.total_log_bytes(),
    )
    assert observed == GOLDEN[(name, workers)], (
        f"{name}/{workers}: superblock fusion changed behaviour — "
        f"expected {GOLDEN[(name, workers)]}, got {observed}"
    )
    fused = result.metrics.snapshot().get("superblock", {})
    assert fused.get("fused_calls", 0) == 0, "fusion ran while disabled"


# The same through worker processes: workers read the env at spawn, so
# the shared pool is torn down around each case. (name, workers, jobs)
SUPERBLOCK_JOBS_PARITY = [
    ("pbzip", 2, 4),
    ("fft", 3, 2),
    ("racy-counter", 2, 4),
]


@pytest.mark.parametrize("name,workers,jobs", SUPERBLOCK_JOBS_PARITY)
def test_goldens_without_superblocks_parallel(monkeypatch, name, workers, jobs):
    _shutdown_pool()
    monkeypatch.setenv("REPRO_SUPERBLOCKS", "0")
    try:
        instance = build_workload(name, workers=workers, scale=2, seed=11)
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine)
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // 12, 500),
        )
        result = DoublePlayRecorder(
            instance.image, instance.setup, config.replace(host_jobs=jobs)
        ).record()
        recording = result.recording
        observed = (
            native.duration,
            native.final_digest,
            result.makespan,
            recording.epoch_count(),
            recording.final_digest,
            combine_hashes([epoch.end_digest for epoch in recording.epochs]),
            recording.total_log_bytes(),
        )
        assert observed == GOLDEN[(name, workers)]
    finally:
        _shutdown_pool()


# Pipelined-commit parity: the two-deep speculative pipeline dispatches
# epoch N while the thread-parallel run executes ahead — wall-clock
# overlap only, results bit-identical. Each configuration records three
# ways (pipelined jobs=N, phased jobs=N via REPRO_PIPELINE=0, serial
# jobs=1) and all three must agree byte-for-byte and hit the goldens.
# (name, workers, jobs, expect_speculation)
PIPELINE_PARITY = [
    ("pbzip", 2, 4, True),
    ("fft", 3, 2, True),
    ("apache", 2, 2, True),
    ("racy-counter", 2, 4, False),
    ("water", 3, 2, True),
]


@pytest.mark.parametrize("name,workers,jobs,expect_spec", PIPELINE_PARITY)
def test_goldens_survive_pipelined_commit(
    monkeypatch, name, workers, jobs, expect_spec
):
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
    )
    serial = DoublePlayRecorder(instance.image, instance.setup, config).record()
    piped = DoublePlayRecorder(
        instance.image, instance.setup, config.replace(host_jobs=jobs)
    ).record()
    monkeypatch.setenv("REPRO_PIPELINE", "0")
    phased = DoublePlayRecorder(
        instance.image, instance.setup, config.replace(host_jobs=jobs)
    ).record()

    canonical = json.dumps(serial.recording.to_plain(), sort_keys=True)
    for result in (piped, phased):
        assert json.dumps(result.recording.to_plain(), sort_keys=True) == canonical
        assert (result.makespan, result.tp_finish, result.app_time) == (
            serial.makespan, serial.tp_finish, serial.app_time,
        )
        assert result.stats == serial.stats
        observed = (
            native.duration,
            native.final_digest,
            result.makespan,
            result.recording.epoch_count(),
            result.recording.final_digest,
            combine_hashes([e.end_digest for e in result.recording.epochs]),
            result.recording.total_log_bytes(),
        )
        assert observed == GOLDEN[(name, workers)]

    spec = piped.host["speculation"]
    if expect_spec:
        # Race-free segments are long enough that speculation engages and
        # (with the boundary-floor validity rule) is actually accepted.
        assert spec["dispatched"] >= 1 and spec["accepted"] >= 1
    assert phased.host["speculation"]["dispatched"] == 0


# Fault parity: the goldens must also survive injected host-worker
# failures. A crash mid-matrix, a one-shot crash on a divergence-heavy
# workload, and a worker exception all go through the retry/serial-
# fallback containment and still reproduce the committed tuples exactly.
FAULT_PARITY = [
    ("fft", 2, 4, "crash:unit1", False),
    ("racy-counter", 2, 4, "crash:unit1:once", True),
    ("pbzip", 2, 4, "error:unit2", False),
]


@pytest.mark.parametrize("name,workers,jobs,spec,needs_state", FAULT_PARITY)
def test_goldens_survive_host_faults(
    monkeypatch, tmp_path, name, workers, jobs, spec, needs_state
):
    if needs_state:
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path))
    monkeypatch.setenv("REPRO_FAULT", spec)
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
    )
    result = DoublePlayRecorder(
        instance.image, instance.setup, config.replace(host_jobs=jobs)
    ).record()
    recording = result.recording
    observed = (
        native.duration,
        native.final_digest,
        result.makespan,
        recording.epoch_count(),
        recording.final_digest,
        combine_hashes([epoch.end_digest for epoch in recording.epochs]),
        recording.total_log_bytes(),
    )
    assert observed == GOLDEN[(name, workers)], (
        f"{name}/{workers}: drift under injected fault {spec!r} — "
        f"expected {GOLDEN[(name, workers)]}, got {observed}"
    )
    # Race-free pipelines execute every unit, so the fault deterministically
    # fires. On racy workloads a divergence may cancel the target unit
    # before it starts — parity above is the contract either way.
    if not WORKLOADS[name].racy:
        counts = result.host["faults"]
        assert sum(counts.values()) >= 1, "fault never fired"


# Wire parity: the content-addressed dispatch protocol (page dedup,
# delta checkpoints, worker blob caches) may change only how many bytes
# travel — never what the workers compute. The goldens must hold when
# the caches are starved to their degenerate limits: capacity 0 (every
# blob evicts on insert, workers decode from the dispatch fallback) and
# a few KiB (constant LRU churn, coordinator tracking through eviction
# acks). (name, workers, jobs, cache_mb)
WIRE_PARITY = [
    ("pbzip", 2, 2, "0"),
    ("fft", 3, 2, "0.02"),
    ("racy-counter", 2, 4, "0.02"),
]


def _shutdown_pool():
    from repro.host.pool import shutdown_shared_pool

    shutdown_shared_pool()


@pytest.mark.parametrize("name,workers,jobs,cache_mb", WIRE_PARITY)
def test_goldens_survive_blob_cache_starvation(
    monkeypatch, name, workers, jobs, cache_mb
):
    # Workers read the budget at spawn, so the shared pool must be torn
    # down before (to pick the tiny budget up) and after (to not leak
    # starved workers into later tests).
    _shutdown_pool()
    monkeypatch.setenv("REPRO_BLOB_CACHE_MB", cache_mb)
    try:
        instance = build_workload(name, workers=workers, scale=2, seed=11)
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine)
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // 12, 500),
        )
        result = DoublePlayRecorder(
            instance.image, instance.setup, config.replace(host_jobs=jobs)
        ).record()
        recording = result.recording
        observed = (
            native.duration,
            native.final_digest,
            result.makespan,
            recording.epoch_count(),
            recording.final_digest,
            combine_hashes([epoch.end_digest for epoch in recording.epochs]),
            recording.total_log_bytes(),
        )
        assert observed == GOLDEN[(name, workers)], (
            f"{name}/{workers}: drift under blob cache {cache_mb} MB — "
            f"expected {GOLDEN[(name, workers)]}, got {observed}"
        )
        # Starvation shows up in the wire accounting, never in faults.
        wire = result.host["wire"]
        assert wire["bytes_shipped"] > 0 and wire["blobs_sent"] > 0
        assert not any(result.host["faults"].values())

        # Replay through the same starved pool reaches the same verdict.
        replayer = Replayer(instance.image, machine)
        outcome = replayer.replay_parallel(recording, jobs=jobs)
        assert outcome.verified, f"{name}: {outcome.details}"
    finally:
        _shutdown_pool()


# Observability parity: a live tracer may never influence an execution.
# With tracing on, the recording must stay byte-identical to the untraced
# run — serially and through worker processes — and the exported timeline
# must pass schema validation (monotonic, non-overlapping spans per
# track) and be complete: every epoch the run executed has exactly one
# execute span. (name, workers, jobs)
OBS_PARITY = [
    ("pbzip", 2, 1),
    ("pbzip", 2, 4),
    ("fft", 3, 1),
    ("racy-counter", 2, 4),
]


@pytest.mark.parametrize("name,workers,jobs", OBS_PARITY)
def test_goldens_survive_tracing(tmp_path, name, workers, jobs):
    from repro.obs import export as obs_export
    from repro.obs import spans as obs_spans

    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
        host_jobs=jobs,
    )
    untraced = DoublePlayRecorder(instance.image, instance.setup, config).record()

    trace_path = tmp_path / "trace.json"
    obs_spans.start_trace(str(trace_path))
    try:
        traced = DoublePlayRecorder(
            instance.image, instance.setup, config
        ).record()
    finally:
        tracer = obs_spans.stop_trace()
    payload = obs_export.write_chrome_trace(tracer, str(trace_path))

    # Tracing is invisible to the execution: byte-identical recording,
    # identical stats, and the committed goldens.
    assert json.dumps(traced.recording.to_plain(), sort_keys=True) == json.dumps(
        untraced.recording.to_plain(), sort_keys=True
    )
    assert traced.stats == untraced.stats
    observed = (
        native.duration,
        native.final_digest,
        traced.makespan,
        traced.recording.epoch_count(),
        traced.recording.final_digest,
        combine_hashes([e.end_digest for e in traced.recording.epochs]),
        traced.recording.total_log_bytes(),
    )
    assert observed == GOLDEN[(name, workers)]

    # The timeline is schema-valid and complete.
    assert obs_export.validate_trace(payload) == []
    executes = [
        e for e in payload["traceEvents"]
        if e.get("ph") == "X" and e["name"] == "execute"
    ]
    # One execute span per epoch attempt the run kept (cancelled
    # divergence tails drop their spans with their results, exactly as
    # they drop their counters) — so spans and merged counters agree.
    assert len(executes) == traced.metrics.get("exec", "epochs")
    # Both runs merged the same execution counters back.
    assert traced.metrics.snapshot()["exec"] == untraced.metrics.snapshot()["exec"]
    if jobs > 1:
        coordinator = payload["otherData"]["coordinator_pid"]
        assert any(e["pid"] != coordinator for e in executes), (
            "no execute span ever landed on a worker track"
        )


def test_goldens_survive_forced_blob_misses(monkeypatch):
    """An over-optimistic coordinator self-corrects via NeedBlobs.

    Omission is a pure optimisation: if the tracker wrongly believes the
    pool holds every blob (here: forced, in production: never), workers
    answer with a structured NeedBlobs and the coordinator re-dispatches
    with the full blob set — same goldens, resends counted, no faults.
    """
    from repro.host import pool as host_pool

    _shutdown_pool()  # fresh workers hold nothing: misses are guaranteed

    original = host_pool.HostExecutor._make_dispatch

    def starved(self, batch, position, pids=(), full=False):
        dispatch = original(self, batch, position, pids=pids, full=full)
        if not full:
            dispatch.blobs = {}
            batch.last_shipped[position] = set()
        return dispatch

    monkeypatch.setattr(host_pool.HostExecutor, "_make_dispatch", starved)
    try:
        name, workers, jobs = "fft", 2, 2
        instance = build_workload(name, workers=workers, scale=2, seed=11)
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine)
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // 12, 500),
        )
        result = DoublePlayRecorder(
            instance.image, instance.setup, config.replace(host_jobs=jobs)
        ).record()
        recording = result.recording
        observed = (
            native.duration,
            native.final_digest,
            result.makespan,
            recording.epoch_count(),
            recording.final_digest,
            combine_hashes([epoch.end_digest for epoch in recording.epochs]),
            recording.total_log_bytes(),
        )
        assert observed == GOLDEN[(name, workers)]
        assert result.host["wire"]["blob_resends"] >= 1, "no miss ever forced"
        assert not any(result.host["faults"].values())
    finally:
        _shutdown_pool()


# Service parity: recording through the multi-session coordinator
# (``repro.service``) — N tenants interleaved over one shared worker
# fleet, with admission control, fair-share scheduling and cross-session
# blob dedup — must still produce each tenant's recording byte-identical
# to a solo jobs=1 run, hitting the committed goldens exactly. The slice
# mixes race-free and divergence-heavy workloads so commits, retries and
# recoveries all interleave across tenants.
SESSIONS_PARITY = [
    ("pbzip", 2),
    ("fft", 3),
    ("racy-counter", 2),
]


def test_concurrent_service_sessions_match_goldens():
    from repro.service import RecordService, ServiceConfig, SessionRequest

    natives = {}
    for name, workers in SESSIONS_PARITY:
        instance = build_workload(name, workers=workers, scale=2, seed=11)
        machine = MachineConfig(cores=workers)
        natives[(name, workers)] = run_native(instance.image, instance.setup, machine)

    service = RecordService(ServiceConfig(jobs=2, max_active=len(SESSIONS_PARITY)))
    requests = [
        SessionRequest(
            sid=f"{name}-{workers}", workload=name, workers=workers,
            scale=2, seed=11,
            epoch_cycles=max(natives[(name, workers)].duration // 12, 500),
        )
        for name, workers in SESSIONS_PARITY
    ]
    report = service.run(requests)
    assert report.ok, [r.error for r in report.results]

    for (name, workers), result in zip(SESSIONS_PARITY, report.results):
        instance = build_workload(name, workers=workers, scale=2, seed=11)
        machine = MachineConfig(cores=workers)
        native = natives[(name, workers)]
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // 12, 500),
            host_jobs=1,
        )
        solo = DoublePlayRecorder(instance.image, instance.setup, config).record()
        # Byte-identical to the solo serial run...
        assert json.dumps(result.recording_plain, sort_keys=True) == json.dumps(
            solo.recording.to_plain(), sort_keys=True
        ), f"{name}/{workers}: service recording drifted from solo"
        # ...and the goldens themselves reproduced through the service.
        recording = solo.recording
        observed = (
            native.duration,
            native.final_digest,
            solo.makespan,
            recording.epoch_count(),
            recording.final_digest,
            combine_hashes([e.end_digest for e in recording.epochs]),
            recording.total_log_bytes(),
        )
        assert observed == GOLDEN[(name, workers)]


# Durable-log parity: streaming committed epochs into the sharded
# durable log (``--log-dir``), even in flight-recorder spill mode, is
# invisible to the execution — and replay is bit-identical whether it
# starts from (a) the in-memory recording, (b) the durable round trip,
# or (c) ``--from-epoch N`` at a mid-run checkpoint materialised from
# the blob store.
DURABLE_PARITY = [
    ("pbzip", 2, 1),
    ("pbzip", 2, 4),
    ("fft", 3, 1),
    ("racy-counter", 2, 4),
    ("prodcons-sem", 3, 1),
]


@pytest.mark.parametrize("name,workers,jobs", DURABLE_PARITY)
def test_goldens_survive_durable_round_trip(tmp_path, name, workers, jobs):
    from repro.record.shards import ShardedLogReader

    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
        host_jobs=jobs,
    )
    log_dir = str(tmp_path / "log")
    try:
        in_memory = DoublePlayRecorder(
            instance.image, instance.setup, config
        ).record()
        durable = DoublePlayRecorder(
            instance.image,
            instance.setup,
            config.replace(log_dir=log_dir, log_spill=True),
        ).record()

        # Durable streaming (with spill!) changes nothing observable.
        assert durable.makespan == in_memory.makespan
        assert durable.stats == dict(in_memory.stats, log_spilled=1)

        # (b) the round-tripped durable recording is byte-identical to
        # (a) the in-memory one, and reproduces the committed goldens.
        loaded = ShardedLogReader(log_dir).load_recording()
        assert json.dumps(loaded.to_plain(), sort_keys=True) == json.dumps(
            in_memory.recording.to_plain(), sort_keys=True
        )
        observed = (
            native.duration,
            native.final_digest,
            durable.makespan,
            loaded.epoch_count(),
            loaded.final_digest,
            combine_hashes([e.end_digest for e in loaded.epochs]),
            loaded.total_log_bytes(),
        )
        assert observed == GOLDEN[(name, workers)]

        # Replay verdicts and cycle counts agree across all sources.
        replayer = Replayer(instance.image, machine)
        from_memory = replayer.replay_sequential(in_memory.recording)
        assert from_memory.verified, f"{name}: {from_memory.details}"
        from_durable = replayer.replay_sequential(loaded)
        assert from_durable.verified, f"{name}: {from_durable.details}"
        assert (from_durable.total_cycles, from_durable.makespan) == (
            from_memory.total_cycles, from_memory.makespan,
        )

        # Parallel replay runs from blob-store checkpoints (materialize),
        # through worker processes when jobs > 1.
        hydrated = ShardedLogReader(log_dir).load_recording(materialize=True)
        parallel = replayer.replay_parallel(hydrated, jobs=jobs)
        assert parallel.verified, f"{name}: {parallel.details}"
        reference = replayer.replay_parallel(in_memory.recording)
        assert (parallel.total_cycles, parallel.makespan) == (
            reference.total_cycles, reference.makespan,
        )

        # (c) a mid-run suffix replays only total - N epochs, ending in
        # the same verified final state.
        total = loaded.epoch_count()
        mid = total // 2
        suffix = ShardedLogReader(log_dir).load_recording(from_epoch=mid)
        assert suffix.epoch_count() == total - mid
        assert [e.index for e in suffix.epochs] == list(range(mid, total))
        from_mid = replayer.replay_sequential(suffix)
        assert from_mid.verified, f"{name}: {from_mid.details}"
        assert from_mid.epochs_replayed == total - mid
        assert from_mid.total_cycles < from_memory.total_cycles
    finally:
        if jobs > 1:
            _shutdown_pool()
