"""Workload construction and validation across parameters."""

import pytest

from repro.baselines import run_native
from repro.machine.config import MachineConfig
from repro.workloads import (
    WORKLOADS,
    build_workload,
    workload_names,
)


class TestRegistry:
    def test_expected_suite_registered(self):
        names = workload_names()
        for expected in (
            "pbzip", "pfscan", "aget", "apache", "mysql",
            "fft", "lu", "ocean", "radix", "water",
            "racy-counter", "racy-lazyinit",
        ):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_workload("nope")

    def test_categories(self):
        from repro.workloads import workload_names as names

        assert set(names("scientific")) == {"fft", "lu", "ocean", "radix", "water"}
        assert set(names("server")) == {"apache", "mysql"}
        assert set(names("client")) == {"pbzip", "pfscan", "aget", "prodcons", "prodcons-sem"}
        assert set(names("micro")) == {"racy-counter", "racy-lazyinit"}

    def test_racy_flags(self):
        assert WORKLOADS["racy-counter"].racy
        assert WORKLOADS["racy-lazyinit"].racy
        assert not WORKLOADS["pbzip"].racy

    def test_duplicate_registration_rejected(self):
        from repro.workloads.base import Workload, register_workload

        with pytest.raises(ValueError):
            @register_workload
            class Dup(Workload):  # noqa: N801
                name = "pbzip"

                def build(self, workers=2, scale=1, seed=0):
                    raise NotImplementedError


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_native_run_validates(self, name):
        inst = build_workload(name, workers=2, scale=2, seed=5)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        assert inst.validate(result.kernel)

    def test_scale_increases_work(self, name):
        small = build_workload(name, workers=2, scale=1, seed=5)
        big = build_workload(name, workers=2, scale=4, seed=5)
        machine = MachineConfig(cores=2)
        small_run = run_native(small.image, small.setup, machine)
        big_run = run_native(big.image, big.setup, machine)
        assert big_run.ops > small_run.ops
        assert small.validate(small_run.kernel)
        assert big.validate(big_run.kernel)

    def test_seed_changes_inputs_not_validity(self, name):
        a = build_workload(name, workers=2, scale=2, seed=1)
        b = build_workload(name, workers=2, scale=2, seed=2)
        machine = MachineConfig(cores=2)
        run_a = run_native(a.image, a.setup, machine)
        run_b = run_native(b.image, b.setup, machine)
        assert a.validate(run_a.kernel)
        assert b.validate(run_b.kernel)

    def test_three_workers(self, name):
        inst = build_workload(name, workers=3, scale=2, seed=5)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=3))
        assert inst.validate(result.kernel)
        # main + 3 workers
        assert len(result.engine.contexts) == 4

    def test_validator_rejects_corrupted_output(self, name):
        inst = build_workload(name, workers=2, scale=2, seed=5)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        # corrupt the observable output and expect rejection
        kernel = result.kernel
        if kernel.output:
            kernel.output[0] += 1
            assert not inst.validate(kernel)
            kernel.output[0] -= 1
        else:
            kernel.output.append(12345)
            assert not inst.validate(kernel)


class TestWorkloadDetails:
    def test_pbzip_records_cover_all_blocks(self):
        inst = build_workload("pbzip", workers=2, scale=2, seed=9)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        out = result.kernel.fs.file_contents(1)
        block_ids = sorted(out[0::2])
        assert block_ids == list(range(inst.expected["blocks"]))

    def test_pfscan_count_matches_python(self, ):
        inst = build_workload("pfscan", workers=2, scale=2, seed=9)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        assert result.output == [inst.expected["matches"]]

    def test_aget_reassembles_in_order(self):
        inst = build_workload("aget", workers=3, scale=2, seed=9)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=3))
        out = result.kernel.fs.file_contents(2)
        assert len(out) == inst.expected["total_words"]

    def test_apache_every_request_answered(self):
        inst = build_workload("apache", workers=2, scale=2, seed=9)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        conversations = result.kernel.net.all_conversations()
        assert len(conversations) == inst.expected["requests"]
        assert all(len(resp) == 1 for _, resp in conversations.values())

    def test_mysql_conserves_total_balance(self):
        inst = build_workload("mysql", workers=2, scale=2, seed=9)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        balances_base = inst.image.address_of("balances")
        total = sum(
            result.engine.mem.read(balances_base + index)
            for index in range(inst.expected["accounts"])
        )
        assert total == inst.expected["balance_sum"]

    def test_radix_actually_sorts(self):
        inst = build_workload("radix", workers=2, scale=1, seed=9)
        result = run_native(inst.image, inst.setup, MachineConfig(cores=2))
        final_symbol = "keysB"  # 3 passes -> odd -> B
        base = inst.image.address_of(final_symbol)
        keys = [
            result.engine.mem.read(base + index)
            for index in range(inst.expected["keys"])
        ]
        assert keys == sorted(keys)

    def test_racy_counter_loses_updates_sometimes(self):
        """Across seeds/configs, at least one run must actually lose an
        update (otherwise the workload is not exercising its race)."""
        lost = False
        for seed in range(4):
            inst = build_workload("racy-counter", workers=4, scale=2, seed=seed)
            result = run_native(inst.image, inst.setup, MachineConfig(cores=4))
            if result.output[0] < inst.expected["increments"]:
                lost = True
        assert lost
