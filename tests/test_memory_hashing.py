"""Tests for stable hashing primitives."""

from hypothesis import given, strategies as st

from repro.memory.hashing import combine_hashes, fnv1a_words, hash_structure


class TestFnv:
    def test_known_stability(self):
        # Pin the value: recordings persist hashes, so the function must
        # never change silently.
        assert fnv1a_words([1, 2, 3]) == fnv1a_words([1, 2, 3])
        assert fnv1a_words([]) == 0xCBF29CE484222325

    def test_order_sensitivity(self):
        assert fnv1a_words([1, 2]) != fnv1a_words([2, 1])

    def test_negative_values_wrap(self):
        assert fnv1a_words([-1]) == fnv1a_words([(1 << 64) - 1])

    def test_combine_order_sensitive(self):
        assert combine_hashes([1, 2]) != combine_hashes([2, 1])

    @given(st.lists(st.integers(), max_size=50))
    def test_deterministic(self, words):
        assert fnv1a_words(words) == fnv1a_words(list(words))

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=20))
    def test_result_fits_64_bits(self, words):
        assert 0 <= fnv1a_words(words) < (1 << 64)


class TestHashStructure:
    def test_primitives(self):
        assert hash_structure(5) == hash_structure(5)
        assert hash_structure(5) != hash_structure(6)
        assert hash_structure("a") != hash_structure("b")
        assert hash_structure(None) == hash_structure(None)
        assert hash_structure(True) != hash_structure(1)

    def test_tuples_and_lists_equivalent(self):
        assert hash_structure((1, 2)) == hash_structure([1, 2])

    def test_nesting_matters(self):
        assert hash_structure([1, [2, 3]]) != hash_structure([[1, 2], 3])

    def test_dict_order_independent(self):
        assert hash_structure({"a": 1, "b": 2}) == hash_structure({"b": 2, "a": 1})

    def test_dict_value_sensitive(self):
        assert hash_structure({"a": 1}) != hash_structure({"a": 2})

    def test_empty_containers_distinct_lengths(self):
        assert hash_structure([]) != hash_structure([0])

    def test_unhashable_type_raises(self):
        import pytest

        with pytest.raises(TypeError):
            hash_structure(object())

    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(max_size=5), st.none(), st.booleans()),
            lambda inner: st.one_of(
                st.lists(inner, max_size=4),
                st.dictionaries(st.text(max_size=3), inner, max_size=4),
            ),
            max_leaves=20,
        )
    )
    def test_property_deterministic(self, structure):
        assert hash_structure(structure) == hash_structure(structure)
