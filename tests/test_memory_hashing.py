"""Tests for stable hashing primitives."""

from hypothesis import given, settings, strategies as st

from repro.memory.hashing import combine_hashes, fnv1a_words, hash_structure


class TestFnv:
    def test_known_stability(self):
        # Pin the value: recordings persist hashes, so the function must
        # never change silently.
        assert fnv1a_words([1, 2, 3]) == fnv1a_words([1, 2, 3])
        assert fnv1a_words([]) == 0xCBF29CE484222325

    def test_order_sensitivity(self):
        assert fnv1a_words([1, 2]) != fnv1a_words([2, 1])

    def test_negative_values_wrap(self):
        assert fnv1a_words([-1]) == fnv1a_words([(1 << 64) - 1])

    def test_combine_order_sensitive(self):
        assert combine_hashes([1, 2]) != combine_hashes([2, 1])

    @given(st.lists(st.integers(), max_size=50))
    def test_deterministic(self, words):
        assert fnv1a_words(words) == fnv1a_words(list(words))

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=20))
    def test_result_fits_64_bits(self, words):
        assert 0 <= fnv1a_words(words) < (1 << 64)


class TestHashStructure:
    def test_primitives(self):
        assert hash_structure(5) == hash_structure(5)
        assert hash_structure(5) != hash_structure(6)
        assert hash_structure("a") != hash_structure("b")
        assert hash_structure(None) == hash_structure(None)
        assert hash_structure(True) != hash_structure(1)

    def test_tuples_and_lists_equivalent(self):
        assert hash_structure((1, 2)) == hash_structure([1, 2])

    def test_nesting_matters(self):
        assert hash_structure([1, [2, 3]]) != hash_structure([[1, 2], 3])

    def test_dict_order_independent(self):
        assert hash_structure({"a": 1, "b": 2}) == hash_structure({"b": 2, "a": 1})

    def test_dict_value_sensitive(self):
        assert hash_structure({"a": 1}) != hash_structure({"a": 2})

    def test_empty_containers_distinct_lengths(self):
        assert hash_structure([]) != hash_structure([0])

    def test_unhashable_type_raises(self):
        import pytest

        with pytest.raises(TypeError):
            hash_structure(object())

    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(max_size=5), st.none(), st.booleans()),
            lambda inner: st.one_of(
                st.lists(inner, max_size=4),
                st.dictionaries(st.text(max_size=3), inner, max_size=4),
            ),
            max_leaves=20,
        )
    )
    def test_property_deterministic(self, structure):
        assert hash_structure(structure) == hash_structure(structure)


class TestIncrementalHashProperty:
    """The cached running content hash must be indistinguishable from a
    from-scratch FNV-1a fold, for any interleaving of writes, block
    writes, hash queries, snapshots and restores."""

    @staticmethod
    def _reference_hash(space):
        """Recompute the space digest with no caches: raw page words."""
        from repro.memory.hashing import combine_hashes, fnv1a_words

        parts = []
        pages = space.pages
        for page_no in sorted(pages):
            parts.append(page_no)
            parts.append(fnv1a_words(pages[page_no].words))
        return combine_hashes(parts)

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("write"),
                    st.integers(min_value=0, max_value=255),
                    st.integers(min_value=0, max_value=2**64 - 1),
                ),
                st.tuples(
                    st.just("write_block"),
                    st.integers(min_value=0, max_value=200),
                    st.lists(
                        st.integers(min_value=0, max_value=2**32),
                        min_size=1,
                        max_size=80,
                    ),
                ),
                st.tuples(st.just("hash")),
                st.tuples(st.just("snapshot")),
                st.tuples(st.just("restore")),
                st.tuples(st.just("take_dirty")),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_scratch(self, ops):
        from repro.memory.address_space import AddressSpace

        space = AddressSpace()
        space.map_range(0, 256)
        snapshots = []
        for op in ops:
            if op[0] == "write":
                space.write(op[1], op[2])
            elif op[0] == "write_block":
                space.write_block(op[1], op[2])
            elif op[0] == "hash":
                # interleaved queries exercise the cache-then-mutate path
                assert space.content_hash() == self._reference_hash(space)
            elif op[0] == "snapshot":
                snap = space.snapshot()
                snapshots.append(snap)
                assert snap.content_hash() == self._reference_hash(space)
            elif op[0] == "restore" and snapshots:
                space = AddressSpace.from_snapshot(snapshots[-1])
            elif op[0] == "take_dirty":
                space.take_dirty()
        assert space.content_hash() == self._reference_hash(space)
        for snap in snapshots:
            snap.release()

    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=127),
                st.integers(min_value=0, max_value=2**64 - 1),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_snapshot_hash_is_frozen(self, writes):
        """A snapshot's digest never changes, no matter what the live
        space does afterwards."""
        from repro.memory.address_space import AddressSpace

        space = AddressSpace()
        space.map_range(0, 128)
        for addr, value in writes[: len(writes) // 2]:
            space.write(addr, value)
        snap = space.snapshot()
        frozen = snap.content_hash()
        for addr, value in writes[len(writes) // 2 :]:
            space.write(addr, value)
            assert snap.content_hash() == frozen
        assert space.content_hash() == self._reference_hash(space)
        snap.release()
