"""Copy-on-write refcount accounting regressions.

The software write-TLB caches the last privately-owned page so repeat
stores skip the refcount check entirely. These tests pin the accounting
invariants that make that safe: a snapshotted page is cloned exactly once
per space regardless of how many stores hit it, releasing a snapshot
never drops ``Page.refs`` below the number of live owners, and a write
after release reuses the now-private page instead of cloning again.
"""

import pytest

from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_WORDS, page_of


def make_space(words=None):
    space = AddressSpace()
    space.map_range(0, 4 * PAGE_WORDS)
    for addr, value in (words or {}).items():
        space.write(addr, value)
    return space


class TestCloneOncePerEpoch:
    def test_repeat_writes_clone_once(self):
        space = make_space({5: 50})
        space.snapshot()
        before = space.cow_copies
        for value in range(20):
            space.write(5, value)
        assert space.cow_copies == before + 1

    def test_writes_to_same_page_different_offsets_clone_once(self):
        space = make_space()
        space.snapshot()
        before = space.cow_copies
        for offset in range(PAGE_WORDS):
            space.write(offset, offset)
        assert space.cow_copies == before + 1

    def test_each_dirtied_page_clones_independently(self):
        space = make_space()
        space.snapshot()
        before = space.cow_copies
        space.write(0, 1)
        space.write(PAGE_WORDS, 2)
        space.write(2 * PAGE_WORDS, 3)
        assert space.cow_copies == before + 3

    def test_block_write_spanning_pages_clones_each_once(self):
        space = make_space()
        space.snapshot()
        before = space.cow_copies
        # 68 words starting 2 before a page boundary touch pages 0, 1, 2
        space.write_block(PAGE_WORDS - 2, [1] * (PAGE_WORDS + 4))
        assert space.cow_copies == before + 3
        # further words on the same pages are already private
        space.write(PAGE_WORDS - 1, 9)
        space.write(PAGE_WORDS + 1, 9)
        assert space.cow_copies == before + 3


class TestRefcountLifecycle:
    def test_snapshot_then_release_restores_private_refs(self):
        space = make_space({5: 50})
        page = space._pages[page_of(5)]
        assert page.refs == 1
        snap = space.snapshot()
        assert page.refs == 2
        snap.release()
        assert page.refs == 1

    def test_write_after_release_does_not_clone(self):
        space = make_space({5: 50})
        snap = space.snapshot()
        snap.release()
        before = space.cow_copies
        space.write(5, 51)
        assert space.cow_copies == before
        assert space.read(5) == 51

    def test_snapshot_write_release_write_never_underflows(self):
        space = make_space({5: 50})
        snap = space.snapshot()
        space.write(5, 51)  # clones: space now owns a private copy
        shared = snap._pages[page_of(5)]
        assert shared.refs == 1  # snapshot is the sole owner of the original
        snap.release()
        # release of the snapshot's sole reference must not underflow
        assert shared.refs == 0
        private = space._pages[page_of(5)]
        assert private.refs == 1
        before = space.cow_copies
        space.write(5, 52)
        assert space.cow_copies == before
        assert space.read(5) == 52

    def test_double_release_is_idempotent(self):
        space = make_space({5: 50})
        snap = space.snapshot()
        page = space._pages[page_of(5)]
        snap.release()
        snap.release()
        assert page.refs == 1

    def test_stacked_snapshots_track_owner_count(self):
        space = make_space({5: 50})
        page = space._pages[page_of(5)]
        snaps = [space.snapshot() for _ in range(3)]
        assert page.refs == 4
        space.write(5, 51)  # one clone, shared page drops to 3 owners
        assert page.refs == 3
        assert space.cow_copies == 1
        for snap in snaps:
            assert snap.read(5) == 50
            snap.release()
        assert page.refs == 0
        assert space.read(5) == 51

    def test_restored_space_shares_until_written(self):
        space = make_space({5: 50})
        snap = space.snapshot()
        restored = AddressSpace.from_snapshot(snap)
        page = snap._pages[page_of(5)]
        refs_before = page.refs
        before = restored.cow_copies
        restored.write(5, 99)
        assert restored.cow_copies == before + 1
        assert page.refs == refs_before - 1
        assert space.read(5) == 50
        assert snap.read(5) == 50
        assert restored.read(5) == 99


class TestWriteTlbSafety:
    def test_tlb_never_bypasses_cow(self):
        """A store immediately before a snapshot must not leave a stale
        write-TLB entry that lets the next store mutate the shared page."""
        space = make_space()
        space.write(5, 1)  # primes the write TLB for page 0
        snap = space.snapshot()
        space.write(5, 2)  # must COW, not hit the stale TLB entry
        assert snap.read(5) == 1
        assert space.read(5) == 2
        assert space.cow_copies == 1

    def test_tlb_never_bypasses_dirty_tracking(self):
        space = make_space()
        space.write(5, 1)
        space.take_dirty()
        space.write(5, 2)  # TLB flushed by take_dirty: page re-dirties
        assert page_of(5) in space.dirty

    def test_read_tlb_sees_post_cow_page(self):
        space = make_space({5: 50})
        space.read(5)  # primes the read TLB
        snap = space.snapshot()
        space.write(5, 51)  # COW clone must refresh/invalidate the read TLB
        assert space.read(5) == 51
        assert snap.read(5) == 50
