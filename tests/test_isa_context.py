"""Unit tests for thread contexts."""

from repro.isa.context import BlockedReason, ThreadContext, ThreadStatus


def make_ctx(**overrides):
    defaults = dict(tid=1, pc=0, registers=[0] * 8)
    defaults.update(overrides)
    return ThreadContext(**defaults)


class TestCopy:
    def test_copy_is_deep_for_registers(self):
        ctx = make_ctx()
        dup = ctx.copy()
        dup.registers[0] = 99
        assert ctx.registers[0] == 0

    def test_copy_is_deep_for_call_stack(self):
        ctx = make_ctx()
        ctx.call_stack.append(5)
        dup = ctx.copy()
        dup.call_stack.append(6)
        assert ctx.call_stack == [5]

    def test_copy_preserves_all_fields(self):
        ctx = make_ctx(
            pc=7,
            status=ThreadStatus.BLOCKED,
            retired=42,
            blocked=BlockedReason("lock", (5,)),
            spawn_count=2,
            syscall_count=3,
            parent=9,
            pending_grant=("sync",),
        )
        dup = ctx.copy()
        assert dup.state_tuple() == ctx.state_tuple()
        assert dup.blocked == ctx.blocked
        assert dup.pending_grant == ctx.pending_grant
        assert dup.parent == 9


class TestStateTuple:
    def test_scheduling_status_normalised(self):
        """READY/RUNNING/PARKED/BLOCKED all compare as live."""
        base = make_ctx(status=ThreadStatus.READY)
        for status in (ThreadStatus.RUNNING, ThreadStatus.PARKED, ThreadStatus.BLOCKED):
            other = make_ctx(status=status)
            assert base.state_tuple() == other.state_tuple()

    def test_exited_is_distinct(self):
        live = make_ctx()
        dead = make_ctx(status=ThreadStatus.EXITED)
        assert live.state_tuple() != dead.state_tuple()

    def test_blocked_reason_excluded(self):
        a = make_ctx(status=ThreadStatus.BLOCKED, blocked=BlockedReason("lock", (1,)))
        b = make_ctx(status=ThreadStatus.READY)
        assert a.state_tuple() == b.state_tuple()

    def test_pending_grant_excluded(self):
        a = make_ctx(pending_grant=("sync",))
        b = make_ctx()
        assert a.state_tuple() == b.state_tuple()

    def test_registers_matter(self):
        a = make_ctx()
        b = make_ctx(registers=[1] + [0] * 7)
        assert a.state_tuple() != b.state_tuple()

    def test_retired_matters(self):
        assert make_ctx(retired=1).state_tuple() != make_ctx().state_tuple()

    def test_pc_matters(self):
        assert make_ctx(pc=1).state_tuple() != make_ctx().state_tuple()

    def test_counters_matter(self):
        assert make_ctx(spawn_count=1).state_tuple() != make_ctx().state_tuple()
        assert make_ctx(syscall_count=1).state_tuple() != make_ctx().state_tuple()

    def test_is_runnable(self):
        assert make_ctx(status=ThreadStatus.READY).is_runnable()
        assert make_ctx(status=ThreadStatus.RUNNING).is_runnable()
        assert not make_ctx(status=ThreadStatus.BLOCKED).is_runnable()
        assert not make_ctx(status=ThreadStatus.EXITED).is_runnable()
        assert not make_ctx(status=ThreadStatus.PARKED).is_runnable()
