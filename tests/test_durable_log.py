"""The durable sharded event log: segments, blobs, writer/reader.

Covers the storage layers bottom-up — block round trips per codec, the
crash-truncation rule (torn tails truncate, interior corruption raises),
content-addressed blob dedup — then the full writer/reader path on real
recordings: durable round trips, ``--from-epoch`` suffix loads, spill
(flight-recorder) mode, and the group-commit/fsync knobs.
"""

import json
import os

import pytest

from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.errors import ReplayError
from repro.machine.config import MachineConfig
from repro.record.segment import (
    DEFAULT_CODEC,
    SegmentCorruption,
    SegmentReader,
    SegmentWriter,
    resolve_codec,
)
from repro.record.shards import BlobStore, ShardedLogReader
from repro.workloads import build_workload

FRAMES = [b"alpha", b"b" * 200, b"", b"gamma" * 50]


# ----------------------------------------------------------------------
# Segment files
# ----------------------------------------------------------------------
@pytest.mark.parametrize("codec", ["raw", "zlib1", "zlib6"])
def test_segment_round_trip(tmp_path, codec):
    path = str(tmp_path / "seg.dpseg")
    writer = SegmentWriter(path, codec=codec)
    for frame in FRAMES:
        writer.append(frame)
    first = writer.flush(fsync=False)
    writer.append(b"second block")
    writer.close(fsync=False)
    assert first == 0
    assert len(writer.blocks) == 2

    reader = SegmentReader(path)
    blocks = list(reader.iter_blocks())
    assert [frames for _, frames in blocks] == [FRAMES, [b"second block"]]
    # extents recorded by the writer address the same blocks
    for extent, (offset, frames) in zip(writer.blocks, blocks):
        assert extent.offset == offset
        assert reader.read_block(offset) == frames


def test_empty_flush_is_a_noop(tmp_path):
    writer = SegmentWriter(str(tmp_path / "seg.dpseg"))
    assert writer.flush(fsync=False) is None
    assert writer.blocks == []


def test_torn_tail_truncates(tmp_path):
    path = str(tmp_path / "seg.dpseg")
    writer = SegmentWriter(path, codec="raw")
    writer.append(b"kept")
    writer.flush(fsync=False)
    writer.append(b"torn away")
    writer.close(fsync=False)
    # A crash mid-write leaves a partial second block: cut its body.
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 4)
    blocks = list(SegmentReader(path).iter_blocks())
    assert [frames for _, frames in blocks] == [[b"kept"]]


def test_garbage_tail_truncates(tmp_path):
    path = str(tmp_path / "seg.dpseg")
    writer = SegmentWriter(path, codec="raw")
    writer.append(b"kept")
    writer.close(fsync=False)
    with open(path, "ab") as handle:
        handle.write(b"DPBK\x00garbage that is no block")
    blocks = list(SegmentReader(path).iter_blocks())
    assert [frames for _, frames in blocks] == [[b"kept"]]


def test_interior_corruption_raises(tmp_path):
    path = str(tmp_path / "seg.dpseg")
    writer = SegmentWriter(path, codec="raw")
    writer.append(b"first block body")
    first = writer.flush(fsync=False)
    writer.append(b"second block")
    writer.close(fsync=False)
    offset = writer.blocks[first].offset
    # Flip a byte inside the FIRST block's stored body — a later block
    # still verifies, so this is corruption, not a torn tail.
    with open(path, "r+b") as handle:
        handle.seek(offset + 24)
        byte = handle.read(1)
        handle.seek(offset + 24)
        handle.write(bytes([byte[0] ^ 0xFF]))
    reader = SegmentReader(path)
    with pytest.raises(SegmentCorruption):
        list(reader.iter_blocks())
    with pytest.raises(SegmentCorruption):
        reader.read_block(offset)


def test_not_a_segment_file(tmp_path):
    path = tmp_path / "nope.dpseg"
    path.write_bytes(b"hello world, definitely not a segment")
    with pytest.raises(SegmentCorruption):
        SegmentReader(str(path))


class TestResolveCodec:
    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_COMPRESS", "zlib6")
        assert resolve_codec("raw") == "raw"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_COMPRESS", "zlib6")
        assert resolve_codec() == "zlib6"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_COMPRESS", raising=False)
        assert resolve_codec() == DEFAULT_CODEC

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_codec("lz4")


# ----------------------------------------------------------------------
# Blob store
# ----------------------------------------------------------------------
def test_blob_store_dedup(tmp_path):
    store = BlobStore(str(tmp_path / "blobs"))
    assert store.put(0xAB, b"payload") is True
    assert store.put(0xAB, b"payload") is False
    assert store.blobs_written == 1
    assert store.bytes_written == len(b"payload")
    assert store.get(0xAB) == b"payload"
    assert store.has(0xAB)
    assert not store.has(0xCD)
    store.close()
    # A second store over the same pack rediscovers on-disk blobs and
    # never appends them again.
    other = BlobStore(str(tmp_path / "blobs"))
    assert other.put(0xAB, b"payload") is False
    assert other.blobs_written == 0
    assert other.get(0xAB) == b"payload"


def test_blob_pack_torn_tail_truncates(tmp_path):
    store = BlobStore(str(tmp_path / "blobs"))
    store.put(0xAB, b"first blob")
    store.put(0xCD, b"second blob")
    store.close()
    # A crash mid-append leaves a partial trailing entry; the scan must
    # keep every complete blob and drop the torn one.
    with open(store.path, "r+b") as handle:
        handle.truncate(os.path.getsize(store.path) - 3)
    reopened = BlobStore(str(tmp_path / "blobs"))
    assert reopened.get(0xAB) == b"first blob"
    assert not reopened.has(0xCD)
    # The torn tail is overwritten by the next append at the same spot.
    assert reopened.put(0xCD, b"second blob") is True


# ----------------------------------------------------------------------
# Sharded writer/reader end-to-end
# ----------------------------------------------------------------------
def _record(name="prodcons", workers=2, **overrides):
    instance = build_workload(name, workers=workers, scale=2, seed=11)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
        **overrides,
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    return instance, machine, result


def test_durable_round_trip_matches_in_memory(tmp_path):
    log_dir = str(tmp_path / "log")
    _, _, in_memory = _record("pbzip")
    _, _, durable = _record("pbzip", log_dir=log_dir)
    loaded = ShardedLogReader(log_dir).load_recording()
    assert json.dumps(loaded.to_plain(), sort_keys=True) == json.dumps(
        in_memory.recording.to_plain(), sort_keys=True
    )
    manifest = json.load(open(os.path.join(log_dir, "manifest.json")))
    assert manifest["complete"] is True
    assert manifest["final_digest"] == durable.recording.final_digest
    assert ShardedLogReader(log_dir).verify() == []


def test_from_epoch_loads_only_the_suffix(tmp_path):
    log_dir = str(tmp_path / "log")
    instance, machine, result = _record("pbzip", log_dir=log_dir)
    total = result.recording.epoch_count()
    assert total >= 4, "need a multi-epoch run for a mid-run start"
    mid = total // 2
    reader = ShardedLogReader(log_dir)
    suffix = reader.load_recording(from_epoch=mid)
    assert suffix.epoch_count() == total - mid
    assert [e.index for e in suffix.epochs] == list(range(mid, total))
    # The suffix starts from epoch mid's checkpoint, materialised from
    # the blob store — not from program start.
    assert suffix.initial_checkpoint.index == result.recording.epochs[
        mid
    ].start_checkpoint.index
    outcome = Replayer(instance.image, machine).replay_sequential(suffix)
    assert outcome.verified, outcome.details
    assert outcome.epochs_replayed == total - mid


def test_from_epoch_out_of_range(tmp_path):
    log_dir = str(tmp_path / "log")
    _record(log_dir=log_dir)
    reader = ShardedLogReader(log_dir)
    with pytest.raises(ReplayError):
        reader.load_recording(from_epoch=reader.epoch_count() + 1)
    with pytest.raises(ReplayError):
        reader.load_recording(from_epoch=-1)


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(ReplayError):
        ShardedLogReader(str(tmp_path))


def test_unsupported_manifest_format_raises(tmp_path):
    (tmp_path / "manifest.json").write_text(json.dumps({"format": 99}))
    with pytest.raises(ReplayError):
        ShardedLogReader(str(tmp_path))


def test_spill_mode_bounds_memory_and_matches_durable(tmp_path):
    plain_dir = str(tmp_path / "plain")
    spill_dir = str(tmp_path / "spill")
    _, _, plain = _record("pbzip", log_dir=plain_dir)
    instance, machine, spilled = _record(
        "pbzip", log_dir=spill_dir, log_spill=True
    )
    # Spilled epochs hold no resident log data and refuse to_plain().
    assert spilled.recording.resident_log_bytes() == 0
    assert spilled.recording.stats["log_spilled"] == 1
    with pytest.raises(ValueError):
        spilled.recording.to_plain()
    # Per-epoch size accounting survives the spill; full accounting
    # (syscall/signal bytes included) lives on the durable load below.
    assert (
        spilled.recording.schedule_log_bytes()
        == plain.recording.schedule_log_bytes()
    )
    assert (
        spilled.recording.sync_log_bytes() == plain.recording.sync_log_bytes()
    )
    # The durable artefacts are byte-identical: spill changes only what
    # stays resident, never what is written.
    plain_manifest = open(os.path.join(plain_dir, "manifest.json")).read()
    spill_manifest = open(os.path.join(spill_dir, "manifest.json")).read()
    assert plain_manifest == spill_manifest
    loaded = ShardedLogReader(spill_dir).load_recording()
    assert loaded.total_log_bytes() == plain.recording.total_log_bytes()
    outcome = Replayer(instance.image, machine).replay_sequential(loaded)
    assert outcome.verified, outcome.details


def test_spill_requires_log_dir():
    with pytest.raises(ValueError):
        _record(log_spill=True)


def test_crash_tail_never_strands_a_sealed_epoch(tmp_path):
    # Garbage appended past the last flushed block (a crash mid-write)
    # is invisible: the manifest only references completed blocks.
    log_dir = str(tmp_path / "log")
    instance, machine, _ = _record("pbzip", log_dir=log_dir)
    segments = sorted(os.listdir(os.path.join(log_dir, "segments")))
    with open(os.path.join(log_dir, "segments", segments[-1]), "ab") as handle:
        handle.write(b"DPBK partial block torn by a crash")
    reader = ShardedLogReader(log_dir)
    assert reader.verify() == []
    loaded = reader.load_recording()
    outcome = Replayer(instance.image, machine).replay_sequential(loaded)
    assert outcome.verified, outcome.details


def test_verify_reports_missing_blobs(tmp_path):
    log_dir = str(tmp_path / "log")
    _record(log_dir=log_dir)
    os.remove(os.path.join(log_dir, "blobs", "pack.dppack"))
    problems = ShardedLogReader(log_dir).verify()
    assert any("checkpoint blob missing" in problem for problem in problems)


def test_group_commit_and_fsync_knobs(tmp_path, monkeypatch):
    # A 1 KiB threshold forces many group commits; REPRO_LOG_FSYNC=0
    # skips the log force entirely (throwaway-dir benchmarks).
    monkeypatch.setenv("REPRO_LOG_GROUP_KB", "1")
    monkeypatch.setenv("REPRO_LOG_FSYNC", "0")
    log_dir = str(tmp_path / "log")
    _, _, result = _record("pbzip", log_dir=log_dir)
    durable = result.metrics.snapshot()["durable"]
    assert durable["group_commits"] > 1
    assert durable.get("fsyncs", 0) == 0
    manifest = json.load(open(os.path.join(log_dir, "manifest.json")))
    blocks = sum(len(seg["blocks"]) for seg in manifest["segments"])
    assert blocks == durable["group_commits"]
    # Knobs change physical layout only — the logical content survives.
    loaded = ShardedLogReader(log_dir).load_recording()
    _, _, baseline = _record("pbzip")
    assert json.dumps(loaded.to_plain(), sort_keys=True) == json.dumps(
        baseline.recording.to_plain(), sort_keys=True
    )


def test_manifest_fsyncs_are_counted(tmp_path, monkeypatch):
    """With fsync mode on, every manifest write forces the tmp file and
    the directory entry — and both land in ``durable.fsyncs``. The old
    accounting counted only segment/pack forces, so the "atomic commit
    point" itself could vanish on power loss without a trace."""
    monkeypatch.delenv("REPRO_LOG_FSYNC", raising=False)
    monkeypatch.setenv("REPRO_LOG_GROUP_KB", "1")
    log_dir = str(tmp_path / "log")
    _, _, result = _record("pbzip", log_dir=log_dir)
    durable = result.metrics.snapshot()["durable"]
    commits = durable["group_commits"]
    assert commits > 1
    # at least: one segment fsync per group commit, plus tmp-file +
    # directory fsyncs for the initial and final manifest writes
    assert durable["fsyncs"] > commits + 2


def test_codec_choice_is_logically_invisible(tmp_path):
    plains = {}
    for codec in ("raw", "zlib1", "zlib6"):
        log_dir = str(tmp_path / codec)
        _record("pbzip", log_dir=log_dir, log_codec=codec)
        loaded = ShardedLogReader(log_dir).load_recording()
        plains[codec] = json.dumps(loaded.to_plain(), sort_keys=True)
        manifest = json.load(open(os.path.join(log_dir, "manifest.json")))
        assert manifest["codec"] == codec
    assert plains["raw"] == plains["zlib1"] == plains["zlib6"]


@pytest.mark.parametrize("name", ["pbzip", "racy-counter"])
def test_offline_persist_matches_streamed_log(tmp_path, name):
    # persist_recording (offline, final epoch unbounded) and the
    # recorder's streaming path must produce byte-identical logs —
    # including through forward recoveries (racy-counter prunes logs).
    from repro.record.shards import persist_recording

    streamed_dir = str(tmp_path / "streamed")
    _, _, streamed = _record(name, log_dir=streamed_dir)
    offline_dir = str(tmp_path / "offline")
    _, _, in_memory = _record(name)
    totals = persist_recording(in_memory.recording, offline_dir)
    assert totals["epochs"] == in_memory.recording.epoch_count()

    streamed_manifest = open(os.path.join(streamed_dir, "manifest.json")).read()
    offline_manifest = open(os.path.join(offline_dir, "manifest.json")).read()
    assert streamed_manifest == offline_manifest
    for segment in sorted(os.listdir(os.path.join(streamed_dir, "segments"))):
        a = open(os.path.join(streamed_dir, "segments", segment), "rb").read()
        b = open(os.path.join(offline_dir, "segments", segment), "rb").read()
        assert a == b, f"{segment} differs between streamed and offline"


def test_persist_refuses_spilled_recordings(tmp_path):
    from repro.record.shards import persist_recording

    _, _, spilled = _record(log_dir=str(tmp_path / "log"), log_spill=True)
    with pytest.raises(ValueError):
        persist_recording(spilled.recording, str(tmp_path / "again"))
