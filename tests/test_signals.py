"""Asynchronous signal delivery: timers, recording, exact replay.

DoublePlay logs the instruction at which each signal is delivered; we log
(tid, retired-count, handler) and inject deliveries at the same points
during epoch-parallel execution and replay.
"""

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.exec.trace import CollectingObserver
from repro.isa.assembler import Assembler
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from repro.oskernel.syscalls import SyscallKind
from tests.conftest import boot_multicore, boot_uniprocessor


def timer_program(workers=1, delay=300, work_iters=40):
    """Main arms a timer; a handler increments a counter asynchronously."""
    asm = Assembler(name="sig")
    asm.word("ticks", 0)
    asm.word("done", 0)
    with asm.function("handler"):
        asm.loadg("r8", "ticks")
        asm.addi("r8", "r8", 1)
        asm.storeg("r8", "ticks")
        asm.ret()
    with asm.function("worker"):
        asm.li("r2", 0)
        asm.label("spin")
        asm.work(20)
        asm.addi("r2", "r2", 1)
        asm.blti("r2", work_iters, "spin")
        asm.exit_()
    with asm.function("main"):
        asm.li("r2", delay)
        asm.li_label("r3", "handler")
        asm.syscall("r4", SyscallKind.SETTIMER, args=["r2", "r3"])
        for index in range(workers):
            asm.spawn(f"r{10 + index}", "worker")
        asm.li("r5", 0)
        asm.label("mainwork")
        asm.work(25)
        asm.addi("r5", "r5", 1)
        asm.blti("r5", work_iters, "mainwork")
        for index in range(workers):
            asm.join(f"r{10 + index}")
        asm.loadg("r6", "ticks")
        asm.syscall("r7", SyscallKind.PRINT, args=["r6"])
        asm.exit_()
    return asm.assemble()


class TestDelivery:
    def test_timer_fires_and_handler_runs(self):
        engine, kernel = boot_multicore(timer_program(), MachineConfig(cores=2))
        engine.run()
        assert kernel.output == [1]

    def test_handler_returns_to_interrupted_code(self):
        """Main's loop still completes all iterations around the handler."""
        engine, _ = boot_multicore(timer_program(), MachineConfig(cores=2))
        engine.run()
        assert engine.contexts[1].registers[5] == 40
        assert engine.contexts[1].call_stack == []

    def test_delivery_point_recorded(self):
        engine, _ = boot_multicore(timer_program(), MachineConfig(cores=2))
        log = []
        engine.signal_log = log
        engine.run()
        assert len(log) == 1
        tid, retired, handler_pc = log[0]
        assert tid == 1
        assert retired > 0
        assert handler_pc == engine.program.functions["handler"]

    def test_multiple_timers_all_delivered(self):
        asm = Assembler(name="multi")
        asm.word("ticks", 0)
        with asm.function("handler"):
            asm.loadg("r8", "ticks")
            asm.addi("r8", "r8", 1)
            asm.storeg("r8", "ticks")
            asm.ret()
        with asm.function("main"):
            asm.li_label("r3", "handler")
            for delay in (100, 300, 600):
                asm.li("r2", delay)
                asm.syscall("r4", SyscallKind.SETTIMER, args=["r2", "r3"])
            asm.li("r5", 0)
            asm.label("loop")
            asm.work(20)
            asm.addi("r5", "r5", 1)
            asm.blti("r5", 60, "loop")
            asm.loadg("r6", "ticks")
            asm.syscall("r7", SyscallKind.PRINT, args=["r6"])
            asm.exit_()
        engine, kernel = boot_multicore(asm.assemble(), MachineConfig(cores=1))
        engine.run()
        assert kernel.output == [3]

    def test_uniprocessor_delivery(self):
        engine, kernel = boot_uniprocessor(timer_program(), MachineConfig(cores=1))
        engine.run()
        assert kernel.output == [1]

    def test_trace_event_emitted(self):
        observer = CollectingObserver()
        engine, _ = boot_multicore(timer_program(), MachineConfig(cores=2))
        engine.observers.append(observer)
        engine.run()
        assert any(e.kind == "signal" for e in observer.events)

    def test_injected_delivery_matches_recorded_point(self):
        """Re-run from the log: the handler interposes at the exact op."""
        image = timer_program()
        machine = MachineConfig(cores=1)
        rec, rec_kernel = boot_uniprocessor(image, machine)
        log = []
        rec.signal_log = log
        outcome = rec.run()
        digest = rec.state_digest()

        from repro.exec.services import InjectedSyscalls
        from repro.exec.uniprocessor import UniprocessorEngine

        # capture the syscall log too for injection
        rec2, _ = boot_uniprocessor(image, machine, log=(syslog := []))
        rec2.signal_log = (log2 := [])
        outcome2 = rec2.run()

        rep = UniprocessorEngine.boot(image, machine, InjectedSyscalls(syslog))
        rep.install_signal_records(log2)
        rep.run_schedule(outcome2.schedule)
        assert rep.state_digest() == rec2.state_digest()
        assert rep.contexts[1].registers[6] == 1  # handler ran on replay too


class TestRecordReplayWithSignals:
    def test_full_pipeline(self):
        image = timer_program(workers=2, delay=400, work_iters=60)
        machine = MachineConfig(cores=2)
        config = DoublePlayConfig(machine=machine, epoch_cycles=700)
        result = DoublePlayRecorder(image, KernelSetup(), config).record()
        recording = result.recording
        assert result.recording.divergences() == 0
        assert len(recording.signal_records) == 1
        kernel = result.committed_kernel(KernelSetup(), image.heap_base)
        assert kernel.output == [1]

        replayer = Replayer(image, machine)
        assert replayer.replay_sequential(recording).verified
        assert replayer.replay_parallel(recording).verified

    def test_signals_serialise(self):
        import json

        from repro.record import Recording

        image = timer_program(workers=1, delay=200)
        machine = MachineConfig(cores=2)
        config = DoublePlayConfig(machine=machine, epoch_cycles=600)
        result = DoublePlayRecorder(image, KernelSetup(), config).record()
        plain = json.loads(json.dumps(result.recording.to_plain()))
        restored = Recording.from_plain(plain, result.recording.initial_checkpoint)
        assert restored.signal_records == result.recording.signal_records
        replayer = Replayer(image, machine)
        assert replayer.replay_sequential(restored).verified

    def test_signal_log_counted_in_sizes(self):
        image = timer_program(workers=1, delay=200)
        machine = MachineConfig(cores=2)
        config = DoublePlayConfig(machine=machine, epoch_cycles=600)
        result = DoublePlayRecorder(image, KernelSetup(), config).record()
        breakdown = result.recording.log_breakdown()
        assert breakdown["signal_bytes"] == 24 * len(
            result.recording.signal_records
        )
        assert breakdown["signal_bytes"] > 0
