"""Unit and property tests for deterministic RNG substreams."""

from hypothesis import given, strategies as st

from repro.sim.rng import DeterministicRng


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.randint(0, 1 << 30) for _ in range(8)] != [
            b.randint(0, 1 << 30) for _ in range(8)
        ]

    def test_forked_streams_are_independent_of_draw_order(self):
        parent = DeterministicRng(3)
        x = parent.fork("net")
        first = [x.randint(0, 1000) for _ in range(5)]

        parent2 = DeterministicRng(3)
        # Drawing from another fork first must not perturb "net".
        other = parent2.fork("disk")
        other.randint(0, 1000)
        y = parent2.fork("net")
        assert [y.randint(0, 1000) for _ in range(5)] == first

    def test_fork_paths_compose(self):
        a = DeterministicRng(1).fork("x").fork("y")
        b = DeterministicRng(1).fork("x").fork("y")
        assert a.random() == b.random()

    def test_fork_names_distinct(self):
        a = DeterministicRng(1).fork("x")
        b = DeterministicRng(1).fork("y")
        assert [a.randint(0, 1 << 30) for _ in range(4)] != [
            b.randint(0, 1 << 30) for _ in range(4)
        ]

    def test_getstate_setstate_round_trip(self):
        rng = DeterministicRng(5)
        rng.randint(0, 10)
        state = rng.getstate()
        expected = [rng.randint(0, 1000) for _ in range(5)]
        rng.setstate(state)
        assert [rng.randint(0, 1000) for _ in range(5)] == expected

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_any_seed_and_path_is_reproducible(self, seed, path):
        a = DeterministicRng(seed, path)
        b = DeterministicRng(seed, path)
        assert a.randint(0, 1 << 30) == b.randint(0, 1 << 30)

    @given(st.integers(min_value=1, max_value=100))
    def test_randint_respects_bounds(self, hi):
        rng = DeterministicRng(11)
        for _ in range(50):
            assert 0 <= rng.randint(0, hi) <= hi
