"""The fleet telemetry plane: histograms, journal, exposition, health.

Four layers, tested bottom-up:

* **Histograms** (:mod:`repro.obs.histo`) — log-bucketed and counter-
  encoded. Merging must be associative and commutative (that is what
  makes partition-independent quantiles possible at all), and the
  worker round-trip must leave the deterministic ``epoch_cycles``
  distribution bit-identical between ``jobs=1`` and ``jobs=4``.
* **Event journal** (:mod:`repro.obs.events`) — bounded ring semantics
  (overflow counts, global sequence numbers), the JSON-lines sink,
  per-thread session attribution, and the disabled-is-free contract.
* **Exposition** (:mod:`repro.obs.expo`) — the hub derives live state
  from the journal stream; ``/metrics`` is Prometheus text with
  per-session latency quantiles; ``/healthz`` answers 200/503.
* **Health** (:mod:`repro.obs.health`) — each detector judged on
  synthetic snapshots (pure function, no service behind it), then the
  end-to-end flip: a service run with an injected ``crash:`` fault
  reports a degraded verdict while a clean run reports ok.
"""

import asyncio
import io
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.baselines import run_native
from repro.cli import main as cli_main
from repro.core import DoublePlayConfig, DoublePlayRecorder
from repro.machine.config import MachineConfig
from repro.obs import events as obs_events
from repro.obs import health as obs_health
from repro.obs import histo as obs_histo
from repro.obs import metrics as obs_metrics
from repro.obs.expo import TelemetryHub, TelemetryServer, http_get
from repro.obs.histo import LogHistogram
from repro.obs.metrics import build_run_metrics
from repro.obs.summary import render_metric_lines
from repro.service import RecordService, ServiceConfig, SessionRequest
from repro.workloads import build_workload


@pytest.fixture(autouse=True)
def _no_leaked_journal():
    """No test may leak a process-global journal or event context."""
    yield
    obs_events.uninstall_journal()
    obs_events.set_event_context(None)


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# Histograms: bucketing, quantiles, merge algebra, counter encoding.
# ---------------------------------------------------------------------------


def _histogram_of(values):
    histogram = LogHistogram()
    for value in values:
        histogram.observe(value)
    return histogram


SAMPLE = [0.0001, 0.0005, 0.002, 0.002, 0.04, 0.04, 0.9, 1.8, 30.0, 500.0]


def test_bucket_index_is_monotonic_and_floors_tiny_values():
    values = [1e-12, 0.0, 1e-9, 1e-3, 1.0, 2.5, 99.0, 1e6]
    indices = [obs_histo.bucket_index(v) for v in values]
    assert indices == sorted(indices)
    # Zero and negative observations land in the smallest bucket, never
    # crash the log.
    assert obs_histo.bucket_index(0.0) == obs_histo.bucket_index(-5.0)
    for value in (0.003, 1.7, 420.0):
        index = obs_histo.bucket_index(value)
        assert value < obs_histo.bucket_upper_bound(index)
        assert obs_histo.bucket_mid(index) < obs_histo.bucket_upper_bound(index)


def test_quantiles_bracket_the_sample():
    histogram = _histogram_of(SAMPLE)
    assert histogram.count == len(SAMPLE)
    q = histogram.quantiles((0.50, 0.90, 0.99))
    assert set(q) == {"p50", "p90", "p99"}
    assert q["p50"] <= q["p90"] <= q["p99"]
    # Bucket-midpoint estimates stay within a bucket width of the truth.
    assert 0.01 < q["p50"] < 0.1
    assert q["p99"] > 100
    assert LogHistogram().quantile(0.99) == 0.0


def test_merge_is_associative_and_commutative():
    a = _histogram_of(SAMPLE[:3])
    b = _histogram_of(SAMPLE[3:7])
    c = _histogram_of(SAMPLE[7:])
    left = LogHistogram().merge(a).merge(b).merge(c)
    right = LogHistogram().merge(c).merge(LogHistogram().merge(b).merge(a))
    monolithic = _histogram_of(SAMPLE)
    assert left == right == monolithic
    assert left.quantiles() == monolithic.quantiles()


def test_counter_encoding_round_trips():
    histogram = _histogram_of(SAMPLE)
    counters = histogram.to_counters("unit_wall_s")
    assert all(key.startswith("unit_wall_s.b") for key in counters)
    assert LogHistogram.from_counters("unit_wall_s", counters) == histogram
    # Foreign keys are ignored, not crashed on.
    counters["other_hist.b3"] = 7
    counters["unit_wall_s.bogus"] = 1
    assert LogHistogram.from_counters("unit_wall_s", counters) == histogram
    assert obs_histo.histogram_names(counters) == (
        "other_hist", "unit_wall_s",
    )


def test_observe_writes_scoped_counters_and_respects_disable():
    registry = obs_metrics.activate_session_registry()
    try:
        obs_histo.observe("t", 0.5)
        obs_histo.observe("t", 0.5)
        previous = obs_histo.set_enabled(False)
        try:
            obs_histo.observe("t", 0.5)
        finally:
            obs_histo.set_enabled(previous)
        snap = registry.snapshot()
    finally:
        obs_metrics.deactivate_session_registry()
    key = f"histo.t.b{obs_histo.bucket_index(0.5)}"
    assert snap == {key: 2}


def test_run_metrics_reconstructs_histograms():
    histogram = _histogram_of(SAMPLE)
    delta = {
        f"histo.{key}": value
        for key, value in histogram.to_counters("commit_wall_s").items()
    }
    delta["exec.epochs"] = 3
    metrics = build_run_metrics(delta)
    assert metrics.histogram_names() == ("commit_wall_s",)
    assert metrics.histogram("commit_wall_s") == histogram
    assert not metrics.histogram("never_observed")
    lines = render_metric_lines(metrics)
    assert any("commit latency" in line for line in lines)


# ---------------------------------------------------------------------------
# Worker round-trip parity: jobs=1 and jobs=4 distributions identical.
# ---------------------------------------------------------------------------


def _record_metrics(jobs: int):
    instance = build_workload("fft", workers=2, scale=1, seed=3)
    machine = MachineConfig(cores=2)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 10, 500),
        host_jobs=jobs,
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    return result.metrics


def test_epoch_cycles_histogram_identical_across_jobs():
    solo = _record_metrics(jobs=1).histogram("epoch_cycles")
    fleet = _record_metrics(jobs=4).histogram("epoch_cycles")
    assert solo.count >= 2
    # Guest cycles are deterministic and merged-results-only ingestion
    # drops speculative/divergence tails, so the distributions are
    # bucket-for-bucket identical at any jobs count.
    assert solo == fleet
    assert solo.quantiles() == fleet.quantiles()


# ---------------------------------------------------------------------------
# Event journal: ring, sink, attribution, disabled-is-free.
# ---------------------------------------------------------------------------


def test_emit_without_journal_is_a_noop():
    assert obs_events.journal() is None
    obs_events.emit("epoch-commit", epoch=1)  # must not raise


def test_ring_overflow_counts_drops_and_keeps_sequence():
    journal = obs_events.install_journal(capacity=8)
    for i in range(20):
        journal.emit("epoch-commit", epoch=i)
    tail = journal.tail()
    assert len(tail) == 8
    assert journal.dropped == 12
    assert journal.emitted == 20
    assert [event["seq"] for event in tail] == list(range(12, 20))
    assert journal.tail(3) == tail[-3:]


def test_jsonl_sink_and_read_events(tmp_path):
    sink = tmp_path / "events.jsonl"
    journal = obs_events.install_journal(capacity=4, sink_path=str(sink))
    for i in range(6):
        journal.emit("epoch-commit", epoch=i)
    obs_events.uninstall_journal()
    # The ring dropped two, the sink kept all six.
    events = obs_events.read_events(str(sink))
    assert [event["epoch"] for event in events] == list(range(6))
    # Directory form resolves the default layout, and a torn tail line
    # (crashed writer) is tolerated.
    with open(sink, "a") as handle:
        handle.write('{"seq": 99, "kind": "divergen')
    assert len(obs_events.read_events(str(tmp_path))) == 6
    assert len(obs_events.read_events(str(sink), count=2)) == 2


def test_events_carry_thread_session_context():
    journal = obs_events.install_journal()
    seen = []
    journal.add_listener(seen.append)

    def tenant(sid):
        obs_events.set_event_context(sid)
        try:
            obs_events.emit("epoch-commit", epoch=0)
        finally:
            obs_events.set_event_context(None)

    threads = [
        threading.Thread(target=tenant, args=(f"s{i}",)) for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    obs_events.emit("flight-window-slide", dropped=1)  # main thread: no sid
    assert sorted(e["sid"] for e in seen if "sid" in e) == ["s0", "s1", "s2"]
    assert "sid" not in journal.tail()[-1]
    line = obs_events.format_event(seen[0])
    assert "epoch-commit" in line and "epoch=0" in line


def test_broken_listener_never_fails_the_producer():
    journal = obs_events.install_journal()
    journal.add_listener(lambda event: 1 / 0)
    journal.emit("epoch-commit", epoch=0)  # must not raise
    assert journal.emitted == 1


# ---------------------------------------------------------------------------
# Health: every detector, on synthetic snapshots.
# ---------------------------------------------------------------------------


def _session(**overrides):
    base = {
        "sid": "s0",
        "status": "completed",
        "admission_wait": 0.0,
        "faults": 0,
        "serial_fallbacks": 0,
        "commit_intervals": [],
        "last_commit_t": None,
    }
    base.update(overrides)
    return base


def test_clean_snapshot_is_ok():
    report = obs_health.evaluate({"now": 1.0, "sessions": [_session()]})
    assert report.ok
    assert report.to_plain() == {"status": "ok", "problems": []}


def test_stalled_lane_detector_scales_with_median():
    running = _session(
        status="running",
        commit_intervals=[0.01, 0.01, 0.012, 0.011],
        last_commit_t=1.0,
    )
    # Silent for 5s against a ~10ms median: stalled.
    report = obs_health.evaluate({"now": 6.0, "sessions": [running]})
    assert not report.ok
    assert report.problems[0]["detector"] == "stalled-lane"
    # The same silence is fine for a workload whose epochs take seconds.
    slow = dict(running, commit_intervals=[2.0, 2.0, 2.1, 1.9])
    assert obs_health.evaluate({"now": 6.0, "sessions": [slow]}).ok
    # Below the absolute floor nothing flags (scheduler jitter guard).
    jitter = dict(running, last_commit_t=5.9)
    assert obs_health.evaluate({"now": 6.0, "sessions": [jitter]}).ok
    # Too few commits: no baseline, no verdict.
    fresh = dict(running, commit_intervals=[0.01])
    assert obs_health.evaluate({"now": 6.0, "sessions": [fresh]}).ok


def test_admission_wait_detector_needs_opt_in():
    waiting = _session(admission_wait=2.0)
    assert obs_health.evaluate({"now": 3.0, "sessions": [waiting]}).ok
    policy = obs_health.HealthPolicy(max_admission_wait=0.5)
    report = obs_health.evaluate({"now": 3.0, "sessions": [waiting]}, policy)
    assert [p["detector"] for p in report.problems] == ["admission-wait"]


def test_fault_and_fallback_budgets():
    faulty = _session(faults=2, serial_fallbacks=1)
    report = obs_health.evaluate({"now": 1.0, "sessions": [faulty]})
    detectors = {p["detector"] for p in report.problems}
    assert detectors == {"fault-rate", "serial-fallback"}
    lenient = obs_health.HealthPolicy(fault_budget=2, fallback_budget=1)
    assert obs_health.evaluate({"now": 1.0, "sessions": [faulty]}, lenient).ok


def test_dedup_regression_detector():
    sessions = [_session(sid=f"s{i}") for i in range(4)]
    policy = obs_health.HealthPolicy(expect_dedup=True)
    snapshot = {
        "now": 1.0,
        "sessions": sessions,
        "fleet": {"wire": {"cross_session_hits": 0}},
    }
    report = obs_health.evaluate(snapshot, policy)
    assert [p["detector"] for p in report.problems] == ["dedup-regression"]
    snapshot["fleet"]["wire"]["cross_session_hits"] = 5
    assert obs_health.evaluate(snapshot, policy).ok
    # Too few sessions: zero hits is not yet evidence.
    small = {"now": 1.0, "sessions": sessions[:2], "fleet": snapshot["fleet"]}
    small["fleet"]["wire"]["cross_session_hits"] = 0
    assert obs_health.evaluate(small, policy).ok


# ---------------------------------------------------------------------------
# Exposition: the hub and its HTTP endpoints.
# ---------------------------------------------------------------------------


def _fed_hub():
    hub = TelemetryHub()
    journal = obs_events.install_journal()
    journal.add_listener(hub.ingest_event)
    hub.session_admitted("s0", 0.001)
    obs_events.set_event_context("s0")
    try:
        for i in range(4):
            obs_events.emit("epoch-commit", epoch=i, cycles=900)
        obs_events.emit("fault-contained", fault="crash", position=1)
    finally:
        obs_events.set_event_context(None)
    hub.session_completed(
        "s0", ok=True, epochs=4, duration=0.5,
        summary={"unit_latency_p50": 0.01, "unit_latency_p99": 0.02,
                 "inflight": 0},
    )
    return hub


def test_hub_derives_session_state_from_the_event_stream():
    hub = _fed_hub()
    snap = hub.snapshot()
    assert snap["completed"] == 1 and snap["failed"] == 0
    (session,) = snap["sessions"]
    assert session["sid"] == "s0"
    assert session["epochs"] == 4
    assert session["faults"] == 1
    assert len(session["commit_intervals"]) == 3
    assert session["lane"]["unit_latency_p99"] == 0.02
    # One fault against a zero budget: degraded.
    assert not hub.evaluate().ok


def test_prometheus_text_has_per_session_quantiles():
    text = _fed_hub().prometheus_text()
    assert "# TYPE repro_sessions_completed_total counter" in text
    assert "repro_sessions_completed_total 1" in text
    assert (
        'repro_session_unit_latency_seconds{session="s0",quantile="0.99"} 0.02'
        in text
    )
    assert 'repro_session_epochs_total{session="s0"} 4' in text
    assert "repro_admission_wait_seconds_bucket" in text
    assert 'le="+Inf"} 1' in text


def _serve_hub(hub):
    """Run a TelemetryServer for ``hub`` on its own loop thread."""
    loop = asyncio.new_event_loop()
    server = TelemetryServer(hub, port=0)
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)

        async def boot():
            await server.start()
            started.set()

        loop.run_until_complete(boot())
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(timeout=10)

    def shutdown():
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    return server, shutdown


def test_endpoints_serve_metrics_sessions_and_health():
    hub = _fed_hub()
    server, shutdown = _serve_hub(hub)
    try:
        metrics_text = http_get(f"{server.url}/metrics")
        assert "repro_sessions_completed_total 1" in metrics_text
        sessions = json.loads(http_get(f"{server.url}/sessions"))
        assert sessions["sessions"][0]["sid"] == "s0"
        # The fed hub carries one contained fault: healthz must be 503.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/healthz")
        assert excinfo.value.code == 503
        body = json.loads(excinfo.value.read().decode())
        assert body["status"] == "degraded"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/nope")
        assert excinfo.value.code == 404
    finally:
        shutdown()


def test_healthz_is_200_when_clean():
    hub = TelemetryHub()
    hub.session_admitted("s0", 0.0)
    hub.session_completed("s0", ok=True, epochs=2, duration=0.1)
    server, shutdown = _serve_hub(hub)
    try:
        body = json.loads(http_get(f"{server.url}/healthz"))
        assert body == {"status": "ok", "problems": []}
    finally:
        shutdown()


# ---------------------------------------------------------------------------
# End to end: the service under fault injection, and the live endpoint.
# ---------------------------------------------------------------------------


def _requests(count, faults_for=None, fault="crash:unit1"):
    return [
        SessionRequest(
            sid=f"s{i}",
            workload="fft",
            workers=2,
            scale=1,
            seed=0,
            faults=(fault if i == faults_for else ""),
        )
        for i in range(count)
    ]


def test_service_health_flips_degraded_under_injected_crash():
    service = RecordService(ServiceConfig(jobs=2, max_active=2))
    report = service.run(_requests(2, faults_for=0))
    assert report.ok, [r.error for r in report.results]
    assert report.health is not None
    assert not report.healthy
    detectors = {p["detector"] for p in report.health["problems"]}
    assert "fault-rate" in detectors
    # The hub attributed contained faults to the injected tenant. (The
    # clean tenant may also record collateral faults: a crash kills a
    # shared fleet worker, and its in-flight units die and retry too.)
    views = {s["sid"]: s for s in service.hub.snapshot()["sessions"]}
    assert views["s0"]["faults"] >= 1


def test_service_health_ok_when_clean():
    service = RecordService(ServiceConfig(jobs=2, max_active=2))
    report = service.run(_requests(2))
    assert report.ok and report.healthy
    assert report.summary()["health"]["status"] == "ok"


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_live_endpoint_during_service_run(tmp_path):
    port = _free_port()
    events_path = tmp_path / "events.jsonl"
    service = RecordService(
        ServiceConfig(
            jobs=2,
            max_active=2,
            telemetry_port=port,
            telemetry_linger=8.0,
            events_path=str(events_path),
        )
    )
    outcome = {}

    def run():
        outcome["report"] = service.run(_requests(2))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 60
    text = ""
    try:
        # Poll until both sessions show completed on the live endpoint
        # (the linger window keeps it up after the work finishes).
        while time.monotonic() < deadline:
            try:
                text = http_get(f"http://127.0.0.1:{port}/metrics", timeout=2)
            except OSError:
                time.sleep(0.05)
                continue
            if "repro_sessions_completed_total 2" in text:
                break
            time.sleep(0.05)
        assert "repro_sessions_completed_total 2" in text
        assert 'quantile="0.99"' in text
        health = json.loads(http_get(f"http://127.0.0.1:{port}/healthz"))
        assert health["status"] == "ok"
        sessions = json.loads(http_get(f"http://127.0.0.1:{port}/sessions"))
        assert {s["sid"] for s in sessions["sessions"]} == {"s0", "s1"}
        # repro top renders the same payload.
        code, text_out = run_cli(
            "top", "--url", f"http://127.0.0.1:{port}", "--once"
        )
        assert code == 0
        assert "2 completed" in text_out
    finally:
        thread.join(timeout=120)
    report = outcome["report"]
    assert report.ok and report.healthy
    assert report.telemetry_port == port
    # The journal sink recorded the run's transitions.
    kinds = {e["kind"] for e in obs_events.read_events(str(events_path))}
    assert "epoch-commit" in kinds
    assert "session-admitted" in kinds and "session-completed" in kinds


# ---------------------------------------------------------------------------
# CLI: events tail, metrics diff, serve summary surface.
# ---------------------------------------------------------------------------


def test_cli_events_tail(tmp_path):
    sink = tmp_path / "events.jsonl"
    journal = obs_events.install_journal(sink_path=str(sink))
    obs_events.set_event_context("s7")
    try:
        for i in range(5):
            journal.emit("epoch-commit", epoch=i)
    finally:
        obs_events.set_event_context(None)
    obs_events.uninstall_journal()
    code, text = run_cli("events", "tail", str(tmp_path), "-n", "2")
    assert code == 0
    lines = [line for line in text.splitlines() if line.strip()]
    assert len(lines) == 2
    assert "epoch-commit" in lines[0] and "[s7]" in lines[0]
    assert "epoch=4" in lines[-1]


def test_cli_metrics_diff(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(
        {"metrics": {"exec": {"epochs": 10, "ops": 100}, "wire": {"b": 5}}}
    ))
    b.write_text(json.dumps(
        {"metrics": {"exec": {"epochs": 10, "ops": 150}, "wire": {"b": 5},
                     "histo": {"x.b1": 2}}}
    ))
    code, text = run_cli("metrics", "diff", str(a), str(b))
    assert code == 0
    assert "exec.ops" in text and "+50.0%" in text
    assert "histo.x.b1" in text and "new" in text
    assert "exec.epochs" not in text  # unchanged rows hidden by default
    code, _ = run_cli(
        "metrics", "diff", str(a), str(b), "--threshold", "0.4", "--check"
    )
    assert code == 1
    code, _ = run_cli(
        "metrics", "diff", str(a), str(a), "--check"
    )
    assert code == 0


def test_cli_record_metrics_out_and_histogram_summary(tmp_path):
    out_path = tmp_path / "metrics.json"
    code, text = run_cli(
        "record", "fft", "--scale", "1",
        "--metrics-out", str(out_path),
    )
    assert code == 0
    assert "epoch length" in text  # the histogram quantile summary line
    payload = json.loads(out_path.read_text())
    assert payload["workload"]["name"] == "fft"
    assert any(key.startswith("epoch_cycles.b")
               for key in payload["metrics"]["histo"])
    # The exported snapshot round-trips through metrics diff.
    code, text = run_cli(
        "metrics", "diff", str(out_path), str(out_path), "--check"
    )
    assert code == 0
    assert "0 metric(s) differ" in text


def test_cli_serve_prints_health_and_events(tmp_path):
    events_path = tmp_path / "events.jsonl"
    code, text = run_cli(
        "serve", "fft", "--scale", "1", "--sessions", "2", "--jobs", "2",
        "--events", str(events_path),
    )
    assert code == 0
    assert "health: ok" in text
    assert events_path.exists()
    code, text = run_cli("events", "tail", str(events_path))
    assert code == 0
    assert "session-completed" in text
