"""Schedule logs, sync-order logs/oracle, recording serialisation."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.record.schedule_log import ScheduleLog, Timeslice
from repro.record.sync_log import SyncOrderLog, SyncOrderOracle


class TestScheduleLog:
    def test_append_and_iterate(self):
        log = ScheduleLog()
        log.append(1, 5, False)
        log.append(2, 3, True)
        assert [(s.tid, s.ops, s.ended_blocked) for s in log] == [
            (1, 5, False),
            (2, 3, True),
        ]

    def test_consecutive_same_thread_merges(self):
        log = ScheduleLog()
        log.append(1, 5, False)
        log.append(1, 4, False)
        assert len(log) == 1
        assert log.slices[0].ops == 9

    def test_no_merge_across_blocking(self):
        log = ScheduleLog()
        log.append(1, 5, True)
        log.append(1, 4, False)
        assert len(log) == 2

    def test_no_merge_across_threads(self):
        log = ScheduleLog()
        log.append(1, 5, False)
        log.append(2, 4, False)
        log.append(1, 2, False)
        assert len(log) == 3

    def test_total_ops(self):
        log = ScheduleLog()
        log.append(1, 5, False)
        log.append(2, 7, True)
        assert log.total_ops() == 12

    def test_plain_round_trip(self):
        log = ScheduleLog()
        log.append(1, 5, True)
        log.append(2, 1, False)
        assert ScheduleLog.from_plain(log.to_plain()).slices == log.slices

    def test_size_words_proportional_to_slices(self):
        log = ScheduleLog()
        for tid in (1, 2, 1, 2):
            log.append(tid, 1, False)
        assert log.size_words() == 3 * 4

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=0, max_value=50),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    def test_property_merging_preserves_total_ops(self, entries):
        log = ScheduleLog()
        for tid, ops, blocked in entries:
            log.append(tid, ops, blocked)
        assert log.total_ops() == sum(ops for _, ops, _ in entries)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=0, max_value=50),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    def test_property_plain_round_trip(self, entries):
        log = ScheduleLog()
        for tid, ops, blocked in entries:
            log.append(tid, ops, blocked)
        restored = ScheduleLog.from_plain(json.loads(json.dumps(log.to_plain())))
        assert restored.slices == log.slices


class TestSyncOrderOracle:
    def test_empty_oracle_defers_everyone(self):
        """No recorded events for an address = no acquisitions happened;
        an installed oracle therefore never allows one."""
        oracle = SyncOrderOracle(SyncOrderLog())
        assert not oracle.may_acquire(5, 1)
        assert oracle.next_turn(5) is None

    def test_turns_consumed_in_order(self):
        oracle = SyncOrderOracle(
            SyncOrderLog((("lock", 5, 1), ("lock", 5, 2), ("lock", 5, 1)))
        )
        assert oracle.next_turn(5) == 1
        assert not oracle.may_acquire(5, 2)
        oracle.consume(5, 1)
        assert oracle.next_turn(5) == 2
        oracle.consume(5, 2)
        assert oracle.next_turn(5) == 1
        oracle.consume(5, 1)
        assert oracle.next_turn(5) is None

    def test_addresses_independent(self):
        oracle = SyncOrderOracle(SyncOrderLog((("lock", 5, 1), ("lock", 6, 2))))
        assert oracle.may_acquire(6, 2)
        assert not oracle.may_acquire(5, 2)

    def test_out_of_turn_consume_counts_violation(self):
        oracle = SyncOrderOracle(SyncOrderLog((("lock", 5, 1),)))
        oracle.consume(5, 2)
        assert oracle.violations == 1
        assert oracle.next_turn(5) == 1  # not consumed

    def test_remaining(self):
        oracle = SyncOrderOracle(
            SyncOrderLog((("lock", 5, 1), ("sem", 6, 2)))
        )
        assert oracle.remaining() == 2
        oracle.consume(5, 1)
        assert oracle.remaining() == 1

    def test_per_object_view(self):
        log = SyncOrderLog((("lock", 5, 1), ("lock", 6, 9), ("lock", 5, 2)))
        assert log.per_object() == {5: [1, 2], 6: [9]}

    def test_plain_round_trip(self):
        log = SyncOrderLog((("lock", 5, 1), ("atomic", 7, 3)))
        assert SyncOrderLog.from_plain(
            json.loads(json.dumps(log.to_plain()))
        ).events == log.events


class TestRecordingSerialisation:
    def _record(self):
        from repro.core import DoublePlayConfig, DoublePlayRecorder
        from repro.machine.config import MachineConfig
        from repro.oskernel.kernel import KernelSetup
        from tests.conftest import counter_program

        image = counter_program(workers=2, iters=30)
        config = DoublePlayConfig(machine=MachineConfig(cores=2), epoch_cycles=1200)
        return image, DoublePlayRecorder(image, KernelSetup(), config).record()

    def test_plain_form_is_json_compatible(self):
        _, result = self._record()
        plain = result.recording.to_plain()
        assert json.loads(json.dumps(plain)) == plain

    def test_round_trip_preserves_logs(self):
        from repro.record.recording import Recording

        _, result = self._record()
        recording = result.recording
        plain = json.loads(json.dumps(recording.to_plain()))
        restored = Recording.from_plain(plain, recording.initial_checkpoint)
        assert restored.epoch_count() == recording.epoch_count()
        assert restored.final_digest == recording.final_digest
        for mine, theirs in zip(recording.epochs, restored.epochs):
            assert mine.schedule.slices == theirs.schedule.slices
            assert mine.sync_log.events == theirs.sync_log.events
            assert mine.targets == theirs.targets
            assert mine.end_digest == theirs.end_digest
        assert restored.syscall_records == recording.syscall_records

    def test_log_breakdown_sums(self):
        _, result = self._record()
        breakdown = result.recording.log_breakdown()
        assert breakdown["total_bytes"] == (
            breakdown["schedule_bytes"]
            + breakdown["sync_bytes"]
            + breakdown["syscall_bytes"]
        )
        assert breakdown["total_bytes"] > 0

    def test_prune_syscall_records(self):
        from repro.oskernel.syscalls import SyscallKind, SyscallRecord
        from repro.record.recording import prune_syscall_records

        records = [
            SyscallRecord(tid=1, seq=0, kind=SyscallKind.TIME, retval=1),
            SyscallRecord(tid=1, seq=1, kind=SyscallKind.TIME, retval=2),
            SyscallRecord(tid=2, seq=0, kind=SyscallKind.TIME, retval=3),
            SyscallRecord(tid=3, seq=0, kind=SyscallKind.TIME, retval=4),
        ]
        kept = prune_syscall_records(records, {1: 1, 2: 1})
        assert [(r.tid, r.seq) for r in kept] == [(1, 0), (2, 0)]
