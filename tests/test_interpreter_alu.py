"""ALU / control-flow semantics, exercised through real engine runs."""

import pytest

from repro.errors import GuestFault
from repro.memory.layout import wrap_word
from tests.conftest import main_registers, run_single


def run_body(body):
    engine, _ = run_single(body)
    return main_registers(engine)


class TestArithmetic:
    def test_li_mov(self):
        regs = run_body(lambda a: (a.li("r1", 42), a.mov("r2", "r1")))
        assert regs[1] == 42
        assert regs[2] == 42

    def test_add_sub(self):
        def body(a):
            a.li("r1", 10)
            a.li("r2", 3)
            a.add("r3", "r1", "r2")
            a.sub("r4", "r1", "r2")

        regs = run_body(body)
        assert regs[3] == 13
        assert regs[4] == 7

    def test_mul_div_mod(self):
        def body(a):
            a.li("r1", 17)
            a.li("r2", 5)
            a.mul("r3", "r1", "r2")
            a.div("r4", "r1", "r2")
            a.mod("r5", "r1", "r2")

        regs = run_body(body)
        assert regs[3] == 85
        assert regs[4] == 3
        assert regs[5] == 2

    def test_division_by_zero_faults(self):
        def body(a):
            a.li("r1", 1)
            a.li("r2", 0)
            a.div("r3", "r1", "r2")

        with pytest.raises(GuestFault):
            run_single(body)

    def test_mod_by_zero_faults(self):
        def body(a):
            a.li("r1", 1)
            a.li("r2", 0)
            a.mod("r3", "r1", "r2")

        with pytest.raises(GuestFault):
            run_single(body)

    def test_bitwise(self):
        def body(a):
            a.li("r1", 0b1100)
            a.li("r2", 0b1010)
            a.and_("r3", "r1", "r2")
            a.or_("r4", "r1", "r2")
            a.xor("r5", "r1", "r2")

        regs = run_body(body)
        assert regs[3] == 0b1000
        assert regs[4] == 0b1110
        assert regs[5] == 0b0110

    def test_immediates(self):
        def body(a):
            a.li("r1", 7)
            a.addi("r2", "r1", -3)
            a.muli("r3", "r1", 6)
            a.shli("r4", "r1", 2)
            a.shri("r5", "r1", 1)

        regs = run_body(body)
        assert regs[2] == 4
        assert regs[3] == 42
        assert regs[4] == 28
        assert regs[5] == 3

    def test_comparisons(self):
        def body(a):
            a.li("r1", 4)
            a.li("r2", 9)
            a.slt("r3", "r1", "r2")
            a.slt("r4", "r2", "r1")
            a.slti("r5", "r1", 5)
            a.seq("r6", "r1", "r1")
            a.seqi("r7", "r1", 4)
            a.seqi("r8", "r1", 5)

        regs = run_body(body)
        assert regs[3:9] == [1, 0, 1, 1, 1, 0]

    def test_overflow_wraps_to_64_bits(self):
        def body(a):
            a.li("r1", (1 << 62))
            a.li("r2", (1 << 62))
            a.add("r3", "r1", "r2")
            a.mul("r4", "r1", "r2")

        regs = run_body(body)
        assert regs[3] == wrap_word((1 << 62) * 2)
        assert regs[4] == wrap_word((1 << 62) ** 2)

    def test_tid_of_main_is_one(self):
        regs = run_body(lambda a: a.tid("r1"))
        assert regs[1] == 1


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        def body(a):
            a.li("r1", 5)
            a.beqi("r1", 5, "taken")
            a.li("r2", 111)  # skipped
            a.label("taken")
            a.bnei("r1", 5, "nottaken")
            a.li("r3", 222)  # executed
            a.label("nottaken")

        regs = run_body(body)
        assert regs[2] == 0
        assert regs[3] == 222

    def test_loop_via_blti(self):
        def body(a):
            a.li("r1", 0)
            a.label("loop")
            a.addi("r1", "r1", 1)
            a.blti("r1", 10, "loop")

        assert run_body(body)[1] == 10

    def test_register_branches(self):
        def body(a):
            a.li("r1", 2)
            a.li("r2", 2)
            a.li("r3", 3)
            a.beq("r1", "r2", "eq")
            a.li("r4", 1)
            a.label("eq")
            a.blt("r1", "r3", "lt")
            a.li("r5", 1)
            a.label("lt")
            a.bge("r3", "r1", "ge")
            a.li("r6", 1)
            a.label("ge")
            a.bne("r1", "r3", "ne")
            a.li("r7", 1)
            a.label("ne")

        regs = run_body(body)
        assert regs[4] == 0 and regs[5] == 0 and regs[6] == 0 and regs[7] == 0

    def test_call_and_ret(self):
        from repro.isa.assembler import Assembler
        from tests.conftest import boot_multicore
        from repro.machine import MachineConfig

        asm = Assembler()
        with asm.function("double"):
            asm.muli("r1", "r1", 2)
            asm.ret()
        with asm.function("main"):
            asm.li("r1", 21)
            asm.call("double")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=1))
        engine.run()
        assert engine.contexts[1].registers[1] == 42
        assert engine.contexts[1].call_stack == []

    def test_ret_without_call_faults(self):
        with pytest.raises(GuestFault):
            run_single(lambda a: a.ret())

    def test_nested_calls(self):
        from repro.isa.assembler import Assembler
        from tests.conftest import boot_multicore
        from repro.machine import MachineConfig

        asm = Assembler()
        with asm.function("inc"):
            asm.addi("r1", "r1", 1)
            asm.ret()
        with asm.function("inc2"):
            asm.call("inc")
            asm.call("inc")
            asm.ret()
        with asm.function("main"):
            asm.li("r1", 0)
            asm.call("inc2")
            asm.call("inc2")
            asm.exit_()
        engine, _ = boot_multicore(asm.assemble(), MachineConfig(cores=1))
        engine.run()
        assert engine.contexts[1].registers[1] == 4


class TestCosts:
    def test_work_consumes_exact_cycles(self):
        engine_small, _ = run_single(lambda a: a.work(10))
        engine_big, _ = run_single(lambda a: a.work(510))
        assert engine_big.time - engine_small.time == 500

    def test_workr_uses_register(self):
        def body(a):
            a.li("r1", 300)
            a.workr("r1")

        engine, _ = run_single(body)
        engine0, _ = run_single(lambda a: (a.li("r1", 300), a.workr("r1"), a.workr("r1")))
        assert engine0.time - engine.time == 300

    def test_workr_minimum_one_cycle(self):
        def body(a):
            a.li("r1", -5)
            a.workr("r1")

        engine, _ = run_single(body)  # must terminate, cost >= 1
        assert engine.time > 0

    def test_retired_counts_instructions(self):
        engine, _ = run_single(lambda a: (a.nop(), a.nop(), a.nop()))
        # 3 nops + exit
        assert engine.contexts[1].retired == 4
