"""Property-based end-to-end test: random programs record and replay.

Hypothesis generates small random concurrent guest programs over a safe
action vocabulary (compute, lock-protected updates, atomics, barriers,
syscalls, and — optionally — deliberately racy plain accesses). For every
generated program the DoublePlay pipeline must uphold its contract:

* recording terminates and commits,
* race-free programs record with zero divergences,
* sequential and parallel replay reproduce the committed states exactly —
  racy or not.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.isa.assembler import Assembler
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import KernelSetup
from repro.oskernel.syscalls import SyscallKind

CELLS = 8
LOCKS = 4

# Discipline that keeps generated programs race-free: cell i (i < LOCKS)
# is accessed only under lock i; cells LOCKS..CELLS-1 only by atomics.
_safe_action = st.one_of(
    st.tuples(st.just("work"), st.integers(min_value=1, max_value=40)),
    st.tuples(
        st.just("locked_inc"),
        st.integers(min_value=0, max_value=LOCKS - 1),
    ).map(lambda t: ("locked_inc", t[1], t[1])),
    st.tuples(
        st.just("atomic"), st.integers(min_value=LOCKS, max_value=CELLS - 1)
    ),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("time")),
)

_racy_action = st.one_of(
    _safe_action,
    st.tuples(st.just("plain_inc"), st.integers(min_value=0, max_value=CELLS - 1)),
)


def build_program(actions, iters, workers):
    """All workers run the same action body ``iters`` times (keeps
    barriers aligned); main joins them and prints a checksum."""
    asm = Assembler(name="prop")
    asm.array("cells", CELLS)
    asm.page_aligned_array("locks", LOCKS)
    asm.word("barrier", 0)
    with asm.function("worker"):
        asm.li("r2", 0)
        asm.label("iter")
        for index, action in enumerate(actions):
            kind = action[0]
            if kind == "work":
                asm.work(action[1])
            elif kind == "locked_inc":
                _, lock_index, cell_index = action
                asm.li("r3", "locks")
                asm.addi("r3", "r3", lock_index)
                asm.lock("r3")
                asm.li("r4", "cells")
                asm.addi("r4", "r4", cell_index)
                asm.load("r5", "r4", 0)
                asm.addi("r5", "r5", 1)
                asm.store("r5", "r4", 0)
                asm.unlock("r3")
            elif kind == "atomic":
                asm.li("r3", "cells")
                asm.addi("r3", "r3", action[1])
                asm.li("r4", 1)
                asm.fetchadd("r5", "r3", 0, "r4")
            elif kind == "barrier":
                asm.li("r3", "barrier")
                asm.li("r4", workers)
                asm.barrier("r3", "r4")
            elif kind == "time":
                asm.syscall("r6", SyscallKind.TIME, args=[])
            elif kind == "plain_inc":
                asm.li("r3", "cells")
                asm.addi("r3", "r3", action[1])
                asm.load("r5", "r3", 0)
                asm.addi("r5", "r5", 1)
                asm.store("r5", "r3", 0)
        asm.addi("r2", "r2", 1)
        asm.blti("r2", iters, "iter")
        asm.exit_()
    with asm.function("main"):
        for index in range(workers):
            asm.spawn(f"r{10 + index}", "worker")
        for index in range(workers):
            asm.join(f"r{10 + index}")
        asm.li("r2", 0)
        asm.li("r3", 0)
        asm.label("cks")
        asm.li("r4", "cells")
        asm.add("r4", "r4", "r3")
        asm.load("r5", "r4", 0)
        asm.muli("r6", "r2", 31)
        asm.add("r2", "r6", "r5")
        asm.addi("r3", "r3", 1)
        asm.blti("r3", CELLS, "cks")
        asm.syscall("r7", SyscallKind.PRINT, args=["r2"])
        asm.exit_()
    return asm.assemble()


def record_and_replay(image, workers, epoch_cycles):
    machine = MachineConfig(cores=workers)
    config = DoublePlayConfig(machine=machine, epoch_cycles=epoch_cycles)
    result = DoublePlayRecorder(image, KernelSetup(), config).record()
    replayer = Replayer(image, machine)
    sequential = replayer.replay_sequential(result.recording)
    parallel = replayer.replay_parallel(result.recording)
    return result, sequential, parallel


@settings(max_examples=25, deadline=None)
@given(
    actions=st.lists(_safe_action, min_size=2, max_size=8),
    iters=st.integers(min_value=2, max_value=6),
    workers=st.integers(min_value=2, max_value=3),
    epoch_cycles=st.sampled_from([400, 900, 2500]),
)
def test_race_free_programs_record_cleanly_and_replay(
    actions, iters, workers, epoch_cycles
):
    image = build_program(actions, iters, workers)
    result, sequential, parallel = record_and_replay(image, workers, epoch_cycles)
    assert result.recording.divergences() == 0
    assert sequential.verified, sequential.details
    assert parallel.verified, parallel.details


@settings(max_examples=25, deadline=None)
@given(
    actions=st.lists(_racy_action, min_size=2, max_size=8),
    iters=st.integers(min_value=2, max_value=6),
    workers=st.integers(min_value=2, max_value=3),
    epoch_cycles=st.sampled_from([400, 900, 2500]),
)
def test_racy_programs_still_replay_exactly(actions, iters, workers, epoch_cycles):
    """Divergences may occur; the committed recording must replay anyway."""
    image = build_program(actions, iters, workers)
    result, sequential, parallel = record_and_replay(image, workers, epoch_cycles)
    assert sequential.verified, sequential.details
    assert parallel.verified, parallel.details
    # forward recovery bookkeeping is self-consistent
    recovered = sum(1 for e in result.recording.epochs if e.recovered)
    assert recovered == result.recording.divergences()


@settings(max_examples=10, deadline=None)
@given(
    actions=st.lists(_safe_action, min_size=2, max_size=6),
    iters=st.integers(min_value=2, max_value=4),
)
def test_recording_twice_is_identical(actions, iters):
    image = build_program(actions, iters, 2)
    machine = MachineConfig(cores=2)
    config = DoublePlayConfig(machine=machine, epoch_cycles=900)
    a = DoublePlayRecorder(image, KernelSetup(), config).record()
    b = DoublePlayRecorder(image, KernelSetup(), config).record()
    assert a.recording.final_digest == b.recording.final_digest
    assert a.makespan == b.makespan
    assert [e.schedule.to_plain() for e in a.recording.epochs] == [
        e.schedule.to_plain() for e in b.recording.epochs
    ]
