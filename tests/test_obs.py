"""The observability layer: spans, mergeable metrics, Perfetto export.

The layer's contract is one-way glass — it may observe everything and
influence nothing. These tests cover the pieces in isolation (tracer
clock re-basing, RunMetrics merging, export schema, timeline analysis)
and the cross-process plumbing end to end: worker counters survive the
round-trip, serial and parallel runs report identical execution
metrics, every executed unit is attributable to a real pid, and the
CLI round-trips a trace through ``record --trace`` / ``trace
summarize``.
"""

import io
import json
import os

import pytest

from repro.baselines import run_native
from repro.cli import main as cli_main
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.machine.config import MachineConfig
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.metrics import RunMetrics, build_run_metrics
from repro.sim.stats import StatsRegistry
from repro.workloads import build_workload


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """No test may leak an active tracer into the next."""
    yield
    assert obs_spans.current() is None, "test leaked an active tracer"
    obs_spans.stop_trace()


def _record(name="pbzip", workers=2, jobs=1, scale=2, seed=11):
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // 12, 500),
        host_jobs=jobs,
    )
    return (
        DoublePlayRecorder(instance.image, instance.setup, config).record(),
        instance,
        machine,
    )


# ---------------------------------------------------------------------------
# StatsRegistry / RunMetrics
# ---------------------------------------------------------------------------


def test_stats_registry_clear():
    registry = StatsRegistry()
    registry.add("a")
    registry.add("b", 5)
    registry.clear()
    assert registry.snapshot() == {}


def test_run_metrics_merge_and_flat():
    left = RunMetrics()
    left.add("exec", "epochs", 3)
    left.add("wire", "bytes_shipped", 100)
    right = RunMetrics()
    right.add("exec", "epochs", 2)
    right.add("faults", "crashes", 1)
    left.merge(right)
    assert left.snapshot() == {
        "exec": {"epochs": 5},
        "faults": {"crashes": 1},
        "wire": {"bytes_shipped": 100},
    }
    assert left.flat() == {
        "exec.epochs": 5,
        "faults.crashes": 1,
        "wire.bytes_shipped": 100,
    }
    assert left.get("exec", "epochs") == 5
    assert left.get("exec", "missing", default=-1) == -1
    assert RunMetrics.from_snapshot(left.snapshot()).snapshot() == left.snapshot()


def test_merge_group_keeps_only_numeric_scalars():
    metrics = RunMetrics()
    metrics.merge_group(
        "host",
        {"jobs": 4, "units": 7, "unit_pids": [1, 2], "wire": {"x": 1},
         "flag": True},
    )
    # Unexpected non-numerics are dropped *visibly*: each one counts
    # under obs.metrics_dropped so worker-payload schema drift shows up.
    assert metrics.snapshot() == {
        "host": {"jobs": 4, "units": 7},
        "obs": {"metrics_dropped": 3},
    }


def test_merge_group_ignore_list_suppresses_drop_counter():
    metrics = RunMetrics()
    metrics.merge_group(
        "host",
        {"jobs": 4, "unit_pids": [1, 2], "wire": {"x": 1}, "flag": True},
        ignore=("unit_pids", "wire"),
    )
    # Named structural keys are expected; only the stray bool counts.
    assert metrics.snapshot() == {
        "host": {"jobs": 4},
        "obs": {"metrics_dropped": 1},
    }


def test_build_run_metrics_host_structural_keys_not_counted_as_drops():
    metrics = build_run_metrics(
        {},
        host={
            "jobs": 2,
            "unit_wall": [0.1],
            "unit_cpu": [0.1],
            "unit_pids": [11],
            "fault_events": [],
            "speculation": {"pushed": 0},
            "wire": {"bytes_shipped": 1, "unit_bytes": [1]},
            "faults": {"crashes": 0},
        },
    )
    assert metrics.get("obs", "metrics_dropped") == 0


def test_build_run_metrics_groups_dotted_names_and_host():
    metrics = build_run_metrics(
        {"exec.epochs": 2, "exec.epoch_cycles": 900, "stray": 1},
        host={
            "jobs": 2,
            "units": 2,
            "wire": {"bytes_shipped": 10, "blobs_sent": 1},
            "faults": {"crashes": 0},
        },
        record={"epochs": 2, "fault_message": "not a number"},
    )
    snap = metrics.snapshot()
    assert snap["exec"] == {"epochs": 2, "epoch_cycles": 900}
    assert snap["misc"] == {"stray": 1}
    assert snap["host"] == {"jobs": 2, "units": 2}
    assert snap["wire"] == {"bytes_shipped": 10, "blobs_sent": 1}
    assert snap["record"] == {"epochs": 2}


def test_delta_since_reports_only_growth():
    stats = obs_metrics.process_stats()
    baseline = stats.snapshot()
    stats.add("obs_test.counter", 3)
    delta = obs_metrics.delta_since(baseline)
    assert delta["obs_test.counter"] == 3
    assert all(key == "obs_test.counter" or value for key, value in delta.items())


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


def test_span_is_noop_when_disabled():
    assert not obs_spans.enabled()
    with obs_spans.span("execute", obs_spans.CAT_EPOCH, epoch=0):
        pass  # must not raise, must not record anywhere


def test_tracer_records_and_clamps():
    tracer = obs_spans.start_trace()
    try:
        with obs_spans.span("execute", obs_spans.CAT_EPOCH, epoch=7):
            pass
        tracer.add("weird", obs_spans.CAT_WIRE, start=2.0, end=1.0)
    finally:
        obs_spans.stop_trace()
    assert [s.name for s in tracer.spans] == ["execute", "weird"]
    execute = tracer.spans[0]
    assert execute.args == {"epoch": 7}
    assert execute.track == tracer.pid
    assert 0.0 <= execute.start <= execute.end
    # end is clamped to start: duration can never go negative
    assert tracer.spans[1].duration == 0.0


def test_ingest_rebases_worker_spans_onto_coordinator_clock():
    tracer = obs_spans.start_trace()
    obs_spans.stop_trace()
    log = obs_spans.WorkerSpanLog()
    raw = tracer.origin + 0.5
    log.add("execute", obs_spans.CAT_EPOCH, raw, raw + 0.25, epoch=3)
    log.add("wire-decode", obs_spans.CAT_WIRE, tracer.origin - 5.0,
            tracer.origin - 4.0)
    tracer.ingest(log.export(), track=4242, annotate={"bytes_shipped": 99})
    execute, decode = tracer.spans
    assert execute.track == 4242
    assert execute.start == pytest.approx(0.5)
    assert execute.end == pytest.approx(0.75)
    # the coordinator's wire-cost annotation lands on epoch spans only
    assert execute.args == {"epoch": 3, "bytes_shipped": 99}
    assert decode.args == {}
    # a pathological pre-origin stamp clamps to the trace start
    assert decode.start == 0.0 and decode.end == 0.0


# ---------------------------------------------------------------------------
# Export / validation / analysis
# ---------------------------------------------------------------------------


def _crafted_tracer():
    tracer = obs_spans.start_trace()
    obs_spans.stop_trace()
    # coordinator: a segment then two commits
    tracer.add("tp-run", obs_spans.CAT_SEGMENT, 0.0, 0.010)
    tracer.add("commit", obs_spans.CAT_COMMIT, 0.030, 0.031, args={"epoch": 0})
    # two workers executing epochs that overlap in time
    tracer.add("execute", obs_spans.CAT_EPOCH, 0.010, 0.030, track=101,
               args={"epoch": 0, "kind": "record", "bytes_shipped": 10})
    tracer.add("execute", obs_spans.CAT_EPOCH, 0.012, 0.028, track=102,
               args={"epoch": 1, "kind": "record", "bytes_shipped": 20})
    return tracer


def test_chrome_trace_structure(tmp_path):
    tracer = _crafted_tracer()
    path = tmp_path / "trace.json"
    payload = obs_export.write_chrome_trace(tracer, str(path))
    assert obs_export.load_trace(str(path)) == payload
    assert obs_export.validate_trace(payload) == []

    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    names = {e["pid"]: e["args"]["name"] for e in meta
             if e["name"] == "process_name"}
    assert names[tracer.pid] == "coordinator"
    assert names[101] == "worker 101" and names[102] == "worker 102"
    sort_index = {e["pid"]: e["args"]["sort_index"] for e in meta
                  if e["name"] == "process_sort_index"}
    assert sort_index[tracer.pid] == 0  # coordinator track on top

    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(events) == 4
    execute = next(e for e in events if e["pid"] == 101)
    assert execute["ts"] == pytest.approx(10000.0)
    assert execute["dur"] == pytest.approx(20000.0)
    assert execute["args"]["bytes_shipped"] == 10
    assert payload["otherData"]["coordinator_pid"] == tracer.pid


def test_validate_trace_catches_overlap_and_bad_events():
    tracer = obs_spans.start_trace()
    obs_spans.stop_trace()
    tracer.add("a", obs_spans.CAT_EPOCH, 0.0, 0.010, track=7)
    tracer.add("b", obs_spans.CAT_EPOCH, 0.005, 0.015, track=7)  # overlaps a
    payload = obs_export.chrome_trace(tracer)
    problems = obs_export.validate_trace(payload)
    assert any("overlaps" in problem for problem in problems)

    assert obs_export.validate_trace([]) != []
    broken = {"traceEvents": [{"ph": "X", "name": "x"}]}
    assert any("missing" in p for p in obs_export.validate_trace(broken))
    negative = {"traceEvents": [
        {"name": "x", "cat": "epoch", "ph": "X", "ts": -1, "dur": 1,
         "pid": 1, "tid": 0},
    ]}
    assert any("negative ts" in p for p in obs_export.validate_trace(negative))


def test_summarize_trace_overlap_ratio():
    payload = obs_export.chrome_trace(_crafted_tracer())
    summary = obs_export.summarize_trace(payload, top=1)
    assert summary["epochs"] == 2
    assert summary["spans"] == 4
    # busy 20ms + 16ms over a 20ms union: 1.8x overlap
    assert summary["overlap_ratio"] == pytest.approx(1.8)
    assert summary["tracks"][101]["execute_spans"] == 1
    assert len(summary["top_epochs"]) == 1
    assert summary["top_epochs"][0]["epoch"] == 0
    assert summary["straggler"]["epoch"] == 0  # finishes last at 30ms
    rendered = obs_export.render_summary(summary)
    assert "overlap ratio 1.80" in rendered
    assert "slowest epochs:" in rendered
    assert "straggler:" in rendered


# ---------------------------------------------------------------------------
# End-to-end: worker metrics round-trip, pid attribution, CLI
# ---------------------------------------------------------------------------


def test_worker_metrics_match_serial_metrics():
    serial, _, _ = _record(jobs=1)
    parallel, _, _ = _record(jobs=4)
    # Worker counters ride home on unit results, so the execution groups
    # are identical — losing them (the old behaviour) would zero these.
    assert serial.metrics.snapshot()["exec"] == parallel.metrics.snapshot()["exec"]
    assert serial.metrics.get("exec", "epochs") > 0
    assert serial.metrics.get("exec", "epoch_cycles") > 0
    # and the parallel run additionally reports its wire traffic
    assert parallel.metrics.get("wire", "bytes_shipped") > 0
    assert parallel.metrics.get("host", "jobs") == 4


def test_replay_metrics_round_trip():
    result, instance, machine = _record(jobs=1)
    replayer = Replayer(instance.image, machine)
    sequential = replayer.replay_sequential(result.recording)
    assert sequential.verified
    assert sequential.metrics.get("replay", "epochs") == (
        result.recording.epoch_count()
    )
    # jobs=1 and jobs=2 run the same fresh-engine strategy, so worker
    # counters merged from unit results must equal the in-process ones.
    # (Sequential counts continuous-engine deltas — a different strategy
    # with different boundary costs — so only its epoch count is pinned.)
    replayer.materialize_checkpoints(result.recording)
    serial = replayer.replay_parallel(result.recording, jobs=1)
    parallel = replayer.replay_parallel(result.recording, jobs=2)
    assert parallel.verified
    assert parallel.metrics.get("replay", "epochs") == (
        result.recording.epoch_count()
    )
    assert parallel.metrics.get("replay", "epoch_cycles") == (
        serial.metrics.get("replay", "epoch_cycles")
    )


def test_every_unit_attributed_to_a_real_pid():
    result, _, _ = _record(jobs=2)
    pids = result.host["unit_pids"]
    assert len(pids) == result.host["units"]
    assert all(pid > 0 for pid in pids)
    assert all(pid != os.getpid() for pid in pids)  # pool units, not serial


def test_serial_fallback_units_attributed_to_coordinator(monkeypatch):
    # A persistent crash on unit 1 exhausts the retry and lands on the
    # serial fallback, which must stamp the coordinator's own pid — the
    # bug was a 0 placeholder left in place on exactly these paths.
    monkeypatch.setenv("REPRO_FAULT", "crash:unit1")
    result, _, _ = _record(name="fft", jobs=2)
    assert result.host["faults"]["serial_fallbacks"] >= 1
    pids = result.host["unit_pids"]
    assert all(pid > 0 for pid in pids)
    assert os.getpid() in pids


def test_cli_record_trace_and_summarize(tmp_path, monkeypatch):
    trace_path = tmp_path / "out.json"
    out = io.StringIO()
    rc = cli_main(
        ["record", "pbzip", "--scale", "2", "--jobs", "2",
         "--trace", str(trace_path)],
        out=out,
    )
    assert rc == 0
    text = out.getvalue()
    assert f"wrote trace to {trace_path}" in text
    assert "host wire:" in text
    assert obs_spans.current() is None  # CLI stopped its trace

    payload = obs_export.load_trace(str(trace_path))
    assert obs_export.validate_trace(payload) == []

    out = io.StringIO()
    rc = cli_main(["trace", "summarize", str(trace_path), "--top", "3"], out=out)
    assert rc == 0
    rendered = out.getvalue()
    assert "overlap ratio" in rendered
    assert "worker" in rendered  # epochs ran on pool workers, not inline

    # an invalid trace is reported, not summarized
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X", "name": "x"}]}))
    out = io.StringIO()
    assert cli_main(["trace", "summarize", str(bad)], out=out) == 1
    assert "invalid trace" in out.getvalue()


def test_cli_trace_env_fallback(tmp_path, monkeypatch):
    trace_path = tmp_path / "env_trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    out = io.StringIO()
    rc = cli_main(["record", "fft", "--scale", "2"], out=out)
    assert rc == 0
    assert f"wrote trace to {trace_path}" in out.getvalue()
    payload = obs_export.load_trace(str(trace_path))
    assert obs_export.validate_trace(payload) == []
    assert obs_spans.current() is None
