#!/usr/bin/env python3
"""Parallel epoch replay: replaying as fast as you recorded.

A uniprocessor recording replays serially — ~Wx slower than the original
multicore run for CPU-bound programs. Because DoublePlay keeps per-epoch
checkpoints, all epochs can replay concurrently; replay time approaches
the native multicore time. This example measures both strategies across
the scientific kernels.

Run:  python examples/parallel_replay.py
"""

from repro import (
    DoublePlayConfig,
    DoublePlayRecorder,
    MachineConfig,
    Replayer,
    build_workload,
    run_native,
)


def main() -> None:
    workers = 4
    machine = MachineConfig(cores=workers)
    print(f"{'workload':<8} {'native':>8} {'sequential':>11} {'parallel':>9}  speedup")
    for name in ("fft", "lu", "ocean", "radix", "water"):
        instance = build_workload(name, workers=workers, scale=10, seed=3)
        native = run_native(instance.image, instance.setup, machine)
        config = DoublePlayConfig(
            machine=machine, epoch_cycles=max(native.duration // 16, 600)
        )
        result = DoublePlayRecorder(instance.image, instance.setup, config).record()

        replayer = Replayer(instance.image, machine)
        sequential = replayer.replay_sequential(result.recording)
        parallel = replayer.replay_parallel(result.recording, workers=workers)
        assert sequential.verified and parallel.verified
        speedup = sequential.makespan / parallel.makespan
        print(
            f"{name:<8} {native.duration:>8} {sequential.makespan:>11} "
            f"{parallel.makespan:>9}  {speedup:.2f}x"
        )
    print("\nparallel epoch replay verified everywhere and beats sequential —")
    print("the scalability the paper claims for replay, not just recording")


if __name__ == "__main__":
    main()
