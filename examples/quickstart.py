#!/usr/bin/env python3
"""Quickstart: record a program with DoublePlay, then replay it.

Records the pbzip2-like workload (worker threads pulling blocks from a
shared file under a mutex) with uniparallelism, prints what the recording
contains, verifies both replay strategies, and round-trips the recording
through its serialised form.

Run:  python examples/quickstart.py
"""

import json

from repro import (
    DoublePlayConfig,
    DoublePlayRecorder,
    MachineConfig,
    Recording,
    Replayer,
    build_workload,
    run_native,
)


def main() -> None:
    # -- build a workload: program image + simulated-world inputs ---------
    workers = 2
    instance = build_workload("pbzip", workers=workers, scale=12, seed=42)
    machine = MachineConfig(cores=workers)

    # -- how fast is it without recording? --------------------------------
    native = run_native(instance.image, instance.setup, machine)
    print(f"native run: {native.duration} cycles, output {native.output}")

    # -- record with uniparallelism ----------------------------------------
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=native.duration // 18,  # ~18 epochs
        spare_cores=True,
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = result.recording
    print(
        f"recorded: {recording.epoch_count()} epochs, "
        f"{recording.divergences()} divergences, "
        f"logging overhead {result.overhead_vs(native.duration):.1%}"
    )
    print(f"log sizes: {recording.log_breakdown()}")

    # the committed execution's outputs are checkable like any run's
    kernel = result.committed_kernel(instance.setup, instance.image.heap_base)
    assert instance.validate(kernel), "committed execution must validate"
    print("committed execution validates against the workload oracle")

    # -- replay -------------------------------------------------------------
    replayer = Replayer(instance.image, machine)
    sequential = replayer.replay_sequential(recording)
    assert sequential.verified, sequential.details
    print(f"sequential replay verified in {sequential.total_cycles} cycles")

    parallel = replayer.replay_parallel(recording, workers=workers)
    assert parallel.verified, parallel.details
    print(
        f"parallel epoch replay verified; makespan {parallel.makespan} cycles "
        f"({parallel.makespan / native.duration:.2f}x native)"
    )

    # -- recordings serialise to plain JSON-compatible data -----------------
    wire = json.dumps(recording.to_plain())
    restored = Recording.from_plain(json.loads(wire), recording.initial_checkpoint)
    assert replayer.replay_sequential(restored).verified
    print(f"serialised recording: {len(wire)} JSON bytes; replays after restore")


if __name__ == "__main__":
    main()
