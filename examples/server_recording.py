#!/usr/bin/env python3
"""Recording a live server: the Apache-like workload.

Servers are the hard case for record/replay: worker threads block in
``accept``, requests arrive at nondeterministic times, and which worker
serves which request is a scheduling lottery. DoublePlay's syscall log
captures the inputs; the schedule log captures the lottery. This example
records the server, shows the log composition, and proves every response
in the committed execution is correct for its own request.

Run:  python examples/server_recording.py
"""

from repro import (
    DoublePlayConfig,
    DoublePlayRecorder,
    MachineConfig,
    Replayer,
    build_workload,
    run_native,
)


def main() -> None:
    workers = 3
    machine = MachineConfig(cores=workers)
    instance = build_workload("apache", workers=workers, scale=10, seed=7)

    native = run_native(instance.image, instance.setup, machine)
    print(
        f"server handled {instance.expected['requests']} requests natively "
        f"in {native.duration} cycles"
    )

    config = DoublePlayConfig(machine=machine, epoch_cycles=native.duration // 16)
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = result.recording

    print(
        f"recorded with {result.overhead_vs(native.duration):.1%} overhead, "
        f"{recording.epoch_count()} epochs, "
        f"{recording.divergences()} divergences"
    )
    breakdown = recording.log_breakdown()
    print("log composition:")
    print(f"  schedule (timeslices):     {breakdown['schedule_bytes']:>8} bytes")
    print(f"  sync acquisition order:    {breakdown['sync_bytes']:>8} bytes")
    print(f"  syscalls (request data):   {breakdown['syscall_bytes']:>8} bytes")

    # the committed execution answered every request correctly
    kernel = result.committed_kernel(instance.setup, instance.image.heap_base)
    assert instance.validate(kernel)
    conversations = kernel.net.all_conversations()
    sample = next(iter(conversations.values()))
    print(
        f"\ncommitted execution: {len(conversations)} conversations, e.g. "
        f"request {sample[0]} -> response {sample[1]}"
    )

    replayer = Replayer(instance.image, machine)
    assert replayer.replay_sequential(recording).verified
    assert replayer.replay_parallel(recording).verified
    print("both replay strategies verified against the recorded digests")


if __name__ == "__main__":
    main()
