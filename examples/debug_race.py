#!/usr/bin/env python3
"""Debugging a data race with deterministic replay.

The motivating DoublePlay use case: a program misbehaves occasionally
because of a race. Natively, every run can give a different answer —
unreproducible. Record once, and the buggy execution replays identically
forever; single-epoch replay jumps straight to the interval where the
racy outcome manifested, and the happens-before detector names the racing
address.

Run:  python examples/debug_race.py
"""

from repro import (
    DoublePlayConfig,
    DoublePlayRecorder,
    MachineConfig,
    Replayer,
    build_workload,
    run_native,
)
from repro.exec.trace import CollectingObserver
from repro.race import find_races


def main() -> None:
    workers = 4
    machine = MachineConfig(cores=workers)

    # -- natively, the racy counter is timing-dependent --------------------
    # (the simulator is deterministic for a fixed machine, so we model
    # run-to-run timing variation by perturbing the machine — cores and
    # quantum — the way cache and interrupt noise perturbs real hardware)
    outputs = set()
    instance = build_workload("racy-counter", workers=workers, scale=4, seed=0)
    for attempt, (cores, quantum) in enumerate(((4, 600), (3, 500), (2, 350))):
        native = run_native(
            instance.image,
            instance.setup,
            MachineConfig(cores=cores, quantum=quantum),
        )
        outputs.add(native.output[0])
        print(f"native run #{attempt}: counter = {native.output[0]} "
              f"(expected {instance.expected['increments']} if race-free)")
    print(f"distinct outcomes across timings: {sorted(outputs)}")

    # -- the detector confirms there is a race -----------------------------
    observer = CollectingObserver()
    run_native(instance.image, instance.setup, machine, observers=[observer])
    races = find_races(observer.events)
    print(f"\nhappens-before detector: {len(races)} racing address(es)")
    for race in races:
        print(f"  addr {race.addr}: {race.kind} between threads "
              f"{race.first_tid} and {race.second_tid}")

    # -- record the buggy execution ----------------------------------------
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(machine=machine, epoch_cycles=native.duration // 12)
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = result.recording
    kernel = result.committed_kernel(instance.setup, instance.image.heap_base)
    buggy_value = kernel.output[0]
    print(
        f"\nrecorded the buggy run: counter = {buggy_value}; "
        f"{recording.divergences()} epoch divergences were forward-recovered"
    )

    # -- replay is deterministic: same answer, every time --------------------
    replayer = Replayer(instance.image, machine)
    for attempt in range(3):
        replay = replayer.replay_sequential(recording)
        assert replay.verified, replay.details
    print("replayed 3x: every replay reproduces the committed execution exactly")

    # -- jump straight into one epoch (no need to replay from the start) ----
    target = recording.epochs[len(recording.epochs) // 2]
    single = replayer.replay_epoch(recording, target.index)
    assert single.verified
    print(
        f"replayed epoch {target.index} alone from its checkpoint "
        f"({single.total_cycles} cycles) — the debugger's time-travel step"
    )

    # -- and ask each rolled-back epoch WHY it diverged ----------------------
    from repro.analysis import diagnose_recording

    diagnoses = diagnose_recording(instance.image, machine, recording)
    racy_epochs = [d for d in diagnoses if d.racy]
    counter_addr = instance.image.address_of("counter")
    print(
        f"\ndiagnosis: {len(diagnoses)} rolled-back epochs replayed under "
        f"the race detector; {len(racy_epochs)} show a manifested race"
    )
    if racy_epochs:
        sample = racy_epochs[0]
        print(
            f"  epoch {sample.epoch_index}: racing address(es) "
            f"{sample.racy_addresses} (the counter lives at {counter_addr})"
        )


if __name__ == "__main__":
    main()
