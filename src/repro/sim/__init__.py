"""Deterministic discrete-event simulation primitives.

Everything in the repro library measures *simulated* cycles, never wall
clock. This subpackage provides the shared building blocks: a simulated
clock, an ordered event queue with deterministic tie-breaking, a seeded
random-number source with independent named substreams, and a statistics
registry used by engines and the analysis layer.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry

__all__ = ["SimClock", "Event", "EventQueue", "DeterministicRng", "StatsRegistry"]
