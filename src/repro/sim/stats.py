"""Counters and aggregates collected during simulation.

Execution code increments named counters (epochs run, syscalls
injected, threads spawned...) through a :class:`StatsRegistry`. The
observability layer (:mod:`repro.obs.metrics`) keeps one registry per
*process* — coordinator and every worker — and merges worker registries
back through unit results, so ``jobs>1`` runs lose nothing; tests read
registries to assert behaviour without reaching into engine internals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class StatsRegistry:
    """A mapping of counter name → integer value with merge support."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (negative amounts are allowed)."""
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def set(self, name: str, value: int) -> None:
        """Overwrite ``name`` with ``value``."""
        self._counters[name] = value

    def merge(self, other: "StatsRegistry") -> None:
        """Add every counter from ``other`` into this registry."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters (for reports and assertions)."""
        return dict(self._counters)

    def clear(self) -> None:
        """Drop every counter (worker task boundaries drain-and-clear)."""
        self._counters.clear()

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def update_from(self, mapping: Mapping[str, int]) -> None:
        for name, value in mapping.items():
            self._counters[name] += value

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatsRegistry({inner})"
