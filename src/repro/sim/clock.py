"""Simulated clock.

Simulated time is a non-negative integer number of *cycles*. The clock is
deliberately dumb — engines advance it explicitly — but it centralises the
monotonicity check so a scheduling bug that moves time backwards fails fast
instead of silently corrupting a recording.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically non-decreasing cycle counter."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0):
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    def advance(self, cycles: int) -> int:
        """Move time forward by ``cycles`` and return the new time."""
        if cycles < 0:
            raise SimulationError(f"cannot advance clock by negative cycles {cycles}")
        self._now += cycles
        return self._now

    def advance_to(self, when: int) -> int:
        """Move time forward to ``when`` (a no-op if already past it is an error)."""
        if when < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
