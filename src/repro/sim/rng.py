"""Seeded randomness with independent named substreams.

A single integer seed must determine *every* random choice in a simulation,
and adding a new consumer of randomness must not perturb existing ones.
``DeterministicRng.fork(name)`` derives an independent stream from the
parent seed and the name, so e.g. the network arrival process and the
guest RAND syscall never interleave draws.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A ``random.Random`` wrapper whose streams are stable by name."""

    def __init__(self, seed: int, path: str = ""):
        self.seed = seed
        self.path = path
        self._random = random.Random(self._derive(seed, path))

    @staticmethod
    def _derive(seed: int, path: str) -> int:
        digest = hashlib.sha256(f"{seed}:{path}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "DeterministicRng":
        """Derive an independent substream; same (seed, path, name) → same stream."""
        child_path = f"{self.path}/{name}" if self.path else name
        return DeterministicRng(self.seed, child_path)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def sample(self, population, k: int):
        return self._random.sample(population, k)

    def getstate(self):
        """Plain-data stream state, for kernel snapshots."""
        return self._random.getstate()

    def setstate(self, state) -> None:
        self._random.setstate(state)

    def __repr__(self) -> str:
        return f"DeterministicRng(seed={self.seed}, path={self.path!r})"
