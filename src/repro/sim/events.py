"""Ordered event queue with deterministic tie-breaking.

The simulated kernel uses the queue for timed wakeups (I/O completion,
network arrivals, sleeps). Two events scheduled for the same cycle pop in
the order they were pushed, so a simulation's outcome is a pure function of
its inputs — a property every record/replay test in this repository relies
on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled occurrence at a simulated time.

    ``kind`` is a short string tag (e.g. ``"io-complete"``); ``payload``
    carries whatever the producer needs back when the event fires.
    """

    time: int
    seq: int
    kind: str
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event and return it."""
        event = Event(time=time, seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Optional[Event]:
        """Return the earliest pending event without removing it."""
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        return heapq.heappop(self._heap)

    def pop_ready(self, now: int) -> List[Event]:
        """Remove and return every event scheduled at or before ``now``."""
        ready: List[Event] = []
        while self._heap and self._heap[0].time <= now:
            ready.append(heapq.heappop(self._heap))
        return ready

    def next_time(self) -> Optional[int]:
        """Time of the earliest pending event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None
