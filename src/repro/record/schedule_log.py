"""The schedule log: timeslice order of a uniprocessor execution.

Because an epoch runs on a single processor, reproducing it needs only the
order and length of its timeslices — this is the log that replaces
shared-memory access logging in DoublePlay. ``ops`` counts *retired*
instructions; ``ended_blocked`` marks a slice that ended with the thread
issuing an operation that blocked (the issue itself does not retire, but
replay must perform it so wait queues evolve identically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Timeslice:
    """One scheduling quantum of the epoch-parallel execution."""

    tid: int
    ops: int
    ended_blocked: bool = False


class ScheduleLog:
    """Ordered timeslices of one epoch."""

    def __init__(self, slices: Tuple[Timeslice, ...] = ()):
        self._slices: List[Timeslice] = list(slices)

    def append(self, tid: int, ops: int, ended_blocked: bool) -> None:
        # Merge with the previous slice when the same thread continues
        # (keeps logs compact, exactly like run-length encoding).
        if (
            self._slices
            and self._slices[-1].tid == tid
            and not self._slices[-1].ended_blocked
        ):
            previous = self._slices[-1]
            self._slices[-1] = Timeslice(
                tid=tid, ops=previous.ops + ops, ended_blocked=ended_blocked
            )
            return
        self._slices.append(Timeslice(tid=tid, ops=ops, ended_blocked=ended_blocked))

    def __iter__(self) -> Iterator[Timeslice]:
        return iter(self._slices)

    def __len__(self) -> int:
        return len(self._slices)

    @property
    def slices(self) -> Tuple[Timeslice, ...]:
        return tuple(self._slices)

    def total_ops(self) -> int:
        return sum(s.ops for s in self._slices)

    def size_words(self) -> int:
        """Approximate log footprint: (tid, ops, flag) per slice."""
        return 3 * len(self._slices)

    def to_plain(self) -> List[List]:
        return [[s.tid, s.ops, s.ended_blocked] for s in self._slices]

    @classmethod
    def from_plain(cls, plain) -> "ScheduleLog":
        return cls(tuple(Timeslice(tid, ops, bool(flag)) for tid, ops, flag in plain))

    def __repr__(self) -> str:
        return f"ScheduleLog(slices={len(self._slices)}, ops={self.total_ops()})"
