"""Append-only compressed segment files with group commit.

A *segment* is the physical storage unit of the durable event log
(:mod:`repro.record.shards`): an append-only file of self-describing,
checksummed **blocks**. Writers never seek backwards and readers never
need an index to scan — the format is recoverable by a forward pass.

Frames and blocks
-----------------
Callers append *frames* (opaque byte strings — one log-shard record
batch each). Frames accumulate in a **group-commit buffer**; a
:meth:`SegmentWriter.flush` concatenates everything buffered, runs it
through the segment's codec, and appends ONE block::

    block := header | body
    header := magic "DPBK" | codec u8 | raw_len u32 | stored_len u32 | crc32 u32
    body   := codec(frames), where frames := (frame_len u32 | frame_bytes)*

The crc32 covers the *stored* body bytes, so corruption is detected
before decompression. Group commit is what makes per-epoch durability
cheap: many small epoch commits share one compression call and one
fsync, exactly like database group commit amortises the log force.

Crash-truncation rule (torn tails)
----------------------------------
A crash can leave a partial block at the end of a segment. On read, a
block whose header is incomplete, whose body is shorter than
``stored_len``, or whose checksum fails **at the tail** is *truncated* —
the segment ends at the last verifiable block. A checksum failure
*before* the tail is corruption, not a torn write, and raises. The
manifest (:mod:`repro.record.shards`) is only updated after a flush
completes, so a torn tail never strands a referenced block.

Codecs
------
``raw`` (no compression), ``zlib1`` and ``zlib6`` (zlib levels 1/6).
The default is ``zlib1`` — the measured A/B (EXPERIMENTS.md) shows it
within a few percent of zlib6's ratio on both page-heavy and sync-heavy
shards at a fraction of the CPU — overridable with ``REPRO_LOG_COMPRESS``.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import BinaryIO, Iterator, List, Optional, Tuple

#: file header: identifies a segment file and its format generation
SEGMENT_MAGIC = b"DPSEG01\n"

_BLOCK_MAGIC = b"DPBK"
_BLOCK_HEADER = struct.Struct("<4sBIII")
_FRAME_LEN = struct.Struct("<I")

#: codec byte values (stored in every block header)
CODEC_RAW = 0
CODEC_ZLIB1 = 1
CODEC_ZLIB6 = 6

CODECS = {"raw": CODEC_RAW, "zlib1": CODEC_ZLIB1, "zlib6": CODEC_ZLIB6}
CODEC_NAMES = {value: name for name, value in CODECS.items()}

#: the measured default (see EXPERIMENTS.md, durable-log codec A/B)
DEFAULT_CODEC = "zlib1"


def fsync_dir(path: str) -> bool:
    """fsync a directory so renames/creates/unlinks inside it are durable.

    ``os.replace`` makes a manifest swap atomic but not durable: until
    the *directory* is synced, power loss can roll the rename back (or
    resurrect an unlinked segment). Returns False where directories
    cannot be fsynced (some platforms/filesystems) — durability then
    degrades to the filesystem's own ordering, which is the best
    available.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def resolve_codec(name: Optional[str] = None) -> str:
    """Codec to use: explicit ``name``, else ``REPRO_LOG_COMPRESS``, else
    the measured default. Unknown names raise — a typo silently falling
    back to raw would be a 3-4x on-disk regression nobody notices."""
    chosen = name or os.environ.get("REPRO_LOG_COMPRESS", "") or DEFAULT_CODEC
    if chosen not in CODECS:
        raise ValueError(
            f"unknown log codec {chosen!r} (choose from {sorted(CODECS)})"
        )
    return chosen


def _encode_body(frames: List[bytes], codec: int) -> bytes:
    body = b"".join(
        _FRAME_LEN.pack(len(frame)) + frame for frame in frames
    )
    if codec == CODEC_RAW:
        return body
    return zlib.compress(body, codec)


def _decode_body(stored: bytes, codec: int) -> List[bytes]:
    if codec == CODEC_RAW:
        body = stored
    else:
        body = zlib.decompress(stored)
    frames: List[bytes] = []
    offset = 0
    end = len(body)
    while offset < end:
        (length,) = _FRAME_LEN.unpack_from(body, offset)
        offset += _FRAME_LEN.size
        if offset + length > end:
            raise SegmentCorruption("frame extends past its block body")
        frames.append(body[offset : offset + length])
        offset += length
    return frames


class SegmentCorruption(Exception):
    """A block failed verification *inside* a segment (not a torn tail)."""


class BlockExtent(tuple):
    """``(offset, stored_len, raw_len)`` of one flushed block.

    A plain tuple subclass so extents JSON-serialise as lists in the
    manifest while staying self-documenting in code.
    """

    __slots__ = ()

    def __new__(cls, offset: int, stored_len: int, raw_len: int):
        return super().__new__(cls, (offset, stored_len, raw_len))

    @property
    def offset(self) -> int:
        return self[0]

    @property
    def stored_len(self) -> int:
        return self[1]

    @property
    def raw_len(self) -> int:
        return self[2]


class SegmentWriter:
    """Appends frames to one segment file through a group-commit buffer."""

    def __init__(self, path: str, codec: Optional[str] = None):
        self.path = path
        self.codec_name = resolve_codec(codec)
        self._codec = CODECS[self.codec_name]
        self._buffer: List[bytes] = []
        self._buffered = 0
        self._handle: BinaryIO = open(path, "wb")
        self._handle.write(SEGMENT_MAGIC)
        self._offset = len(SEGMENT_MAGIC)
        #: extents of every flushed block, in file order
        self.blocks: List[BlockExtent] = []
        #: high-water mark of the group-commit buffer (bytes)
        self.peak_buffered = 0
        #: raw frame bytes accepted (pre-compression)
        self.raw_bytes = 0
        #: bytes actually written to the file (headers + stored bodies)
        self.stored_bytes = self._offset
        self.flushes = 0
        self.fsyncs = 0
        self._dir_synced = False

    def append(self, frame: bytes) -> None:
        """Buffer one frame for the next group commit."""
        self._buffer.append(frame)
        self._buffered += len(frame) + _FRAME_LEN.size
        self.raw_bytes += len(frame)
        if self._buffered > self.peak_buffered:
            self.peak_buffered = self._buffered

    @property
    def buffered_bytes(self) -> int:
        return self._buffered

    def flush(self, fsync: bool = True) -> Optional[int]:
        """Group-commit the buffer as one block; returns its index.

        Returns ``None`` when nothing is buffered (an empty flush is a
        no-op, not an empty block). ``fsync=True`` forces the block to
        stable storage — the durability point of every epoch whose
        frames it carries.
        """
        if not self._buffer:
            return None
        raw_len = self._buffered
        stored = _encode_body(self._buffer, self._codec)
        header = _BLOCK_HEADER.pack(
            _BLOCK_MAGIC, self._codec, raw_len, len(stored),
            zlib.crc32(stored) & 0xFFFFFFFF,
        )
        self._handle.write(header)
        self._handle.write(stored)
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
            if not self._dir_synced:
                # The first durable block must also make the segment
                # file's directory entry durable, or power loss can
                # drop the whole file out from under a manifest that
                # references its blocks.
                if fsync_dir(os.path.dirname(self.path) or "."):
                    self.fsyncs += 1
                self._dir_synced = True
        extent = BlockExtent(self._offset, len(stored), raw_len)
        self.blocks.append(extent)
        self._offset += _BLOCK_HEADER.size + len(stored)
        self.stored_bytes = self._offset
        self._buffer = []
        self._buffered = 0
        self.flushes += 1
        return len(self.blocks) - 1

    def close(self, fsync: bool = True) -> None:
        self.flush(fsync=fsync)
        self._handle.close()


class SegmentReader:
    """Reads verified blocks out of one segment file."""

    def __init__(self, path: str):
        self.path = path
        with open(path, "rb") as handle:
            self._data = handle.read()
        if self._data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            raise SegmentCorruption(f"{path}: not a segment file")

    def read_block(self, offset: int) -> List[bytes]:
        """Decode the verified block at ``offset`` into its frames."""
        frames = self._try_block(offset)
        if frames is None:
            raise SegmentCorruption(
                f"{self.path}: no verifiable block at offset {offset}"
            )
        return frames

    def _try_block(self, offset: int) -> Optional[List[bytes]]:
        """Frames of the block at ``offset``, or ``None`` if torn."""
        data = self._data
        if offset + _BLOCK_HEADER.size > len(data):
            return None
        magic, codec, raw_len, stored_len, crc = _BLOCK_HEADER.unpack_from(
            data, offset
        )
        if magic != _BLOCK_MAGIC:
            return None
        body_start = offset + _BLOCK_HEADER.size
        stored = data[body_start : body_start + stored_len]
        if len(stored) < stored_len:
            return None
        if zlib.crc32(stored) & 0xFFFFFFFF != crc:
            return None
        frames = _decode_body(stored, codec)
        if sum(len(f) + _FRAME_LEN.size for f in frames) != raw_len:
            return None
        return frames

    def iter_blocks(self) -> Iterator[Tuple[int, List[bytes]]]:
        """Yield ``(offset, frames)`` forward; stop at the torn tail.

        An unverifiable block at the *end* of the file is a torn write
        and silently truncates the scan (the crash rule). Anything
        unverifiable with more data after it is corruption and raises.
        """
        offset = len(SEGMENT_MAGIC)
        data = self._data
        while offset < len(data):
            frames = self._try_block(offset)
            if frames is None:
                # Torn tail iff nothing after this point verifies.
                if self._tail_is_torn(offset):
                    return
                raise SegmentCorruption(
                    f"{self.path}: corrupt block at offset {offset}"
                )
            yield offset, frames
            stored_len = _BLOCK_HEADER.unpack_from(data, offset)[3]
            offset += _BLOCK_HEADER.size + stored_len
        return

    def _tail_is_torn(self, offset: int) -> bool:
        """True when no verifiable block header exists past ``offset``."""
        data = self._data
        probe = data.find(_BLOCK_MAGIC, offset + 1)
        while probe != -1:
            if self._try_block(probe) is not None:
                return False
            probe = data.find(_BLOCK_MAGIC, probe + 1)
        return True
