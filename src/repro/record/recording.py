"""The recording: everything needed to deterministically replay a run.

A :class:`Recording` is the committed output of DoublePlay's recorder:

* per-epoch :class:`EpochRecord` — the uniprocessor schedule log, the
  sync-order hints that were in force, the end-state digest the replay
  must reach, and a reference to the start checkpoint;
* the global syscall log (per-thread sequence numbers index it);
* metadata and recording statistics.

Checkpoints are in-memory accelerators: parallel replay starts every epoch
from its checkpoint concurrently, and fidelity checks compare digests
against them. Serialisation (``to_plain``/``from_plain``) captures the
*logs* — the durable artefact whose size the paper's log-size table
measures; a deserialised recording replays sequentially from program start
and can regenerate the checkpoints as it goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checkpoint.checkpoint import Checkpoint
from repro.oskernel.syscalls import SyscallKind, SyscallRecord
from repro.record.schedule_log import ScheduleLog
from repro.record.sync_log import SyncOrderLog

#: bytes per guest word when reporting log sizes
WORD_BYTES = 8


@dataclass
class EpochRecord:
    """The committed log of one epoch."""

    index: int
    #: None on deserialised recordings until materialize_checkpoints()
    start_checkpoint: Optional[Checkpoint]
    #: per-thread retired-op counts at the epoch's end boundary
    targets: Dict[int, int]
    schedule: ScheduleLog
    sync_log: SyncOrderLog
    #: guest-state digest the epoch must end in (memory + contexts)
    end_digest: int
    #: cycles the committed uniprocessor execution of this epoch took
    duration: int
    #: True when this epoch was committed by forward recovery (a live
    #: uniprocessor re-execution) rather than a verified epoch-parallel run
    recovered: bool = False
    #: True when the logs were streamed to the durable sharded log and
    #: dropped from memory (``repro.record.shards``); size accounting
    #: survives, the log contents live on disk only
    spilled: bool = False

    def spill(self) -> None:
        """Drop the in-memory logs after a durable write.

        Flight-recorder mode: once the epoch's shards are on disk, the
        resident copy serves no replay (replay loads from the manifest),
        so only the byte accounting is kept. The checkpoint reference is
        dropped too — the durable manifest can re-materialise it.
        """
        if self.spilled:
            return
        self._schedule_words = self.schedule.size_words()
        self._sync_words = self.sync_log.size_words()
        self.schedule = None
        self.sync_log = None
        self.start_checkpoint = None
        self.spilled = True

    def schedule_words(self) -> int:
        return self._schedule_words if self.spilled else self.schedule.size_words()

    def sync_words(self) -> int:
        return self._sync_words if self.spilled else self.sync_log.size_words()

    def size_words(self) -> int:
        return self.schedule_words() + self.sync_words() + 8


@dataclass
class Recording:
    """A complete, replayable recording of one program execution."""

    program_name: str
    worker_threads: int
    initial_checkpoint: Checkpoint
    epochs: List[EpochRecord] = field(default_factory=list)
    syscall_records: List[SyscallRecord] = field(default_factory=list)
    #: signal deliveries: (tid, retired-at-delivery, handler pc)
    signal_records: List[tuple] = field(default_factory=list)
    #: final guest-state digest of the whole recorded execution
    final_digest: int = 0
    #: recorder statistics (divergences, rollbacks, makespan...)
    stats: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def epoch_count(self) -> int:
        return len(self.epochs)

    def epoch_range(self) -> Tuple[int, int]:
        """``(first, last)`` absolute epoch indices held by this recording.

        0-based run indices, inclusive. Differs from ``(0,
        epoch_count()-1)`` for suffix loads (``--from-epoch``) and
        flight-recorder tails, whose first surviving epoch is the window
        base. ``(0, -1)`` when empty.
        """
        if not self.epochs:
            return (0, -1)
        return (self.epochs[0].index, self.epochs[-1].index)

    def divergences(self) -> int:
        return self.stats.get("divergences", 0)

    def schedule_log_bytes(self) -> int:
        return WORD_BYTES * sum(e.schedule_words() for e in self.epochs)

    def sync_log_bytes(self) -> int:
        return WORD_BYTES * sum(e.sync_words() for e in self.epochs)

    def syscall_log_bytes(self) -> int:
        return WORD_BYTES * sum(r.size_words() for r in self.syscall_records)

    def signal_log_bytes(self) -> int:
        return WORD_BYTES * 3 * len(self.signal_records)

    def total_log_bytes(self) -> int:
        return (
            self.schedule_log_bytes()
            + self.sync_log_bytes()
            + self.syscall_log_bytes()
            + self.signal_log_bytes()
        )

    def log_breakdown(self) -> Dict[str, int]:
        return {
            "schedule_bytes": self.schedule_log_bytes(),
            "sync_bytes": self.sync_log_bytes(),
            "syscall_bytes": self.syscall_log_bytes(),
            "signal_bytes": self.signal_log_bytes(),
            "total_bytes": self.total_log_bytes(),
        }

    def syscalls_for_epochs(self) -> List[SyscallRecord]:
        """The full injectable syscall log (all epochs)."""
        return list(self.syscall_records)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def resident_log_bytes(self) -> int:
        """Bytes of log data actually held in memory right now.

        Spilled epochs count zero — their logs live in the durable
        sharded log only. This is the quantity flight-recorder mode
        bounds (pipeline depth, not run length).
        """
        return WORD_BYTES * (
            sum(e.size_words() for e in self.epochs if not e.spilled)
            + sum(r.size_words() for r in self.syscall_records)
            + 3 * len(self.signal_records)
        )

    def to_plain(self) -> Dict:
        """JSON-compatible form of the durable logs (no checkpoints)."""
        if any(e.spilled for e in self.epochs):
            raise ValueError(
                "recording was spilled to a durable log; load it back with "
                "repro.record.shards.ShardedLogReader instead of to_plain()"
            )
        return {
            "program": self.program_name,
            "worker_threads": self.worker_threads,
            "final_digest": self.final_digest,
            "stats": dict(self.stats),
            "epochs": [
                {
                    "index": e.index,
                    "targets": {str(tid): ops for tid, ops in e.targets.items()},
                    "schedule": e.schedule.to_plain(),
                    "sync": e.sync_log.to_plain(),
                    "end_digest": e.end_digest,
                    "duration": e.duration,
                    "recovered": e.recovered,
                }
                for e in self.epochs
            ],
            "syscalls": [
                {
                    "tid": r.tid,
                    "seq": r.seq,
                    "kind": r.kind.value,
                    "retval": r.retval,
                    "writes": [[base, list(words)] for base, words in r.writes],
                    "transferred": r.transferred,
                }
                for r in self.syscall_records
            ],
            "signals": [list(record) for record in self.signal_records],
        }

    @classmethod
    def from_plain(cls, plain: Dict, initial_checkpoint: Checkpoint) -> "Recording":
        """Rebuild a recording from its serialised logs.

        The caller supplies the initial checkpoint (reconstructable from
        the program image); per-epoch start checkpoints are not restored —
        sequential replay regenerates state epoch by epoch.
        """
        kinds = {kind.value: kind for kind in SyscallKind}
        recording = cls(
            program_name=plain["program"],
            worker_threads=plain["worker_threads"],
            initial_checkpoint=initial_checkpoint,
            final_digest=plain["final_digest"],
            stats=dict(plain["stats"]),
        )
        previous: Optional[Checkpoint] = initial_checkpoint
        for entry in plain["epochs"]:
            recording.epochs.append(
                EpochRecord(
                    index=entry["index"],
                    # Only epoch 0's start state is reconstructable up
                    # front; materialize_checkpoints() rebuilds the rest.
                    start_checkpoint=previous,
                    targets={int(t): ops for t, ops in entry["targets"].items()},
                    schedule=ScheduleLog.from_plain(entry["schedule"]),
                    sync_log=SyncOrderLog.from_plain(entry["sync"]),
                    end_digest=entry["end_digest"],
                    duration=entry["duration"],
                    recovered=entry["recovered"],
                )
            )
            previous = None  # only epoch 0 has a materialised checkpoint
        recording.syscall_records = [
            SyscallRecord(
                tid=r["tid"],
                seq=r["seq"],
                kind=kinds[r["kind"]],
                retval=r["retval"],
                writes=tuple(
                    (base, tuple(words)) for base, words in r["writes"]
                ),
                transferred=r["transferred"],
            )
            for r in plain["syscalls"]
        ]
        recording.signal_records = [
            tuple(record) for record in plain.get("signals", [])
        ]
        return recording


def prune_syscall_records(
    records: List[SyscallRecord], counts: Dict[int, int]
) -> List[SyscallRecord]:
    """Keep only records consistent with per-thread ``syscall_count``s.

    Forward recovery discards the abandoned thread-parallel execution past
    a checkpoint; ``counts`` are the checkpoint's per-thread syscall
    counts. Records from threads absent from ``counts`` (spawned later in
    the abandoned run) are dropped entirely.
    """
    return [
        record
        for record in records
        if record.seq < counts.get(record.tid, 0)
    ]


def prune_signal_records(records, retired_counts: Dict[int, int]):
    """Keep signal deliveries within the committed per-thread prefixes.

    A delivery at retired count R belongs to the committed prefix iff
    R < the checkpoint's retired count (delivery plus the handler's first
    op is atomic, so a checkpoint at exactly R precedes the delivery).
    """
    return [
        record
        for record in records
        if record[1] < retired_counts.get(record[0], 0)
    ]
