"""Synchronisation-order hints.

During the thread-parallel execution DoublePlay samples the order in which
threads acquire each synchronisation object. The epoch-parallel execution
replays acquisitions in that order (via the
:class:`~repro.oskernel.sync.SyncManager` acquisition oracle), which makes
race-free programs converge deterministically and greatly reduces
divergence for racy ones. The hints are *per epoch*: an oracle is built
from one epoch's slice of the acquisition stream.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

#: (kind, object address, acquiring tid)
AcquisitionEvent = Tuple[str, int, int]


class SyncOrderLog:
    """One epoch's acquisition events, in thread-parallel global order."""

    def __init__(self, events: Tuple[AcquisitionEvent, ...] = ()):
        self.events: Tuple[AcquisitionEvent, ...] = tuple(events)

    def __len__(self) -> int:
        return len(self.events)

    def size_words(self) -> int:
        """Approximate footprint: (addr, tid) per event."""
        return 2 * len(self.events)

    def per_object(self) -> Dict[int, List[int]]:
        """addr → acquiring tids in order."""
        sequences: Dict[int, List[int]] = defaultdict(list)
        for _, addr, tid in self.events:
            sequences[addr].append(tid)
        return dict(sequences)

    def to_plain(self) -> List[Tuple[str, int, int]]:
        return [list(event) for event in self.events]

    @classmethod
    def from_plain(cls, plain) -> "SyncOrderLog":
        return cls(tuple((kind, addr, tid) for kind, addr, tid in plain))

    def __repr__(self) -> str:
        return f"SyncOrderLog(events={len(self.events)})"


class SyncOrderOracle:
    """Grant-order oracle over a recorded acquisition sequence.

    Implements the duck-typed interface the sync manager consults:
    ``may_acquire`` (is it this thread's turn?), ``next_turn`` (whose turn
    is it?), ``consume`` (an acquisition happened). An *exhausted* order
    for an object means the recorded execution acquired it no further:
    the oracle then defers every attempt. Epoch executors receive the
    thread-parallel order from their epoch's start to the segment end, so
    every in-epoch acquisition has its event; attempts beyond that are
    boundary-straddling issues that must block anyway, or divergences that
    the resulting stall surfaces.
    """

    def __init__(self, log: SyncOrderLog):
        self._queues: Dict[int, List[int]] = defaultdict(list)
        for _, addr, tid in log.events:
            self._queues[addr].append(tid)
        self._cursors: Dict[int, int] = defaultdict(int)
        #: acquisitions that happened out of hinted order (diagnostics)
        self.violations = 0
        #: objects consulted past their recorded order (the queue was
        #: missing or exhausted). Every behavioural difference between a
        #: run on truncated hints and one on the full suffix *begins*
        #: with such a consult, so this set is what makes speculative
        #: epoch dispatch validatable (see ``DoublePlayRecorder``).
        self.starved: Set[int] = set()

    def next_turn(self, addr: int) -> Optional[int]:
        queue = self._queues.get(addr)
        if queue is None:
            self.starved.add(addr)
            return None
        cursor = self._cursors[addr]
        if cursor >= len(queue):
            self.starved.add(addr)
            return None
        return queue[cursor]

    def may_acquire(self, addr: int, tid: int) -> bool:
        return self.next_turn(addr) == tid

    def consume(self, addr: int, tid: int) -> None:
        turn = self.next_turn(addr)
        if turn is None:
            return
        if turn == tid:
            self._cursors[addr] += 1
        else:
            # Should not happen while the manager honours the oracle, but
            # sem_post fallbacks may grant past the hints; count it.
            self.violations += 1

    def remaining(self) -> int:
        return sum(
            len(queue) - self._cursors[addr]
            for addr, queue in self._queues.items()
        )
