"""Recording logs.

DoublePlay's core claim is that uniparallelism shrinks the log: instead of
the order of every shared-memory access, a recording holds

* a **schedule log** per epoch — the timeslice order of the uniprocessor
  epoch-parallel execution (tiny),
* a **syscall log** — results of every system call the thread-parallel
  execution performed (dominated by input data),
* a **sync-order log** per epoch — the per-object acquisition order hints
  sampled from the thread-parallel execution.

:class:`~repro.record.recording.Recording` bundles these with per-epoch
start checkpoints and final-state digests; ``serialize``/``deserialize``
round-trip it through plain JSON-compatible data, and the size accounting
feeds the paper's log-size table.
"""

from repro.record.schedule_log import Timeslice, ScheduleLog
from repro.record.sync_log import SyncOrderLog, SyncOrderOracle
from repro.record.recording import EpochRecord, Recording

__all__ = [
    "Timeslice",
    "ScheduleLog",
    "SyncOrderLog",
    "SyncOrderOracle",
    "EpochRecord",
    "Recording",
]
