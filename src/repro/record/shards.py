"""The sharded durable event log: per-thread append streams on disk.

This is the durable backend behind ``record --log-dir`` and
``replay --from-epoch``. The in-memory :class:`~repro.record.recording.
Recording` funnels every logged event into one stream whose resident
size is O(run); here the same events become **per-thread, per-epoch log
shards** appended to compressed segment files
(:mod:`repro.record.segment`) as epochs commit, with a **manifest**
tying every epoch's shard extents to its start checkpoint's
content-addressed blob digests. A recording on disk is::

    <dir>/manifest.json        epoch directory: shard extents, checkpoint
                               digests, stats — the commit point
    <dir>/segments/seg-*.dpseg append-only blocks of shard frames
    <dir>/blobs/pack.dppack    content-addressed blob pack: checkpoint
                               pages (PR 4's wire digests) + skeletons,
                               one append-only file

Ordering: LSN vectors, not a global stream
------------------------------------------
Shards are per-thread, so no shard encodes the cross-thread order by
position. Instead every shard record carries its **epoch-local sequence
number** (its rank in the epoch's committed order), and per-thread
syscall/signal records additionally keep their ``(tid, seq)`` /
``(tid, retired)`` keys — the per-record vectors that make the merge
deterministic: a reader k-way-merges a stream's per-thread shards by
rank and provably reconstructs the exact committed order (within an
epoch ranks are a permutation of ``0..n-1``; across epochs the
per-thread key floors at checkpoints make concatenation order-exact,
see ``ThreadLogIndex.positions_between``). This is Taurus's design
point: parallel log streams stay independent at append time and the
ordering metadata rides in the records.

Group commit and crash rule
---------------------------
Epoch commits append frames to the segment's group-commit buffer;
the buffer is forced (one compressed block + one fsync) when it
exceeds the group-commit threshold and at close. The manifest is
rewritten (atomic tmp + rename) only *after* a flush completes, so a
crash mid-write leaves at most a torn segment tail that no manifest
entry references — recovery is "read the manifest, ignore the tail"
(the segment layer's truncation rule verifies this).

Shard extents reuse the epoch index
-----------------------------------
Which records belong to epoch *e* for thread *t* is exactly the
``[start_floor, end_floor)`` per-thread key window between consecutive
checkpoints — the same query :class:`~repro.host.wire.ThreadLogIndex`
answers for wire slicing, so shard-extent lookup calls
``positions_between`` on that index rather than re-implementing the
bisect.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.checkpoint import Checkpoint
from repro.errors import ReplayError
from repro.host.wire import ThreadLogIndex
from repro.memory.address_space import MemorySnapshot
from repro.memory.blob import blob_digest, decode_blob, encode_object
from repro.memory.page import Page
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.oskernel.syscalls import SyscallKind, SyscallRecord
from repro.record.recording import EpochRecord, Recording
from repro.record.schedule_log import ScheduleLog, Timeslice
from repro.record.segment import (
    SegmentReader,
    SegmentWriter,
    fsync_dir,
    resolve_codec,
)
from repro.record.sync_log import SyncOrderLog

#: manifest format generation (bump on incompatible layout changes)
MANIFEST_FORMAT = 1
MANIFEST_NAME = "manifest.json"

#: shard stream codes (one byte in every frame header)
STREAM_SCHEDULE = 1
STREAM_SYNC = 2
STREAM_SYSCALL = 3
STREAM_SIGNAL = 4
STREAM_META = 5

_FRAME_HEADER = struct.Struct("<BII")  # stream, tid, epoch index
_SCHED_REC = struct.Struct("<IQB")     # rank, ops, flags
_SYNC_REC = struct.Struct("<IQB")      # rank, object addr, kind code

#: repeated-record packers, keyed by record count ("<" means no padding,
#: so one pack of "<IQBIQB…" is byte-identical to concatenated "<IQB"
#: packs — ``iter_unpack`` on the read side never notices)
_REPEAT_PACKERS: Dict[int, struct.Struct] = {}


def _repeat_packer(count: int) -> struct.Struct:
    packer = _REPEAT_PACKERS.get(count)
    if packer is None:
        packer = _REPEAT_PACKERS[count] = struct.Struct("<" + "IQB" * count)
    return packer

_DEF_GROUP_KB = 32


def _group_commit_bytes() -> int:
    """Group-commit threshold: ``REPRO_LOG_GROUP_KB`` KiB, else 32."""
    raw = os.environ.get("REPRO_LOG_GROUP_KB", "")
    try:
        return max(1, int(float(raw) * 1024)) if raw else _DEF_GROUP_KB * 1024
    except ValueError:
        return _DEF_GROUP_KB * 1024


def _fsync_enabled() -> bool:
    """``REPRO_LOG_FSYNC=0`` skips fsync (benchmarks on throwaway dirs)."""
    return os.environ.get("REPRO_LOG_FSYNC", "") != "0"


_DEF_COMPACT_KB = 256


def _pack_compact_bytes() -> int:
    """Dead-byte threshold that triggers a pack compaction mid-run.

    ``REPRO_LOG_COMPACT_KB`` KiB, default 256. Compaction rewrites the
    whole pack, so slides accumulate dead checkpoint blobs until the
    reclaimable bytes justify the copy; a clean close always compacts
    whatever is left so the final footprint is exactly the live window.
    """
    raw = os.environ.get("REPRO_LOG_COMPACT_KB", "")
    try:
        return max(1, int(float(raw) * 1024)) if raw else _DEF_COMPACT_KB * 1024
    except ValueError:
        return _DEF_COMPACT_KB * 1024


def _flight_window_env() -> Optional[int]:
    """``REPRO_FLIGHT_WINDOW=K`` turns on the rolling K-epoch window."""
    raw = os.environ.get("REPRO_FLIGHT_WINDOW", "")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def _hex(digest: int) -> str:
    return f"{digest:032x}"


#: pack file header and per-blob entry: digest (16 bytes) + length u32
PACK_MAGIC = b"DPPK01\n"
PACK_NAME = "pack.dppack"
_PACK_ENTRY = struct.Struct("<16sI")


class BlobStore:
    """Content-addressed blobs in one append-only pack: ``blobs/pack.dppack``.

    Digests are PR 4's wire digests (BLAKE2b-128 of the encoded blob),
    so checkpoint pages dedupe across epochs for free: consecutive
    checkpoints share almost every page and an already-present digest
    is never appended again — the on-disk analogue of delta checkpoints.

    One pack file, not one file per blob: blob appends buffer in memory
    and hit the filesystem at group-commit points, so persisting an
    epoch costs sequential writes to two files (pack + segment) instead
    of a file creation per page. The pack is self-describing (entries
    carry their digest and length) and append-only, so recovery is the
    same forward-scan-truncate rule as segments: an entry cut short by a
    crash is a torn tail — the manifest is only written after the pack
    is flushed, so no manifest ever references a torn blob.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.path = os.path.join(root, PACK_NAME)
        #: digest -> (payload offset, payload length), buffered included
        self._index: Dict[int, Tuple[int, int]] = {}
        self._buffer: List[bytes] = []
        self._append: Optional[object] = None
        self._read: Optional[object] = None
        #: logical end including buffered entries / end of verified data
        #: actually on disk (they differ between flushes)
        self._end = self._disk_end = len(PACK_MAGIC)
        self.blobs_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self._dir_synced = False
        if os.path.exists(self.path):
            self._scan()

    def _scan(self) -> None:
        """Index an existing pack; a torn tail entry truncates the scan."""
        with open(self.path, "rb") as handle:
            data = handle.read()
        if data[: len(PACK_MAGIC)] != PACK_MAGIC:
            raise ReplayError(f"{self.path}: not a blob pack")
        offset = len(PACK_MAGIC)
        while offset + _PACK_ENTRY.size <= len(data):
            digest_bytes, length = _PACK_ENTRY.unpack_from(data, offset)
            start = offset + _PACK_ENTRY.size
            if start + length > len(data):
                break  # torn tail: nothing references an unflushed blob
            digest = int.from_bytes(digest_bytes, "big")
            self._index[digest] = (start, length)
            offset = start + length
        self._end = self._disk_end = offset

    def put(self, digest: int, blob: bytes) -> bool:
        """Buffer a blob for the pack; returns True when newly stored."""
        if digest in self._index:
            return False
        self._buffer.append(
            _PACK_ENTRY.pack(digest.to_bytes(16, "big"), len(blob)) + blob
        )
        self._index[digest] = (self._end + _PACK_ENTRY.size, len(blob))
        self._end += _PACK_ENTRY.size + len(blob)
        self.blobs_written += 1
        self.bytes_written += len(blob)
        return True

    def flush(self, fsync: bool = False) -> bool:
        """Append buffered blobs to the pack; True when anything was written.

        Must run (with the caller's durability choice) before any
        manifest write that references the buffered digests.
        """
        if not self._buffer:
            return False
        if self._append is None:
            if os.path.exists(self.path):
                # Resume at the last verified entry: a torn tail past it
                # is dead bytes a plain append would corrupt the index
                # against, so cut it before writing.
                self._append = open(self.path, "r+b")
                self._append.truncate(self._disk_end)
                self._append.seek(self._disk_end)
            else:
                self._append = open(self.path, "wb")
                self._append.write(PACK_MAGIC)
        self._append.write(b"".join(self._buffer))
        self._append.flush()
        if fsync:
            os.fsync(self._append.fileno())
            self.fsyncs += 1
            if not self._dir_synced:
                if fsync_dir(self.root):
                    self.fsyncs += 1
                self._dir_synced = True
        self._buffer = []
        self._disk_end = self._end
        return True

    def close(self, fsync: bool = False) -> None:
        self.flush(fsync=fsync)
        for handle in (self._append, self._read):
            if handle is not None:
                handle.close()
        self._append = self._read = None

    def get(self, digest: int) -> bytes:
        entry = self._index.get(digest)
        if entry is None:
            raise ReplayError(f"blob {_hex(digest)} not in pack")
        self.flush()
        if self._read is None:
            self._read = open(self.path, "rb")
        offset, length = entry
        self._read.seek(offset)
        return self._read.read(length)

    def has(self, digest: int) -> bool:
        return digest in self._index

    def entry_bytes(self, digest: int) -> int:
        """On-disk footprint of one blob (entry header + payload)."""
        entry = self._index.get(digest)
        return 0 if entry is None else _PACK_ENTRY.size + entry[1]

    @property
    def pack_bytes(self) -> int:
        """Logical pack size (header + all entries, buffered included)."""
        return self._end

    def compact(self, drop, fsync: bool = False) -> int:
        """Rewrite the pack without the ``drop`` digests; returns bytes freed.

        Crash-safe by construction: the surviving entries are copied to
        ``pack.dppack.tmp``, fsynced (when asked), and atomically
        ``os.replace``d over the pack — a crash mid-compaction leaves
        the old pack intact and the tmp file as garbage the next open
        ignores. Dropped digests leave the index, so re-appearing
        content (a page cycling back into a later checkpoint) is simply
        appended again.
        """
        drop = {digest for digest in drop if digest in self._index}
        if not drop:
            return 0
        self.flush(fsync=fsync)
        if not os.path.exists(self.path):
            for digest in drop:
                del self._index[digest]
            return 0
        for handle in (self._append, self._read):
            if handle is not None:
                handle.close()
        self._append = self._read = None
        tmp = self.path + ".tmp"
        new_index: Dict[int, Tuple[int, int]] = {}
        before = self._disk_end
        with open(self.path, "rb") as src, open(tmp, "wb") as dst:
            dst.write(PACK_MAGIC)
            offset = len(PACK_MAGIC)
            for digest, (start, length) in sorted(
                self._index.items(), key=lambda item: item[1][0]
            ):
                if digest in drop:
                    continue
                src.seek(start - _PACK_ENTRY.size)
                dst.write(src.read(_PACK_ENTRY.size + length))
                new_index[digest] = (offset + _PACK_ENTRY.size, length)
                offset += _PACK_ENTRY.size + length
            dst.flush()
            if fsync:
                os.fsync(dst.fileno())
                self.fsyncs += 1
        os.replace(tmp, self.path)
        if fsync:
            if fsync_dir(self.root):
                self.fsyncs += 1
        self._index = new_index
        self._end = self._disk_end = offset
        return before - offset


class _LogIndexCache:
    """Reuses one :class:`ThreadLogIndex` across a segment's commits.

    The index is O(records) to build, and the recorder's log *grows*
    between commits — rebuilding per epoch would make streaming commits
    quadratic in run length. Same list object + a longer tail extends
    the index in O(new records) instead. A rebuild happens on a new
    list, a shrink, or the ``force`` flag, which covers the one case
    where contents change in place without shrinking (forward recovery
    prunes then appends).
    """

    def __init__(self, factory):
        self._factory = factory
        self._key = None
        self._index: Optional[ThreadLogIndex] = None

    def index_for(self, log: Sequence, force: bool = False) -> ThreadLogIndex:
        key = (id(log), len(log))
        if (
            force
            or self._index is None
            or key[0] != self._key[0]
            or key[1] < self._key[1]
        ):
            self._index = self._factory(log)
        elif key[1] > self._key[1]:
            self._index.extend_to(log)
        self._key = key
        return self._index


def checkpoint_floors(checkpoint: Checkpoint) -> Tuple[Dict[int, int], Dict[int, int]]:
    """``(syscall_count, retired)`` per-thread floors of a checkpoint."""
    return (
        {tid: ctx.syscall_count for tid, ctx in checkpoint.contexts.items()},
        {tid: ctx.retired for tid, ctx in checkpoint.contexts.items()},
    )


class ShardedLogWriter:
    """Streams committed epochs into the durable sharded log."""

    def __init__(
        self,
        directory: str,
        initial_checkpoint: Checkpoint,
        program_name: str,
        worker_threads: int,
        codec: Optional[str] = None,
        meta: Optional[dict] = None,
        group_commit_bytes: Optional[int] = None,
        segment_max_bytes: int = 4 << 20,
        fsync: Optional[bool] = None,
        flight_window: Optional[int] = None,
        pack_compact_bytes: Optional[int] = None,
    ):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        os.makedirs(os.path.join(directory, "segments"), exist_ok=True)
        self.codec = resolve_codec(codec)
        self.store = BlobStore(os.path.join(directory, "blobs"))
        self.group_commit_bytes = (
            group_commit_bytes if group_commit_bytes else _group_commit_bytes()
        )
        self.segment_max_bytes = segment_max_bytes
        self.fsync = _fsync_enabled() if fsync is None else fsync
        self.program_name = program_name
        self.worker_threads = worker_threads
        self.meta = dict(meta or {})
        self._sync_kinds: Dict[str, int] = {}
        self._segments: List[dict] = []
        self._segment: Optional[SegmentWriter] = None
        #: manifest entries already assigned a block
        self._sealed: List[dict] = []
        #: manifest entries whose frames sit in the group-commit buffer
        self._pending: List[dict] = []
        self._syscall_index = _LogIndexCache(ThreadLogIndex.for_syscalls)
        self._signal_index = _LogIndexCache(ThreadLogIndex.for_signals)
        self._final: dict = {"final_digest": 0, "stats": {}, "complete": False}
        self._closed = False
        self.peak_buffered = 0
        self.epochs_written = 0
        self._last_checkpoint_ref: Optional[tuple] = None
        # -- flight-recorder window state --------------------------------
        if flight_window is not None and flight_window < 1:
            raise ValueError("flight_window must be >= 1")
        self.flight_window = flight_window
        self.pack_compact_bytes = (
            pack_compact_bytes
            if pack_compact_bytes is not None
            else _pack_compact_bytes()
        )
        #: skeleton hex ref -> every pack digest the checkpoint pins
        self._ref_digests: Dict[str, Tuple[int, ...]] = {}
        #: pack digest -> live manifest references (window mode only)
        self._blob_refs: Dict[int, int] = {}
        #: digests whose refcount fell to zero, awaiting compaction
        self._dead_digests: set = set()
        self._dead_pack_bytes = 0
        #: (segment index, block index) -> live manifest epoch entries
        self._block_refs: Dict[Tuple[int, int], int] = {}
        #: segment index -> count of its blocks still referenced
        self._live_blocks: Dict[int, int] = {}
        #: segment files to unlink once the manifest stops naming them
        self._doomed_segments: List[Tuple[int, str]] = []
        self.epochs_dropped = 0
        self.segments_deleted = 0
        self.bytes_reclaimed = 0
        self.pack_compactions = 0
        self.initial_ref = self._put_checkpoint(initial_checkpoint)
        self._pin_checkpoint(self.initial_ref)
        self._write_manifest()

    # -- storage helpers ------------------------------------------------
    def _stats(self):
        return obs_metrics.process_stats()

    def _put_checkpoint(self, checkpoint: Checkpoint) -> str:
        """Persist a checkpoint (pages + skeleton) into the blob store.

        Pages go in under PR 4's wire digests — identical content across
        epochs is written once. The skeleton (contexts, sync state, page
        digest table) is itself a content-addressed blob whose hex digest
        the manifest records; kernel state is deliberately excluded,
        exactly like the wire skeletons (replay never needs it).
        """
        memo = self._last_checkpoint_ref
        if memo is not None and memo[0] is checkpoint:
            return memo[1]
        stats = self._stats()
        page_table: Dict[int, int] = {}
        for no, page in checkpoint.memory.pages.items():
            digest, blob = page.wire_blob()
            page_table[no] = digest
            if self.store.put(digest, blob):
                stats.add("durable.blobs_written")
                stats.add("durable.blob_bytes", len(blob))
        skeleton = encode_object(
            (
                checkpoint.index,
                checkpoint.time,
                checkpoint.contexts,
                checkpoint.sync_state,
                checkpoint.dirty_pages,
                page_table,
            )
        )
        digest = blob_digest(skeleton)
        if self.store.put(digest, skeleton):
            stats.add("durable.blobs_written")
            stats.add("durable.blob_bytes", len(skeleton))
        ref = _hex(digest)
        if self.flight_window is not None and ref not in self._ref_digests:
            self._ref_digests[ref] = (digest, *page_table.values())
        # Pin only the most recent checkpoint: each epoch's start is put
        # exactly once except the initial one (put again by epoch 0's
        # commit), so one entry is all the dedup this path ever needs —
        # and pinning more would hold pages the spill mode wants freed.
        self._last_checkpoint_ref = (checkpoint, ref)
        return ref

    # -- flight-window blob refcounts -----------------------------------
    def _pin_checkpoint(self, ref: str) -> None:
        """Count one live manifest reference on a checkpoint's blobs."""
        if self.flight_window is None:
            return
        for digest in self._ref_digests.get(ref, ()):
            count = self._blob_refs.get(digest, 0)
            if count == 0 and digest in self._dead_digests:
                # Resurrection: the digest cycled back into the window
                # before a compaction reclaimed it.
                self._dead_digests.discard(digest)
                self._dead_pack_bytes -= self.store.entry_bytes(digest)
            self._blob_refs[digest] = count + 1

    def _unpin_checkpoint(self, ref: str) -> None:
        """Drop one manifest reference; zero-ref blobs become dead bytes."""
        if self.flight_window is None:
            return
        digests = self._ref_digests.get(ref, ())
        skeleton_digest = digests[0] if digests else None
        for digest in digests:
            count = self._blob_refs.get(digest, 0) - 1
            if count > 0:
                self._blob_refs[digest] = count
                continue
            self._blob_refs.pop(digest, None)
            self._dead_digests.add(digest)
            self._dead_pack_bytes += self.store.entry_bytes(digest)
        if (
            skeleton_digest is not None
            and skeleton_digest not in self._blob_refs
        ):
            del self._ref_digests[ref]

    def _segment_writer(self) -> SegmentWriter:
        if self._segment is not None and (
            self._segment.stored_bytes < self.segment_max_bytes
        ):
            return self._segment
        if self._segment is not None:
            self._retire_segment()
        name = f"seg-{len(self._segments):05d}.dpseg"
        path = os.path.join(self.directory, "segments", name)
        self._segment = SegmentWriter(path, codec=self.codec)
        self._segments.append(
            {"file": f"segments/{name}", "codec": self.codec, "blocks": []}
        )
        return self._segment

    def _retire_segment(self) -> None:
        self._flush()
        self.peak_buffered = max(self.peak_buffered, self._segment.peak_buffered)
        self._segment.close(fsync=self.fsync)
        self._segment = None

    # -- frame encoding -------------------------------------------------
    def _kind_code(self, kind: str) -> int:
        code = self._sync_kinds.get(kind)
        if code is None:
            code = self._sync_kinds[kind] = len(self._sync_kinds)
            if code > 0xFF:
                raise ValueError("too many sync kinds for a one-byte code")
        return code

    @staticmethod
    def _frame(stream: int, tid: int, epoch: int, payload: bytes) -> bytes:
        return _FRAME_HEADER.pack(stream, tid, epoch) + payload

    def _schedule_frames(self, epoch: int, schedule: ScheduleLog) -> List[bytes]:
        per_tid: Dict[int, list] = {}
        setdefault = per_tid.setdefault
        for rank, timeslice in enumerate(schedule):
            setdefault(timeslice.tid, []).extend(
                (rank, timeslice.ops, 1 if timeslice.ended_blocked else 0)
            )
        return [
            self._frame(
                STREAM_SCHEDULE, tid, epoch,
                _repeat_packer(len(flat) // 3).pack(*flat),
            )
            for tid, flat in sorted(per_tid.items())
        ]

    def _sync_frames(self, epoch: int, sync_log: SyncOrderLog) -> List[bytes]:
        per_tid: Dict[int, list] = {}
        setdefault = per_tid.setdefault
        kind_code = self._kind_code
        for rank, (kind, addr, tid) in enumerate(sync_log.events):
            setdefault(tid, []).extend((rank, addr, kind_code(kind)))
        return [
            self._frame(
                STREAM_SYNC, tid, epoch,
                _repeat_packer(len(flat) // 3).pack(*flat),
            )
            for tid, flat in sorted(per_tid.items())
        ]

    def _syscall_frames(
        self, epoch: int, log: Sequence[SyscallRecord], positions: Sequence[int]
    ) -> List[bytes]:
        per_tid: Dict[int, list] = {}
        for rank, position in enumerate(positions):
            record = log[position]
            per_tid.setdefault(record.tid, []).append(
                (
                    rank,
                    (
                        record.tid,
                        record.seq,
                        record.kind.value,
                        record.retval,
                        record.writes,
                        record.transferred,
                    ),
                )
            )
        return [
            self._frame(
                STREAM_SYSCALL, tid, epoch,
                pickle.dumps(tuple(entries), protocol=4),
            )
            for tid, entries in sorted(per_tid.items())
        ]

    def _signal_frames(
        self, epoch: int, log: Sequence[tuple], positions: Sequence[int]
    ) -> List[bytes]:
        per_tid: Dict[int, list] = {}
        for rank, position in enumerate(positions):
            record = log[position]
            per_tid.setdefault(record[0], []).append((rank, tuple(record)))
        return [
            self._frame(
                STREAM_SIGNAL, tid, epoch,
                pickle.dumps(tuple(entries), protocol=4),
            )
            for tid, entries in sorted(per_tid.items())
        ]

    # -- commit path ----------------------------------------------------
    def commit_epoch(
        self,
        record: EpochRecord,
        start_checkpoint: Checkpoint,
        end_checkpoint: Optional[Checkpoint],
        syscall_log: Sequence[SyscallRecord],
        signal_log: Sequence[tuple],
    ) -> None:
        """Append one committed epoch's shards to the group-commit buffer.

        ``start_checkpoint``/``end_checkpoint`` bound the epoch's shard
        extents: per-thread syscall records with ``seq`` in
        ``[start.syscall_count, end.syscall_count)`` and signal records
        with ``retired`` in the matching window belong to this epoch —
        disjoint across epochs and (by checkpoint monotonicity)
        concatenation-exact in global log order. ``end_checkpoint=None``
        means no upper bound (the run's final epoch when the closing
        checkpoint is not at hand — offline persistence): the logs were
        already pruned to the committed prefix, so unbounded selects the
        exact same records the live floors would.
        """
        if self._closed:
            raise ValueError("durable log already closed")
        stats = self._stats()
        epoch = record.index
        start_sys, start_sig = checkpoint_floors(start_checkpoint)
        if end_checkpoint is None:
            end_sys = end_sig = None
        else:
            end_sys, end_sig = checkpoint_floors(end_checkpoint)
        syscall_positions = self._syscall_index.index_for(
            syscall_log, force=record.recovered
        ).positions_between(start_sys, end_sys)
        signal_positions = self._signal_index.index_for(
            signal_log, force=record.recovered
        ).positions_between(start_sig, end_sig)

        frames = self._schedule_frames(epoch, record.schedule)
        frames += self._sync_frames(epoch, record.sync_log)
        frames += self._syscall_frames(epoch, syscall_log, syscall_positions)
        frames += self._signal_frames(epoch, signal_log, signal_positions)
        meta = {
            "index": epoch,
            "targets": dict(record.targets),
            "end_digest": record.end_digest,
            "duration": record.duration,
            "recovered": record.recovered,
            "counts": {
                "schedule": len(record.schedule),
                "sync": len(record.sync_log),
                "syscall": len(syscall_positions),
                "signal": len(signal_positions),
            },
        }
        frames.append(
            self._frame(STREAM_META, 0, epoch, pickle.dumps(meta, protocol=4))
        )

        writer = self._segment_writer()
        shard_bytes = 0
        for frame in frames:
            writer.append(frame)
            shard_bytes += len(frame)
        checkpoint_ref = self._put_checkpoint(start_checkpoint)
        self._pin_checkpoint(checkpoint_ref)
        self._pending.append(
            {
                "index": epoch,
                "recovered": record.recovered,
                "checkpoint": checkpoint_ref,
                "block": None,
                "records": sum(meta["counts"].values()),
                "bytes": shard_bytes,
            }
        )
        self.epochs_written += 1
        stats.add("durable.epochs")
        stats.add("durable.shard_bytes", shard_bytes)
        if writer.buffered_bytes >= self.group_commit_bytes:
            self._flush()
            self._write_manifest()

    def _flush(self) -> None:
        """Force the buffer: one block, one fsync, seal pending epochs."""
        if self._segment is None:
            return
        before = self._segment.stored_bytes
        fsyncs_before = self._segment.fsyncs
        block_index = self._segment.flush(fsync=self.fsync)
        if block_index is None:
            return
        stats = self._stats()
        segment_index = len(self._segments) - 1
        extent = self._segment.blocks[block_index]
        self._segments[segment_index]["blocks"].append(list(extent))
        for entry in self._pending:
            entry["block"] = [segment_index, block_index]
            self._sealed.append(entry)
        if self.flight_window is not None:
            block_key = (segment_index, block_index)
            self._block_refs[block_key] = len(self._pending)
            self._live_blocks[segment_index] = (
                self._live_blocks.get(segment_index, 0) + 1
            )
        sealed = len(self._pending)
        self._pending = []
        stats.add("durable.group_commits")
        stats.add("durable.group_commit_epochs", sealed)
        stats.add("durable.segment_bytes", self._segment.stored_bytes - before)
        if self.fsync:
            stats.add("durable.fsyncs", self._segment.fsyncs - fsyncs_before)

    # -- flight-recorder window slide -----------------------------------
    def _slide_window(self, stats) -> List[Tuple[int, str]]:
        """Drop pre-window epochs from the manifest; returns doomed segments.

        Bookkeeping only: manifest entries for the dropped epochs are
        removed, their checkpoint blobs unpinned, and segments whose
        every block just died are *marked* dropped (file set to null).
        The actual unlink and any pack compaction happen strictly after
        the slid manifest is durably renamed — the manifest must stop
        naming bytes before the bytes disappear, or a crash between the
        two leaves a manifest pointing at nothing.
        """
        if (
            self.flight_window is None
            or len(self._sealed) <= self.flight_window
        ):
            return []
        drop = self._sealed[: len(self._sealed) - self.flight_window]
        self._sealed = self._sealed[len(drop) :]
        # Pin the new window base before unpinning the dropped epochs so
        # shared blobs never transiently hit refcount zero.
        new_initial = self._sealed[0]["checkpoint"]
        if new_initial != self.initial_ref:
            self._pin_checkpoint(new_initial)
            self._unpin_checkpoint(self.initial_ref)
            self.initial_ref = new_initial
        for entry in drop:
            self._unpin_checkpoint(entry["checkpoint"])
            block_key = tuple(entry["block"])
            count = self._block_refs[block_key] - 1
            if count:
                self._block_refs[block_key] = count
            else:
                del self._block_refs[block_key]
                self._live_blocks[block_key[0]] -= 1
        self.epochs_dropped += len(drop)
        stats.add("durable.window_slides")
        stats.add("durable.window_epochs_dropped", len(drop))
        obs_events.emit(
            "flight-window-slide", dropped=len(drop),
            window=self.flight_window,
        )
        # Retire the open segment early when the window slid past any of
        # its blocks: no further appends means the file becomes fully
        # dead — and deletable — as soon as its remaining epochs slide.
        if self._segment is not None:
            open_index = len(self._segments) - 1
            flushed = len(self._segments[open_index]["blocks"])
            if (
                flushed
                and self._live_blocks.get(open_index, 0) < flushed
                and self._segment.buffered_bytes == 0
            ):
                self._retire_segment()
        doomed: List[Tuple[int, str]] = []
        open_index = (
            len(self._segments) - 1 if self._segment is not None else None
        )
        for index, seg_entry in enumerate(self._segments):
            if index == open_index or seg_entry.get("file") is None:
                continue
            if not seg_entry["blocks"] or self._live_blocks.get(index, 0) > 0:
                continue
            doomed.append(
                (
                    sum(stored for _o, stored, _r in seg_entry["blocks"]),
                    os.path.join(self.directory, seg_entry["file"]),
                )
            )
            seg_entry["file"] = None
            seg_entry["blocks"] = []
            seg_entry["dropped"] = True
            self._live_blocks.pop(index, None)
        return doomed

    def _collect_garbage(self, doomed: List[Tuple[int, str]], stats) -> None:
        """Unlink dead segment files and compact the pack when it pays."""
        if doomed:
            for stored_bytes, path in doomed:
                try:
                    reclaimed = os.path.getsize(path)
                except OSError:
                    reclaimed = stored_bytes
                os.unlink(path)
                self.segments_deleted += 1
                self.bytes_reclaimed += reclaimed
                stats.add("durable.segments_deleted")
                stats.add("durable.segment_bytes_reclaimed", reclaimed)
                obs_events.emit("segment-gc", bytes_reclaimed=reclaimed)
            if self.fsync and fsync_dir(os.path.join(self.directory, "segments")):
                stats.add("durable.fsyncs")
        self._maybe_compact(stats)

    def _maybe_compact(self, stats, force: bool = False) -> None:
        """Rewrite the pack without dead checkpoint blobs.

        Mid-run, only once the dead bytes clear the compaction threshold
        (the rewrite is O(pack)); ``force`` on clean close reclaims the
        remainder so the final footprint is exactly the live window.
        Always runs *after* a manifest that no longer references the
        dead digests is durably in place.
        """
        if self.flight_window is None or not self._dead_digests:
            return
        if not force and self._dead_pack_bytes < self.pack_compact_bytes:
            return
        fsyncs_before = self.store.fsyncs
        freed = self.store.compact(self._dead_digests, fsync=self.fsync)
        self._dead_digests = set()
        self._dead_pack_bytes = 0
        self.pack_compactions += 1
        self.bytes_reclaimed += freed
        stats.add("durable.pack_compactions")
        stats.add("durable.pack_bytes_reclaimed", freed)
        obs_events.emit("pack-compaction", bytes_reclaimed=freed)
        if self.fsync:
            stats.add("durable.fsyncs", self.store.fsyncs - fsyncs_before)

    # -- manifest -------------------------------------------------------
    def _manifest_payload(self) -> dict:
        payload = {
            "format": MANIFEST_FORMAT,
            "codec": self.codec,
            "program": self.program_name,
            "worker_threads": self.worker_threads,
            "workload": self.meta,
            "initial": self.initial_ref,
            "sync_kinds": [
                kind
                for kind, _ in sorted(
                    self._sync_kinds.items(), key=lambda item: item[1]
                )
            ],
            "flight_window": self.flight_window,
            "epochs_dropped": self.epochs_dropped,
            "epochs": list(self._sealed),
            "segments": self._segments,
            "final_digest": self._final["final_digest"],
            "stats": self._final["stats"],
            "complete": self._final["complete"],
        }
        if self._final.get("crash_reason"):
            payload["crash_reason"] = self._final["crash_reason"]
        return payload

    def _write_manifest(self) -> None:
        stats = self._stats()
        doomed = self._slide_window(stats)
        # The manifest is the commit point: every blob it references
        # must already be in the pack, so force the pack first.
        fsyncs_before = self.store.fsyncs
        self.store.flush(fsync=self.fsync)
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        payload = json.dumps(
            self._manifest_payload(), separators=(",", ":")
        ).encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            if self.fsync:
                # The rename is only an atomic commit point if the tmp
                # file's bytes are durable before it lands...
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fsync:
            # ...and only a *durable* commit point once the directory
            # entry itself is synced: without this, power loss after
            # the rename can roll the manifest back to a stale version
            # that references since-truncated state.
            manifest_fsyncs = 1 + (1 if fsync_dir(self.directory) else 0)
            stats.add(
                "durable.fsyncs",
                manifest_fsyncs + self.store.fsyncs - fsyncs_before,
            )
        self._collect_garbage(doomed, stats)

    def close(self, final_digest: int = 0, stats: Optional[dict] = None) -> None:
        """Seal the log: flush, close segments, write the final manifest."""
        if self._closed:
            return
        self._final = {
            "final_digest": final_digest,
            "stats": dict(stats or {}),
            "complete": True,
        }
        if self._segment is not None:
            self._retire_segment()
        self._stats().add("durable.buffered_peak", self.peak_buffered)
        self._write_manifest()
        self._maybe_compact(self._stats(), force=True)
        self.store.close(fsync=self.fsync)
        self._closed = True

    def close_partial(self, reason: str = "") -> None:
        """Crash-path close: seal whatever committed, mark the log torn.

        The recorder calls this when the run dies with the sink open
        (workload fault, ``KeyboardInterrupt``, an escaped host error):
        buffered epochs are group-committed, the manifest is rewritten
        with ``complete: false`` and the crash reason, and the pack is
        left un-compacted (reclaim is a clean-close luxury; the crash
        path optimises for never losing a committed epoch). The
        resulting directory is exactly what ``repro log recover`` /
        ``replay --tail`` open.
        """
        if self._closed:
            return
        self._final = {
            "final_digest": 0,
            "stats": {},
            "complete": False,
            "crash_reason": str(reason)[:500],
        }
        self._stats().add("durable.partial_closes")
        obs_events.emit("partial-close", reason=str(reason)[:120])
        try:
            if self._segment is not None:
                self._retire_segment()
        except Exception:
            # Best effort: a failed final flush must not stop the
            # manifest from sealing the epochs that did reach disk.
            self._segment = None
        self._stats().add("durable.buffered_peak", self.peak_buffered)
        self._write_manifest()
        self.store.close(fsync=self.fsync)
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def totals(self) -> dict:
        """On-disk accounting for reports and benchmarks."""
        segment_bytes = sum(
            stored
            for seg_entry in self._segments
            for _offset, stored, _raw in seg_entry["blocks"]
        )
        return {
            "epochs": self.epochs_written,
            "segments": sum(
                1 for seg_entry in self._segments
                if seg_entry.get("file") is not None
            ),
            "segment_bytes": segment_bytes,
            "blob_bytes": self.store.bytes_written,
            "blobs_written": self.store.blobs_written,
            "peak_buffered": self.peak_buffered,
            "epochs_dropped": self.epochs_dropped,
            "segments_deleted": self.segments_deleted,
            "pack_compactions": self.pack_compactions,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


def persist_recording(
    recording: Recording,
    directory: str,
    codec: Optional[str] = None,
    meta: Optional[dict] = None,
    fsync: Optional[bool] = None,
    group_commit_bytes: Optional[int] = None,
    flight_window: Optional[int] = None,
    segment_max_bytes: int = 4 << 20,
    pack_compact_bytes: Optional[int] = None,
) -> dict:
    """Write a finished in-memory recording out as a durable sharded log.

    The offline twin of the recorder's streaming path (``log_dir``):
    identical epochs, floors and codec produce a byte-identical log —
    the final epoch just commits with no upper floor, which selects the
    same records because the retained logs already end at the committed
    prefix. Used by benchmarks and the log-size experiments; spilled
    recordings no longer hold their logs and cannot be re-persisted.
    Returns the writer's :meth:`~ShardedLogWriter.totals`.
    """
    if any(epoch.spilled for epoch in recording.epochs):
        raise ValueError("recording was spilled; its logs live on disk only")
    writer = ShardedLogWriter(
        directory,
        recording.initial_checkpoint,
        recording.program_name,
        recording.worker_threads,
        codec=codec,
        meta=meta,
        fsync=fsync,
        group_commit_bytes=group_commit_bytes,
        flight_window=flight_window,
        segment_max_bytes=segment_max_bytes,
        pack_compact_bytes=pack_compact_bytes,
    )
    epochs = recording.epochs
    for position, record in enumerate(epochs):
        end = (
            epochs[position + 1].start_checkpoint
            if position + 1 < len(epochs)
            else None
        )
        writer.commit_epoch(
            record,
            record.start_checkpoint,
            end,
            recording.syscall_records,
            recording.signal_records,
        )
    writer.close(final_digest=recording.final_digest, stats=recording.stats)
    return writer.totals()


class ShardedLogReader:
    """Reads a durable sharded recording back into replayable form."""

    def __init__(self, directory: str):
        self.directory = directory
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path) as handle:
                self.manifest = json.load(handle)
        except FileNotFoundError:
            raise ReplayError(f"{directory}: no durable log manifest") from None
        if self.manifest.get("format") != MANIFEST_FORMAT:
            raise ReplayError(
                f"{directory}: unsupported manifest format "
                f"{self.manifest.get('format')!r}"
            )
        self.store = BlobStore(os.path.join(directory, "blobs"))
        self._readers: Dict[int, SegmentReader] = {}
        self._pages: Dict[int, Page] = {}
        self._kinds = {kind.value: kind for kind in SyscallKind}

    # -- introspection --------------------------------------------------
    @property
    def workload(self) -> dict:
        return dict(self.manifest.get("workload") or {})

    def epoch_count(self) -> int:
        return len(self.manifest["epochs"])

    def first_epoch(self) -> int:
        """Absolute index of the oldest epoch still in the log.

        0 for an ordinary log; for a flight-recorder log the window base
        — everything before it slid out and is gone from disk.
        """
        entries = self.manifest["epochs"]
        if entries:
            return entries[0]["index"]
        return self.manifest.get("epochs_dropped", 0)

    @property
    def complete(self) -> bool:
        """False for a crashed/unsealed log (``close_partial`` or torn)."""
        return bool(self.manifest.get("complete"))

    @property
    def crash_reason(self) -> Optional[str]:
        return self.manifest.get("crash_reason")

    @property
    def flight_window(self) -> Optional[int]:
        return self.manifest.get("flight_window")

    # -- blob resolution ------------------------------------------------
    def _page(self, digest: int) -> Page:
        page = self._pages.get(digest)
        if page is None:
            kind, words = decode_blob(self.store.get(digest))
            if kind != "page":
                raise ReplayError(f"blob {_hex(digest)} is not a page")
            page = Page(words)
            self._pages[digest] = page
        return page

    def materialize_checkpoint(self, skeleton_hex: str) -> Checkpoint:
        """Rebuild a :class:`Checkpoint` from its stored skeleton.

        Pages resolve through a shared digest→``Page`` cache, so
        checkpoints of consecutive epochs share page *objects* exactly
        like in-memory copy-on-write snapshots do — the divergence
        check's identity fast path survives the round trip. Each
        checkpoint pins a reference per page, mirroring
        ``WireCheckpoint.hydrate``.
        """
        kind, skeleton = decode_blob(self.store.get(int(skeleton_hex, 16)))
        if kind != "object":
            raise ReplayError("checkpoint skeleton blob is not an object")
        index, time, contexts, sync_state, dirty_pages, page_table = skeleton
        pages = {no: self._page(digest) for no, digest in page_table.items()}
        for page in pages.values():
            page.refs += 1
        return Checkpoint(
            index=index,
            time=time,
            memory=MemorySnapshot(pages),
            contexts=contexts,
            sync_state=sync_state,
            kernel_state=None,
            dirty_pages=dirty_pages,
        )

    # -- shard reads ----------------------------------------------------
    def _segment_reader(self, segment_index: int) -> SegmentReader:
        reader = self._readers.get(segment_index)
        if reader is None:
            entry = self.manifest["segments"][segment_index]
            reader = SegmentReader(os.path.join(self.directory, entry["file"]))
            self._readers[segment_index] = reader
        return reader

    def _frames_for(self, entries: Sequence[dict]) -> Dict[int, List[bytes]]:
        """Read exactly the blocks the chosen epochs live in.

        Blocks are the unit of compression, so a suffix load decompresses
        only the suffix's blocks — this is what makes ``--from-epoch N``
        I/O proportional to the suffix, not the run.
        """
        wanted = {entry["index"] for entry in entries}
        blocks: Dict[Tuple[int, int], None] = {}
        for entry in entries:
            if entry["block"] is None:
                raise ReplayError(
                    f"epoch {entry['index']} was never sealed (torn log?)"
                )
            blocks[tuple(entry["block"])] = None
        frames: Dict[int, List[bytes]] = {index: [] for index in wanted}
        for segment_index, block_index in blocks:
            segment = self.manifest["segments"][segment_index]
            offset = segment["blocks"][block_index][0]
            for frame in self._segment_reader(segment_index).read_block(offset):
                stream, tid, epoch = _FRAME_HEADER.unpack_from(frame, 0)
                if epoch in wanted:
                    frames[epoch].append(frame)
        return frames

    def _decode_epoch(self, frames: List[bytes]) -> EpochRecord:
        """Merge one epoch's shard frames back into an EpochRecord."""
        sync_kinds = self.manifest["sync_kinds"]
        schedule: List[Tuple[int, Timeslice]] = []
        sync_events: List[Tuple[int, tuple]] = []
        syscalls: List[Tuple[int, SyscallRecord]] = []
        signals: List[Tuple[int, tuple]] = []
        meta: Optional[dict] = None
        for frame in frames:
            stream, tid, _epoch = _FRAME_HEADER.unpack_from(frame, 0)
            payload = frame[_FRAME_HEADER.size :]
            if stream == STREAM_SCHEDULE:
                for rank, ops, flags in _SCHED_REC.iter_unpack(payload):
                    schedule.append(
                        (rank, Timeslice(tid, ops, bool(flags & 1)))
                    )
            elif stream == STREAM_SYNC:
                for rank, addr, code in _SYNC_REC.iter_unpack(payload):
                    sync_events.append((rank, (sync_kinds[code], addr, tid)))
            elif stream == STREAM_SYSCALL:
                for rank, fields in pickle.loads(payload):
                    rtid, seq, kind, retval, writes, transferred = fields
                    syscalls.append(
                        (
                            rank,
                            SyscallRecord(
                                tid=rtid,
                                seq=seq,
                                kind=self._kinds[kind],
                                retval=retval,
                                writes=tuple(
                                    (base, tuple(words))
                                    for base, words in writes
                                ),
                                transferred=transferred,
                            ),
                        )
                    )
            elif stream == STREAM_SIGNAL:
                for rank, record in pickle.loads(payload):
                    signals.append((rank, tuple(record)))
            elif stream == STREAM_META:
                meta = pickle.loads(payload)
        if meta is None:
            raise ReplayError("epoch shard set has no meta frame")
        for counted, merged in (
            ("schedule", schedule),
            ("sync", sync_events),
            ("syscall", syscalls),
            ("signal", signals),
        ):
            if meta["counts"][counted] != len(merged):
                raise ReplayError(
                    f"epoch {meta['index']}: {counted} shard records "
                    f"{len(merged)} != manifest count {meta['counts'][counted]}"
                )
        schedule.sort()
        sync_events.sort()
        syscalls.sort()
        signals.sort()
        record = EpochRecord(
            index=meta["index"],
            start_checkpoint=None,
            targets={int(t): ops for t, ops in meta["targets"].items()},
            schedule=ScheduleLog(tuple(ts for _, ts in schedule)),
            sync_log=SyncOrderLog(tuple(ev for _, ev in sync_events)),
            end_digest=meta["end_digest"],
            duration=meta["duration"],
            recovered=meta["recovered"],
        )
        # ride the per-epoch logs out for the Recording-level concatenation
        record._durable_syscalls = [r for _, r in syscalls]  # type: ignore
        record._durable_signals = [r for _, r in signals]    # type: ignore
        return record

    # -- loading --------------------------------------------------------
    def load_recording(
        self, from_epoch: Optional[int] = None, materialize: bool = False
    ) -> Recording:
        """Rebuild a :class:`Recording` from the durable shards.

        ``from_epoch=N`` loads only the suffix: the returned recording's
        ``initial_checkpoint`` is epoch N's start state **materialised
        from the blob store** — no prefix re-execution — and its epochs,
        syscall and signal logs are the suffix shards. ``materialize``
        additionally hydrates every epoch's start checkpoint (what
        parallel replay needs), again from the store rather than by
        sequential re-execution.

        Epoch indices are *absolute* run indices: on a flight-recorder
        log whose window slid, the valid range starts at
        :meth:`first_epoch`, not 0. ``None`` (the default) loads
        everything still in the log.
        """
        entries = self.manifest["epochs"]
        base = self.first_epoch()
        if from_epoch is None:
            from_epoch = base
        if not base <= from_epoch <= base + len(entries):
            raise ReplayError(
                f"--from-epoch {from_epoch} outside recorded range "
                f"{base}..{base + len(entries)}"
            )
        if not entries:
            raise ReplayError("durable log holds no epochs")
        chosen = entries[from_epoch - base :]
        frames = self._frames_for(chosen)
        if chosen:
            initial = self.materialize_checkpoint(chosen[0]["checkpoint"])
        else:
            initial = self.materialize_checkpoint(self.manifest["initial"])
        recording = Recording(
            program_name=self.manifest["program"],
            worker_threads=self.manifest["worker_threads"],
            initial_checkpoint=initial,
            final_digest=self.manifest["final_digest"],
            stats=dict(self.manifest["stats"]),
        )
        for position, entry in enumerate(chosen):
            record = self._decode_epoch(frames[entry["index"]])
            if position == 0:
                # The suffix's first epoch starts from ``initial`` — the
                # very checkpoint just materialised from its manifest ref.
                record.start_checkpoint = initial
            elif materialize:
                record.start_checkpoint = self.materialize_checkpoint(
                    entry["checkpoint"]
                )
            recording.epochs.append(record)
            recording.syscall_records.extend(record._durable_syscalls)
            recording.signal_records.extend(record._durable_signals)
            del record._durable_syscalls, record._durable_signals
        return recording

    def verify(self) -> List[str]:
        """Integrity sweep: every referenced block and blob must verify."""
        problems: List[str] = []
        for entry in self.manifest["epochs"]:
            if entry["block"] is None:
                problems.append(f"epoch {entry['index']}: never sealed")
                continue
            if not self.store.has(int(entry["checkpoint"], 16)):
                problems.append(
                    f"epoch {entry['index']}: checkpoint blob missing"
                )
        for segment_index, segment in enumerate(self.manifest["segments"]):
            if segment.get("file") is None:
                continue  # slid out of the flight window and deleted
            try:
                reader = self._segment_reader(segment_index)
                for offset, _stored, _raw in segment["blocks"]:
                    reader.read_block(offset)
            except Exception as exc:  # noqa: BLE001 - report, don't raise
                problems.append(f"{segment['file']}: {exc}")
        return problems
