"""Happens-before race detection over a collected trace.

The detector consumes :class:`~repro.exec.trace.TraceEvent` streams in
retirement order and maintains:

* a vector clock per thread,
* a release clock per synchronisation object (``acquire`` joins it in,
  ``release`` stores the releaser's clock),
* barrier generations (grouped by ``(addr, time)``) as all-to-all joins,
* spawn/join/exit edges,
* per word address: the last write (clock + tid) and the reads since
  that write.

Two accesses to the same word race when at least one is a write and their
clocks are concurrent. Each distinct racing address is reported once.

Precision notes: condition variables create edges through the recorded
``release``/``acquire`` events on the condvar address *and* the protecting
mutex; programs that signal without holding the associated mutex may
produce false positives — which is fine, because such programs are exactly
the "racy" class DoublePlay's divergence path exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.exec.trace import TraceEvent
from repro.race.vector_clock import VectorClock


@dataclass(frozen=True)
class Race:
    """One detected data race on a word address."""

    addr: int
    first_tid: int
    second_tid: int
    #: "write-write", "read-write" or "write-read"
    kind: str


@dataclass
class _Location:
    write_clock: VectorClock = field(default_factory=VectorClock)
    write_tid: int = -1
    has_write: bool = False
    #: reads since the last write: tid → clock
    read_clocks: Dict[int, VectorClock] = field(default_factory=dict)


class RaceDetector:
    """Streaming happens-before detector."""

    def __init__(self) -> None:
        self._threads: Dict[int, VectorClock] = {}
        self._objects: Dict[int, VectorClock] = {}
        self._locations: Dict[int, _Location] = {}
        self._barrier_pending: Dict[Tuple[int, int], List[int]] = {}
        self._exit_clocks: Dict[int, VectorClock] = {}
        self.races: List[Race] = []
        self._raced_addrs: Set[int] = set()

    # ------------------------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock().tick(tid)
            self._threads[tid] = clock
        return clock

    def consume(self, events: Iterable[TraceEvent]) -> None:
        batch: List[TraceEvent] = list(events)
        index = 0
        while index < len(batch):
            event = batch[index]
            if event.kind == "barrier":
                # All releases of one barrier generation share (addr, time).
                group = [event]
                while (
                    index + 1 < len(batch)
                    and batch[index + 1].kind == "barrier"
                    and batch[index + 1].addr == event.addr
                    and batch[index + 1].time == event.time
                ):
                    index += 1
                    group.append(batch[index])
                self._on_barrier(group)
            else:
                self._dispatch(event)
            index += 1

    def _dispatch(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == "read":
            self._on_read(event.tid, event.addr)
        elif kind == "write":
            self._on_write(event.tid, event.addr)
        elif kind == "acquire":
            self._on_acquire(event.tid, event.addr)
        elif kind == "release":
            self._on_release(event.tid, event.addr)
        elif kind == "spawn":
            self._on_spawn(event.tid, event.addr)
        elif kind == "exit":
            self._on_exit(event.tid)
        elif kind == "join":
            self._on_join(event.tid, event.addr)
        # "syscall" events carry no ordering information here

    # ------------------------------------------------------------------
    # Synchronisation edges
    # ------------------------------------------------------------------
    def _on_acquire(self, tid: int, addr: int) -> None:
        release_clock = self._objects.get(addr)
        if release_clock is not None:
            self._threads[tid] = self._clock(tid).join(release_clock)

    def _on_release(self, tid: int, addr: int) -> None:
        clock = self._clock(tid)
        existing = self._objects.get(addr)
        self._objects[addr] = clock.join(existing) if existing else clock
        self._threads[tid] = clock.tick(tid)

    def _on_barrier(self, group: List[TraceEvent]) -> None:
        merged = VectorClock()
        for event in group:
            merged = merged.join(self._clock(event.tid))
        for event in group:
            self._threads[event.tid] = merged.tick(event.tid)

    def _on_spawn(self, parent: int, child: int) -> None:
        parent_clock = self._clock(parent)
        self._threads[child] = parent_clock.tick(child)
        self._threads[parent] = parent_clock.tick(parent)

    def _on_exit(self, tid: int) -> None:
        self._exit_clocks[tid] = self._clock(tid)

    def _on_join(self, joiner: int, target: int) -> None:
        target_clock = self._exit_clocks.get(target)
        if target_clock is not None:
            self._threads[joiner] = self._clock(joiner).join(target_clock)

    # ------------------------------------------------------------------
    # Memory accesses
    # ------------------------------------------------------------------
    def _on_read(self, tid: int, addr: int) -> None:
        location = self._locations.setdefault(addr, _Location())
        clock = self._clock(tid)
        if (
            location.has_write
            and location.write_tid != tid
            and not location.write_clock.happens_before(clock)
        ):
            self._report(addr, location.write_tid, tid, "write-read")
        location.read_clocks[tid] = clock

    def _on_write(self, tid: int, addr: int) -> None:
        location = self._locations.setdefault(addr, _Location())
        clock = self._clock(tid)
        if (
            location.has_write
            and location.write_tid != tid
            and not location.write_clock.happens_before(clock)
        ):
            self._report(addr, location.write_tid, tid, "write-write")
        for reader, read_clock in location.read_clocks.items():
            if reader != tid and not read_clock.happens_before(clock):
                self._report(addr, reader, tid, "read-write")
        location.write_clock = clock
        location.write_tid = tid
        location.has_write = True
        location.read_clocks = {}

    def _report(self, addr: int, first: int, second: int, kind: str) -> None:
        if addr in self._raced_addrs:
            return
        self._raced_addrs.add(addr)
        self.races.append(Race(addr=addr, first_tid=first, second_tid=second, kind=kind))

    # ------------------------------------------------------------------
    def racy_addresses(self) -> Set[int]:
        return set(self._raced_addrs)

    def is_racy(self) -> bool:
        return bool(self.races)


def find_races(events: Iterable[TraceEvent]) -> List[Race]:
    """Convenience wrapper: detect races in a complete trace."""
    detector = RaceDetector()
    detector.consume(events)
    return detector.races
