"""Happens-before data-race detection over execution traces.

DoublePlay's divergences come from data races (the epoch-parallel
re-execution resolves a race differently than the thread-parallel run).
The detector makes that connection testable: workloads the detector calls
race-free must record with zero divergences when sync hints are on, and the
divergence experiments use detector-confirmed racy workloads.
"""

from repro.race.vector_clock import VectorClock
from repro.race.detector import RaceDetector, Race, find_races

__all__ = ["VectorClock", "RaceDetector", "Race", "find_races"]
