"""Vector clocks.

Sparse (dict-backed): a missing component is zero. Values are immutable
from the outside — every operation returns a new clock — so clocks can be
stored as last-access metadata without defensive copying.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A partial-order timestamp over thread ids."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Dict[int, int] = None):
        self._clocks: Dict[int, int] = dict(clocks) if clocks else {}

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def tick(self, tid: int) -> "VectorClock":
        """Advance ``tid``'s component by one."""
        clocks = dict(self._clocks)
        clocks[tid] = clocks.get(tid, 0) + 1
        return VectorClock(clocks)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum."""
        clocks = dict(self._clocks)
        for tid, value in other._clocks.items():
            if value > clocks.get(tid, 0):
                clocks[tid] = value
        return VectorClock(clocks)

    def happens_before(self, other: "VectorClock") -> bool:
        """True when self ≤ other component-wise (and they differ or equal).

        ``a.happens_before(b)`` being False for both orders means the two
        timestamps are concurrent.
        """
        return all(value <= other.get(tid) for tid, value in self._clocks.items())

    def ordered_with(self, other: "VectorClock") -> bool:
        return self.happens_before(other) or other.happens_before(self)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._clocks.items()))

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {t: v for t, v in self._clocks.items() if v}
        theirs = {t: v for t, v in other._clocks.items() if v}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(tuple(sorted((t, v) for t, v in self._clocks.items() if v)))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._clocks.items()))
        return f"VC({inner})"
