"""Command-line interface.

``python -m repro <command>`` drives the library end to end:

* ``list`` — the workload suite;
* ``run`` — native execution of a workload (+ validation);
* ``record`` — DoublePlay-record a workload, report overhead/log sizes,
  optionally save the recording as JSON;
* ``replay`` — replay a saved recording (sequential, parallel, or one
  epoch) and verify it;
* ``diagnose`` — replay a recording's rolled-back epochs under the race
  detector and name the racing addresses;
* ``experiment`` — regenerate one of the paper's tables/figures;
* ``trace`` — summarize a Perfetto timeline written by ``--trace``
  (overlap ratio, slowest epochs, straggler attribution).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis import experiments
from repro.analysis.tables import render_table
from repro.baselines import run_native
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.machine.config import MachineConfig
from repro.obs import spans as obs_spans
from repro.obs.summary import print_summary
from repro.obs.export import (
    load_trace,
    render_summary,
    summarize_trace,
    validate_trace,
    write_chrome_trace,
)
from repro.record.recording import Recording
from repro.workloads import WORKLOADS, build_workload, workload_names

EXPERIMENTS = {
    "table1": lambda args: (
        experiments.workload_characteristics(workers=args.workers),
        ["workload", "category", "threads", "instructions", "cycles",
         "syscalls", "sync_ops", "shared_pages", "races"],
    ),
    "fig5": lambda args: (
        experiments.overhead_experiment(workers=2),
        ["workload", "native", "makespan", "overhead", "epochs", "divergences"],
    ),
    "fig6": lambda args: (
        experiments.overhead_experiment(workers=4),
        ["workload", "native", "makespan", "overhead", "epochs", "divergences"],
    ),
    "fig7": lambda args: (
        experiments.overhead_experiment(workers=args.workers, spare_cores=False),
        ["workload", "native", "makespan", "overhead", "epochs"],
    ),
    "table2": lambda args: (
        experiments.log_size_experiment(workers=args.workers),
        ["workload", "schedule", "sync", "syscall", "dp_total",
         "per_mcycle", "crew", "value_log"],
    ),
    "fig8": lambda args: (
        experiments.replay_speed_experiment(workers=args.workers),
        ["workload", "native", "sequential", "seq_x", "parallel", "par_x",
         "verified"],
    ),
    "table3": lambda args: (
        experiments.divergence_experiment(workers=args.workers),
        ["workload", "racy", "sync_hints", "epochs", "divergences",
         "recoveries", "overhead", "replay_ok"],
    ),
    "fig9": lambda args: (
        experiments.epoch_length_experiment(workers=args.workers),
        ["workload", "epoch_cycles", "epochs", "overhead", "log_bytes"],
    ),
    "fig10": lambda args: (
        experiments.baseline_comparison(workers=args.workers),
        ["workload", "doubleplay", "uniproc", "crew", "valuelog"],
    ),
}


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)


def _build(args):
    instance = build_workload(
        args.workload, workers=args.workers, scale=args.scale, seed=args.seed
    )
    machine = MachineConfig(cores=args.workers)
    return instance, machine


def cmd_list(args, out) -> int:
    rows = [
        {
            "workload": name,
            "category": WORKLOADS[name].category,
            "racy": WORKLOADS[name].racy,
        }
        for name in workload_names()
    ]
    print(render_table(rows, ["workload", "category", "racy"]), file=out)
    return 0


def cmd_run(args, out) -> int:
    instance, machine = _build(args)
    native = run_native(instance.image, instance.setup, machine)
    valid = instance.validate(native.kernel)
    print(
        f"{args.workload}: {native.duration} cycles, {native.ops} instructions, "
        f"output={native.output}, valid={valid}",
        file=out,
    )
    return 0 if valid else 1


def _trace_path(args) -> Optional[str]:
    """``--trace PATH`` wins; ``REPRO_TRACE`` is the env fallback."""
    return getattr(args, "trace", None) or os.environ.get("REPRO_TRACE") or None


class _TraceScope:
    """Starts span tracing around a record/replay and writes the Chrome
    trace on the way out (even when the run raises).

    The written payload also embeds the run's interpreter counters
    (superblock fusion, ops retired) as a snapshot delta over the scope,
    so ``repro trace summarize`` can report fusion engagement without
    re-running anything.
    """

    #: dotted counters worth shipping in a timeline (keep it small: the
    #: trace is the artifact, not a metrics dump). ``superblock.`` and
    #: ``durable.`` are whole-group prefixes.
    _COUNTER_KEYS = ("superblock.", "exec.ops_executed", "durable.")

    def __init__(self, path: Optional[str]):
        self.path = path
        self._baseline: dict = {}

    def __enter__(self):
        if self.path:
            from repro.obs import metrics as obs_metrics

            self._baseline = obs_metrics.process_stats().snapshot()
            obs_spans.start_trace(self.path)
        return self

    def _counters(self) -> dict:
        """Scope-delta of the kept counters, nested ``{group: {key: n}}``."""
        from repro.obs import metrics as obs_metrics

        current = obs_metrics.process_stats().snapshot()
        delta: dict = {}
        for dotted, value in current.items():
            if not any(
                dotted == kept or (kept.endswith(".") and dotted.startswith(kept))
                for kept in self._COUNTER_KEYS
            ):
                continue
            change = value - self._baseline.get(dotted, 0)
            if change:
                group, key = dotted.split(".", 1)
                delta.setdefault(group, {})[key] = change
        return delta

    def __exit__(self, *exc):
        if self.path:
            tracer = obs_spans.stop_trace()
            if tracer is not None:
                write_chrome_trace(tracer, self.path, counters=self._counters())
        return False


def cmd_record(args, out) -> int:
    instance, machine = _build(args)
    if args.log_spill and not args.log_dir:
        print("error: --log-spill requires --log-dir", file=out)
        return 2
    if args.flight_window is not None and not args.log_dir:
        print("error: --flight-window requires --log-dir", file=out)
        return 2
    if args.flight_window is not None and args.flight_window < 1:
        print("error: --flight-window must be >= 1", file=out)
        return 2
    if args.output and args.log_spill:
        print(
            "error: --output needs the in-memory logs, which --log-spill "
            "drops; the durable log directory already holds the recording",
            file=out,
        )
        return 2
    native = run_native(instance.image, instance.setup, machine)
    overrides = {}
    if args.unit_timeout is not None:
        overrides["unit_timeout"] = args.unit_timeout
    if args.log_dir:
        overrides["log_dir"] = args.log_dir
        overrides["log_spill"] = args.log_spill
        overrides["log_codec"] = args.log_codec
        overrides["flight_window"] = args.flight_window
        overrides["log_meta"] = {
            "name": args.workload,
            "workers": args.workers,
            "scale": args.scale,
            "seed": args.seed,
        }
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // args.epoch_divisor, 400),
        spare_cores=not args.no_spare_cores,
        use_sync_hints=not args.no_sync_hints,
        host_jobs=args.jobs,
        **overrides,
    )
    trace_path = _trace_path(args)
    with _TraceScope(trace_path):
        result = DoublePlayRecorder(
            instance.image, instance.setup, config
        ).record()
    recording = result.recording
    valid = instance.validate(
        result.committed_kernel(instance.setup, instance.image.heap_base)
    )
    print(
        f"recorded {args.workload}: {recording.epoch_count()} epochs, "
        f"{recording.divergences()} divergences, "
        f"overhead {result.overhead_vs(native.duration):.1%}, "
        f"log {recording.total_log_bytes()} bytes, valid={valid}",
        file=out,
    )
    for key, value in recording.log_breakdown().items():
        print(f"  {key}: {value}", file=out)
    print_summary(result.metrics, out)
    if trace_path:
        print(f"wrote trace to {trace_path}", file=out)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(
                {
                    "workload": {
                        "name": args.workload,
                        "workers": args.workers,
                        "scale": args.scale,
                        "seed": args.seed,
                        "jobs": args.jobs,
                    },
                    "metrics": result.metrics.snapshot(),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"saved metrics snapshot to {args.metrics_out}", file=out)
    if args.log_dir:
        print(f"saved durable log to {args.log_dir}", file=out)
    if args.output:
        payload = {
            "workload": {
                "name": args.workload,
                "workers": args.workers,
                "scale": args.scale,
                "seed": args.seed,
            },
            "recording": recording.to_plain(),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle)
        print(f"saved recording to {args.output}", file=out)
    return 0 if valid else 1


def cmd_replay(args, out) -> int:
    from repro.errors import ReplayError

    durable = os.path.isdir(args.recording)
    if args.tail:
        if not durable:
            print("error: --tail needs a durable log directory", file=out)
            return 2
        from repro.record.shards import ShardedLogReader

        try:
            reader = ShardedLogReader(args.recording)
        except ReplayError as exc:
            print(f"error: {exc}", file=out)
            return 2
        if not reader.complete:
            reason = reader.crash_reason or "no final manifest seal"
            print(f"crashed/unsealed log: {reason}", file=out)
        problems = reader.verify()
        if problems:
            for problem in problems:
                print(f"  {problem}", file=out)
            print(
                f"error: {len(problems)} integrity problem(s) — "
                "tail is not replayable",
                file=out,
            )
            return 2
    want_checkpoints = (
        args.epoch is not None or args.parallel or args.jobs > 1
    )
    try:
        meta, instance, machine, recording = _load_recording(
            args.recording,
            from_epoch=args.from_epoch,
            materialize=want_checkpoints,
        )
    except ReplayError as exc:
        print(f"error: {exc}", file=out)
        return 2
    replayer = Replayer(instance.image, machine)
    trace_path = _trace_path(args)
    with _TraceScope(trace_path):
        if args.epoch is not None:
            if not durable:
                # Durable logs hydrate checkpoints straight from the blob
                # store at load time — only JSON recordings need the
                # sequential re-execution pass.
                replayer.materialize_checkpoints(recording)
            outcome = replayer.replay_epoch(recording, args.epoch)
            label = f"epoch {args.epoch}"
        elif args.parallel or args.jobs > 1:
            if not durable:
                replayer.materialize_checkpoints(recording)
            outcome = replayer.replay_parallel(
                recording, workers=meta["workers"], jobs=args.jobs,
                unit_timeout=args.unit_timeout,
            )
            label = (
                f"parallel[jobs={outcome.jobs}]" if args.jobs > 1 else "parallel"
            )
        else:
            outcome = replayer.replay_sequential(recording)
            label = "sequential"
    if args.tail:
        first, last = recording.epoch_range()
        label = f"{label} tail (epochs {first}..{last})"
    elif args.from_epoch is not None:
        label = f"{label} from epoch {args.from_epoch}"
    status = "verified" if outcome.verified else "FAILED"
    print(
        f"{label} replay of {meta['name']}: {status}, "
        f"{outcome.epochs_replayed} epoch(s), makespan {outcome.makespan}",
        file=out,
    )
    for detail in outcome.details:
        print(f"  {detail}", file=out)
    print_summary(outcome.metrics, out)
    if trace_path:
        print(f"wrote trace to {trace_path}", file=out)
    return 0 if outcome.verified else 1


def _load_recording(
    path, from_epoch: Optional[int] = None, materialize: bool = False
):
    """Load a recording from a JSON file or a durable log directory.

    Directory paths are sharded durable logs (``repro.record.shards``):
    the recording is rebuilt from the manifest, ``from_epoch`` selects a
    suffix whose start checkpoint materialises from the blob store, and
    ``materialize`` hydrates every epoch's checkpoint (parallel replay) —
    no sequential re-execution in either case. ``from_epoch`` uses
    ``None`` as the "not given" sentinel so epoch 0 is an explicit,
    valid target.
    """
    if os.path.isdir(path):
        from repro.errors import ReplayError
        from repro.record.shards import ShardedLogReader

        reader = ShardedLogReader(path)
        meta = reader.workload
        if not meta.get("name"):
            raise ReplayError(
                f"{path}: manifest has no workload metadata (recorded "
                "without the CLI?) — cannot rebuild the program image"
            )
        instance = build_workload(
            meta["name"], workers=meta["workers"], scale=meta["scale"],
            seed=meta["seed"],
        )
        machine = MachineConfig(cores=meta["workers"])
        recording = reader.load_recording(
            from_epoch=from_epoch, materialize=materialize
        )
        return meta, instance, machine, recording
    if from_epoch is not None:
        from repro.errors import ReplayError

        raise ReplayError(
            "--from-epoch needs a durable log directory (JSON recordings "
            "hold no checkpoints to start from)"
        )
    with open(path) as handle:
        payload = json.load(handle)
    meta = payload["workload"]
    instance = build_workload(
        meta["name"], workers=meta["workers"], scale=meta["scale"],
        seed=meta["seed"],
    )
    machine = MachineConfig(cores=meta["workers"])
    from repro.checkpoint.manager import CheckpointManager
    from repro.exec.multicore import MulticoreEngine
    from repro.exec.services import LiveSyscalls
    from repro.oskernel.kernel import Kernel

    kernel = Kernel(instance.setup, instance.image.heap_base)
    boot = MulticoreEngine.boot(instance.image, machine, LiveSyscalls(kernel))
    initial = CheckpointManager().initial(boot)
    recording = Recording.from_plain(payload["recording"], initial)
    return meta, instance, machine, recording


def cmd_log(args, out) -> int:
    """Durable-log maintenance; today one subcommand, ``recover``."""
    from repro.errors import ReplayError
    from repro.record.shards import ShardedLogReader

    try:
        reader = ShardedLogReader(args.directory)
    except ReplayError as exc:
        print(f"error: {exc}", file=out)
        return 2
    state = "complete" if reader.complete else "crashed/unsealed"
    line = f"{args.directory}: {state}"
    if reader.crash_reason:
        line += f" — {reader.crash_reason}"
    print(line, file=out)
    problems = reader.verify()
    if problems:
        for problem in problems:
            print(f"  {problem}", file=out)
        print(
            f"recover FAILED: {len(problems)} integrity problem(s)", file=out
        )
        return 1
    count = reader.epoch_count()
    if not count:
        print("recover FAILED: no committed epochs survived", file=out)
        return 1
    first = reader.first_epoch()
    window = (
        f", flight window {reader.flight_window}"
        if reader.flight_window
        else ""
    )
    print(
        f"  {count} committed epoch(s), {first}..{first + count - 1}{window}",
        file=out,
    )
    try:
        meta, instance, machine, recording = _load_recording(args.directory)
    except ReplayError as exc:
        print(f"error: {exc}", file=out)
        return 2
    outcome = Replayer(instance.image, machine).replay_sequential(recording)
    status = "verified" if outcome.verified else "FAILED"
    print(
        f"tail replay of {meta['name']}: {status}, "
        f"{outcome.epochs_replayed} epoch(s)",
        file=out,
    )
    for detail in outcome.details:
        print(f"  {detail}", file=out)
    return 0 if outcome.verified else 1


def cmd_diagnose(args, out) -> int:
    from repro.analysis.diagnose import diagnose_recording

    meta, instance, machine, recording = _load_recording(args.recording)
    replayer = Replayer(instance.image, machine)
    replayer.materialize_checkpoints(recording)
    diagnoses = diagnose_recording(instance.image, machine, recording)
    if not diagnoses:
        print(f"{meta['name']}: no rolled-back epochs — nothing to diagnose",
              file=out)
        return 0
    for diagnosis in diagnoses:
        if diagnosis.racy:
            print(
                f"epoch {diagnosis.epoch_index}: race manifested on "
                f"address(es) {diagnosis.racy_addresses}",
                file=out,
            )
        else:
            print(
                f"epoch {diagnosis.epoch_index}: rolled back; race did not "
                f"re-manifest in the committed interleaving",
                file=out,
            )
    return 0


def cmd_experiment(args, out) -> int:
    rows, columns = EXPERIMENTS[args.name](args)
    print(render_table(rows, columns, title=args.name), file=out)
    return 0


def cmd_trace(args, out) -> int:
    payload = load_trace(args.trace)
    problems = validate_trace(payload)
    if problems:
        print(f"{args.trace}: invalid trace", file=out)
        for problem in problems:
            print(f"  {problem}", file=out)
        return 1
    summary = summarize_trace(payload, top=args.top)
    print(render_summary(summary), file=out)
    if args.min_overlap is not None and summary["overlap_ratio"] < args.min_overlap:
        print(
            f"overlap ratio {summary['overlap_ratio']:.2f} below required "
            f"{args.min_overlap:.2f}",
            file=out,
        )
        return 1
    return 0


def cmd_serve(args, out) -> int:
    """Multi-session service driver: N tenants over one shared fleet.

    Records (or replays) the same workload ``--sessions`` times
    concurrently through :class:`repro.service.RecordService` and
    prints per-session and fleet-wide accounting — admission waits,
    backpressure, fair-share deficits, cross-session blob dedup.
    ``--verify`` additionally checks every tenant's recording against
    a solo ``--jobs 1`` run (the service determinism contract).
    """
    import json as json_mod

    from repro.service import RecordService, ServiceConfig, SessionRequest

    config = ServiceConfig(
        jobs=args.jobs,
        max_active=args.active,
        queue_depth=args.queue_depth,
        telemetry_port=args.telemetry_port,
        telemetry_linger=args.linger,
        events_path=args.events,
        expect_dedup=args.sessions >= 2,
    )
    service = RecordService(config)
    requests = [
        SessionRequest(
            sid=f"s{i}",
            workload=args.workload,
            workers=args.workers,
            scale=args.scale,
            seed=args.seed,
            epoch_divisor=args.epoch_divisor,
            faults=(args.fault if i == args.fault_session else ""),
            trace=args.trace_sessions,
        )
        for i in range(args.sessions)
    ]
    report = service.run(requests)

    if args.replay and report.ok:
        replays = [
            SessionRequest(
                sid=f"r{i}",
                workload=args.workload,
                workers=args.workers,
                scale=args.scale,
                seed=args.seed,
                kind="replay",
                epoch_divisor=args.epoch_divisor,
                recording_plain=result.recording_plain,
            )
            for i, result in enumerate(report.results)
        ]
        replay_report = service.run(replays)
        verified = sum(1 for r in replay_report.results if r.verified)
        print(
            f"replay: {verified}/{len(replay_report.results)} sessions "
            f"verified", file=out,
        )
        if not replay_report.ok:
            for result in replay_report.results:
                if not result.ok:
                    print(f"  {result.sid}: {result.error}", file=out)
            return 1

    rows = []
    for result in report.results:
        svc = result.metrics.get("service", {})
        rows.append({
            "session": result.sid,
            "ok": result.ok,
            "epochs": result.epochs,
            "admission_ms": round(result.admission_wait * 1e3, 2),
            "p99_unit_ms": round(svc.get("unit_latency_p99", 0.0) * 1e3, 2),
            "backpressure": svc.get("backpressure_hits", 0),
            "deficits": svc.get("fair_share_deficits", 0),
            "cross_hits": svc.get("cross_session_hits", 0),
            "kb_saved": round(svc.get("cross_session_bytes_saved", 0) / 1024, 1),
        })
    print(render_table(rows, list(rows[0].keys())), file=out)
    print(json_mod.dumps(report.summary(), indent=2, sort_keys=True), file=out)
    if report.telemetry_port is not None:
        print(f"telemetry served on port {report.telemetry_port}", file=out)
    if report.health is not None:
        status = report.health.get("status", "ok")
        print(f"health: {status}", file=out)
        for problem in report.health.get("problems", ()):
            print(f"  {problem['detector']}: {problem['detail']}", file=out)

    if not report.ok:
        for result in report.results:
            if not result.ok:
                print(f"{result.sid} failed: {result.error}", file=out)
        return 1

    if args.verify:
        instance, machine = _build(args)
        native = run_native(instance.image, instance.setup, machine)
        solo_config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // args.epoch_divisor, 500),
            host_jobs=1,
        )
        solo = DoublePlayRecorder(
            instance.image, instance.setup, solo_config
        ).record()
        canon = json_mod.dumps(solo.recording.to_plain(), sort_keys=True)
        drifted = [
            result.sid
            for result in report.results
            if json_mod.dumps(result.recording_plain, sort_keys=True) != canon
        ]
        if drifted:
            print(f"VERIFY FAILED: drifted from solo jobs=1: {drifted}",
                  file=out)
            return 1
        print(f"verify: all {len(report.results)} recordings bit-identical "
              f"to solo jobs=1", file=out)
        if not report.healthy and not args.fault:
            # Organic degradation (nobody injected a fault) fails the
            # verified run; deliberately injected faults are reported
            # above but are the test's business, not a service failure.
            print("VERIFY FAILED: service health degraded", file=out)
            return 1
    return 0


def cmd_top(args, out) -> int:
    """Poll a live telemetry endpoint into a refreshing terminal table."""
    import time as time_mod

    from repro.obs.expo import http_get

    url = (args.url or f"http://127.0.0.1:{args.port}").rstrip("/")
    seen = False
    try:
        while True:
            try:
                snap = json.loads(http_get(f"{url}/sessions"))
            except (OSError, ValueError) as exc:
                if seen:
                    print("telemetry endpoint gone — service finished",
                          file=out)
                    return 0
                print(f"error: cannot reach {url}/sessions: {exc}", file=out)
                return 1
            seen = True
            rows = []
            for session in snap.get("sessions", []):
                lane = session.get("lane") or {}
                rows.append({
                    "session": session.get("sid", "?"),
                    "status": session.get("status", "?"),
                    "epochs": session.get("epochs", 0),
                    "inflight": lane.get("inflight", 0),
                    "queue_hw": lane.get("queue_high_water", 0),
                    "bp_hits": session.get("backpressure_hits", 0),
                    "p50_ms": round(
                        float(lane.get("unit_latency_p50", 0.0)) * 1e3, 2),
                    "p99_ms": round(
                        float(lane.get("unit_latency_p99", 0.0)) * 1e3, 2),
                    "faults": session.get("faults", 0),
                })
            if not args.once:
                # Home the cursor and clear: a refreshing top-style view.
                print("\x1b[2J\x1b[H", end="", file=out)
            print(
                f"sessions: {snap.get('running', 0)} running, "
                f"{snap.get('completed', 0)} completed, "
                f"{snap.get('failed', 0)} failed",
                file=out,
            )
            if rows:
                print(render_table(rows, list(rows[0].keys())), file=out)
            if args.once:
                return 0
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_events(args, out) -> int:
    """Read the tail of a JSON-lines event journal sink."""
    from repro.obs import events as obs_events

    try:
        events = obs_events.read_events(args.path, count=args.count)
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 2
    for event in events:
        print(obs_events.format_event(event), file=out)
    return 0


def _load_flat_metrics(path: str) -> dict:
    """Flat ``{"group.counter": value}`` from a ``--metrics-out`` file
    (or a bare ``RunMetrics.snapshot()`` JSON)."""
    with open(path) as handle:
        payload = json.load(handle)
    snapshot = payload.get("metrics", payload)
    flat = {}
    for group, counters in snapshot.items():
        if not isinstance(counters, dict):
            continue
        for name, value in counters.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{group}.{name}"] = value
    return flat


def cmd_metrics(args, out) -> int:
    """``repro metrics diff A.json B.json`` — compare two runs' metrics."""
    a = _load_flat_metrics(args.a)
    b = _load_flat_metrics(args.b)
    rows = []
    breaches = 0
    differing = 0
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key, 0), b.get(key, 0)
        if va == vb and not args.all:
            continue
        if va != vb:
            differing += 1
        delta = vb - va
        if va:
            rel = delta / va
            rel_text = f"{rel:+.1%}"
            breach = abs(rel) >= args.threshold
        else:
            rel_text = "new" if delta else ""
            breach = bool(delta)
        flag = ""
        if va != vb and breach:
            flag = "*"
            breaches += 1
        rows.append({
            "metric": key,
            "a": round(va, 6),
            "b": round(vb, 6),
            "delta": round(delta, 6),
            "rel": rel_text,
            "flag": flag,
        })
    if rows:
        print(render_table(
            rows, ["metric", "a", "b", "delta", "rel", "flag"]), file=out)
    print(
        f"{differing} metric(s) differ; {breaches} beyond "
        f"{args.threshold:.0%} (flagged *)",
        file=out,
    )
    if args.check and breaches:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DoublePlay reproduction: record and replay workloads "
        "on the simulated multiprocessor.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available workloads")

    run_parser = commands.add_parser("run", help="run a workload natively")
    _add_workload_args(run_parser)

    record_parser = commands.add_parser("record", help="record with DoublePlay")
    _add_workload_args(record_parser)
    record_parser.add_argument("--epoch-divisor", type=int, default=18,
                               help="epochs per native runtime (default 18)")
    record_parser.add_argument("--no-spare-cores", action="store_true")
    record_parser.add_argument("--no-sync-hints", action="store_true")
    record_parser.add_argument(
        "--jobs", type=int, default=1,
        help="host worker processes for epoch execution (default: serial; "
             "results are bit-identical at any jobs count)")
    record_parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock budget for hung host workers "
             "(default: REPRO_UNIT_TIMEOUT or 60; 0 disables)")
    record_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace (Perfetto) timeline of the run here "
             "(env fallback: REPRO_TRACE)")
    record_parser.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="stream committed epochs to a durable sharded log here "
             "(manifest + segments + blob store); replay it with "
             "'repro replay DIR [--from-epoch N]'")
    record_parser.add_argument(
        "--log-spill", action="store_true",
        help="flight-recorder mode: drop each epoch's in-memory logs once "
             "durable, bounding resident log memory (requires --log-dir)")
    record_parser.add_argument(
        "--log-codec", default=None, choices=["raw", "zlib1", "zlib6"],
        help="segment compression codec (default: REPRO_LOG_COMPRESS or "
             "zlib1)")
    record_parser.add_argument(
        "--flight-window", type=int, default=None, metavar="K",
        help="flight-recorder window: keep only the last K epochs durable "
             "— old shard extents drop from the manifest, dead segments "
             "are deleted and the blob pack compacted, so disk stays "
             "bounded by the window (requires --log-dir; env fallback: "
             "REPRO_FLIGHT_WINDOW)")
    record_parser.add_argument(
        "--metrics-out", default=None, metavar="PATH", dest="metrics_out",
        help="export the run's RunMetrics snapshot as JSON (compare two "
             "runs with 'repro metrics diff A.json B.json')")
    record_parser.add_argument("-o", "--output", help="save recording JSON here")

    replay_parser = commands.add_parser("replay", help="replay a saved recording")
    replay_parser.add_argument(
        "recording", help="recording JSON file or durable log directory")
    replay_parser.add_argument("--parallel", action="store_true",
                               help="parallel epoch replay")
    replay_parser.add_argument(
        "--from-epoch", type=int, default=None, metavar="N", dest="from_epoch",
        help="incremental replay: materialize epoch N's checkpoint from "
             "the durable log and replay only the suffix (directory "
             "recordings only; on a flight-recorder log N is the absolute "
             "run index and must be inside the surviving window)")
    replay_parser.add_argument(
        "--tail", action="store_true",
        help="recover a crashed/unsealed durable log: verify integrity, "
             "then replay the surviving committed tail")
    replay_parser.add_argument(
        "--jobs", type=int, default=1,
        help="host worker processes for parallel replay (implies --parallel; "
             "default: serial)")
    replay_parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock budget for hung host workers "
             "(default: REPRO_UNIT_TIMEOUT or 60; 0 disables)")
    replay_parser.add_argument("--epoch", type=int, default=None,
                               help="replay a single epoch index")
    replay_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace (Perfetto) timeline of the replay here "
             "(env fallback: REPRO_TRACE)")

    serve_parser = commands.add_parser(
        "serve",
        help="record N concurrent sessions over one shared worker fleet",
    )
    _add_workload_args(serve_parser)
    serve_parser.add_argument(
        "--sessions", type=int, default=4,
        help="concurrent record sessions to run (default 4)")
    serve_parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes in the shared fleet (default 2)")
    serve_parser.add_argument(
        "--active", type=int, default=8,
        help="admission bound: sessions running at once (default 8)")
    serve_parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="D",
        help="per-session outstanding-unit bound (default 2*jobs)")
    serve_parser.add_argument(
        "--epoch-divisor", type=int, default=18,
        help="epochs per native runtime (default 18)")
    serve_parser.add_argument(
        "--fault", default="", metavar="SPEC",
        help="inject REPRO_FAULT-style directives into ONE tenant "
             "(see --fault-session); every other tenant runs clean")
    serve_parser.add_argument(
        "--fault-session", type=int, default=0, metavar="K",
        help="index of the tenant that receives --fault (default 0)")
    serve_parser.add_argument(
        "--replay", action="store_true",
        help="after recording, replay every session's recording "
             "through the service and verify it")
    serve_parser.add_argument(
        "--verify", action="store_true",
        help="check every recording is bit-identical to a solo jobs=1 run")
    serve_parser.add_argument(
        "--trace-sessions", action="store_true",
        help="collect an isolated span trace inside each session")
    serve_parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="N",
        dest="telemetry_port",
        help="serve live telemetry over HTTP on this port: /metrics "
             "(Prometheus text), /sessions (per-lane JSON), /healthz "
             "(0 = pick an ephemeral port, printed after the run)")
    serve_parser.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the telemetry endpoint up this long after the last "
             "session completes (scrape window; requires "
             "--telemetry-port)")
    serve_parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="append the structured event journal as JSON lines here "
             "(read it back with 'repro events tail PATH')")

    top_parser = commands.add_parser(
        "top", help="poll a live telemetry endpoint into a terminal table"
    )
    top_parser.add_argument(
        "--url", default=None,
        help="telemetry base URL (default: http://127.0.0.1:PORT)")
    top_parser.add_argument(
        "--port", type=int, default=9900,
        help="telemetry port when --url is not given (default 9900)")
    top_parser.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default 1)")
    top_parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no screen clearing)")

    events_parser = commands.add_parser(
        "events", help="read a structured event journal"
    )
    events_sub = events_parser.add_subparsers(
        dest="events_command", required=True
    )
    tail_parser = events_sub.add_parser(
        "tail", help="print the last events of a JSON-lines journal sink"
    )
    tail_parser.add_argument(
        "path",
        help="journal sink file, or a directory holding events.jsonl")
    tail_parser.add_argument(
        "-n", "--count", type=int, default=20,
        help="how many trailing events to print (default 20)")

    metrics_parser = commands.add_parser(
        "metrics", help="work with exported RunMetrics snapshots"
    )
    metrics_sub = metrics_parser.add_subparsers(
        dest="metrics_command", required=True
    )
    diff_parser = metrics_sub.add_parser(
        "diff", help="compare two metrics snapshots with threshold "
                     "highlighting"
    )
    diff_parser.add_argument("a", help="baseline snapshot JSON")
    diff_parser.add_argument("b", help="candidate snapshot JSON")
    diff_parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="REL",
        help="flag metrics whose relative change exceeds REL "
             "(default 0.10)")
    diff_parser.add_argument(
        "--all", action="store_true",
        help="also list metrics that did not change")
    diff_parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any metric breaches the threshold")

    trace_parser = commands.add_parser(
        "trace", help="inspect a timeline written by --trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    summarize_parser = trace_sub.add_parser(
        "summarize",
        help="overlap ratio, slowest epochs, straggler attribution",
    )
    summarize_parser.add_argument("trace", help="Chrome-trace JSON file")
    summarize_parser.add_argument(
        "--top", type=int, default=5,
        help="how many slowest epochs to list (default 5)")
    summarize_parser.add_argument(
        "--min-overlap", type=float, default=None, metavar="RATIO",
        help="fail (exit 1) when the epoch overlap ratio is below RATIO "
             "— the CI gate for pipelined epoch commit")

    log_parser = commands.add_parser(
        "log", help="durable-log maintenance (crash recovery)"
    )
    log_sub = log_parser.add_subparsers(dest="log_command", required=True)
    recover_parser = log_sub.add_parser(
        "recover",
        help="open a crashed/unsealed durable log, verify it, and replay "
             "the surviving committed tail",
    )
    recover_parser.add_argument("directory", help="durable log directory")

    diagnose_parser = commands.add_parser(
        "diagnose", help="explain a recording's rollbacks (racing addresses)"
    )
    diagnose_parser.add_argument("recording", help="recording JSON file")

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate a table/figure of the evaluation"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument("--workers", type=int, default=2)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "record": cmd_record,
        "replay": cmd_replay,
        "log": cmd_log,
        "serve": cmd_serve,
        "top": cmd_top,
        "events": cmd_events,
        "metrics": cmd_metrics,
        "diagnose": cmd_diagnose,
        "experiment": cmd_experiment,
        "trace": cmd_trace,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":
    sys.exit(main())
