"""Replay of DoublePlay recordings.

Replay re-executes the *recorded* execution — the committed epoch-parallel
one. Each epoch is a uniprocessor run that starts from the epoch's start
state, injects logged syscall results, installs the epoch's sync-order
oracle, and follows the committed timeslice schedule exactly; the end
state digest must match the recording.

Two strategies, both offered by the paper:

* **Sequential replay** — one engine from the initial state, epochs in
  order. Needs only the durable logs (works on deserialised recordings).
* **Parallel replay** — every epoch re-executed concurrently from its
  checkpoint, exactly like the epoch-parallel execution at record time.
  Replay wall-time approaches the original multicore run's. Needs the
  in-memory checkpoints (or ``materialize_checkpoints`` to rebuild them).

``replay_epoch`` replays one epoch in isolation — the debugging workflow
the paper motivates (jump straight to the interval containing the bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.checkpoint import Checkpoint
from repro.core.pipeline import EpochTiming, schedule_spare_cores
from repro.errors import ReplayError
from repro.exec.services import InjectedSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.metrics import RunMetrics
from repro.oskernel.sync import SyncManager
from repro.record.recording import EpochRecord, Recording
from repro.record.sync_log import SyncOrderLog, SyncOrderOracle


def replay_epoch_unit(program, machine, unit, start, syscalls, signals):
    """Replay one packaged epoch (``repro.host.wire.ReplayEpochUnit``).

    Runs in worker processes; mirrors ``Replayer._epoch_engine`` +
    ``_verify`` exactly so serial and process-parallel replays reach
    identical verdicts and cycle counts. The heavy inputs — the hydrated
    ``start`` checkpoint and the shared syscall/signal logs — arrive
    separately from the unit skeleton: the caller resolves them through
    its blob cache (worker) or the unit's ``_local`` shortcuts
    (coordinator serial fallback). Returns ``(cycles, failure)``.
    """
    injector = InjectedSyscalls(syscalls)
    engine = UniprocessorEngine.from_checkpoint(
        program,
        machine,
        injector,
        memory_snapshot=start.memory,
        contexts=start.copy_contexts(),
        sync_state=start.sync_state,
        targets=dict(unit.targets),
        wake_blocked_io=True,
        name=f"{program.name}/replay{unit.epoch_index}",
    )
    engine.sync.oracle = SyncOrderOracle(SyncOrderLog(unit.sync_events))
    engine.install_signal_records(signals)
    engine.run_schedule(unit.schedule)
    failure = None
    if engine.state_digest() != unit.end_digest:
        failure = ReplayFailure(
            message="replayed to a different state (digest mismatch)",
            epoch=unit.epoch_index,
        )
    _count_replayed_epoch(engine.time, failure)
    return engine.time, failure


def _count_replayed_epoch(cycles: int, failure) -> None:
    """Count one replayed epoch in this process's stats registry.

    Workers and the serial paths count identically, so the merged
    ``replay.*`` metrics match at any jobs count.
    """
    stats = obs_metrics.process_stats()
    stats.add("replay.epochs")
    stats.add("replay.epoch_cycles", cycles)
    if failure is not None:
        stats.add("replay.verify_failures")


@dataclass
class ReplayFailure:
    """One epoch's verification failure, with the epoch attributed.

    ``epoch`` is the recording's epoch index, or ``None`` for failures
    that are not attributable to a single epoch (the whole-run final
    digest check). Renders like the old bare string, so log output and
    assertion messages stay readable.
    """

    message: str
    epoch: Optional[int] = None

    def __str__(self) -> str:
        if self.epoch is None:
            return self.message
        return f"epoch {self.epoch} {self.message}"


@dataclass
class ReplayResult:
    """Outcome of a replay."""

    verified: bool
    #: simulated cycles of replay execution (sum over epochs)
    total_cycles: int
    #: wall-clock-style makespan when epochs replay in parallel
    makespan: int
    epochs_replayed: int
    #: simulated executor slots the makespan was scheduled onto
    workers: int = 0
    #: host worker processes the replay actually ran on (1 = serial)
    jobs: int = 1
    details: List[ReplayFailure] = field(default_factory=list)
    #: host-parallelism accounting (per-unit worker timings); never part
    #: of the verification verdict
    host: Dict[str, object] = field(default_factory=dict)
    #: merged run-wide counters (coordinator + workers + host wire/fault
    #: accounting); observability only, never part of the verdict
    metrics: RunMetrics = field(default_factory=RunMetrics)


class Replayer:
    """Replays a :class:`Recording` of ``program``."""

    def __init__(self, program: ProgramImage, machine: MachineConfig):
        self.program = program
        self.machine = machine

    # ------------------------------------------------------------------
    def _epoch_engine(
        self, recording: Recording, epoch: EpochRecord
    ) -> UniprocessorEngine:
        start = epoch.start_checkpoint
        if start is None:
            raise ReplayError(
                f"epoch {epoch.index} has no materialised checkpoint; "
                "run materialize_checkpoints() or replay sequentially"
            )
        injector = InjectedSyscalls(recording.syscalls_for_epochs())
        engine = UniprocessorEngine.from_checkpoint(
            self.program,
            self.machine,
            injector,
            memory_snapshot=start.memory,
            contexts=start.copy_contexts(),
            sync_state=start.sync_state,
            targets=dict(epoch.targets),
            wake_blocked_io=True,
            name=f"{self.program.name}/replay{epoch.index}",
        )
        engine.sync.oracle = SyncOrderOracle(epoch.sync_log)
        engine.install_signal_records(recording.signal_records)
        return engine

    @staticmethod
    def _verify(
        engine: UniprocessorEngine, epoch: EpochRecord
    ) -> Optional[ReplayFailure]:
        if engine.state_digest() != epoch.end_digest:
            return ReplayFailure(
                message="replayed to a different state (digest mismatch)",
                epoch=epoch.index,
            )
        return None

    # ------------------------------------------------------------------
    def replay_epoch(self, recording: Recording, index: int) -> ReplayResult:
        """Replay one epoch from its checkpoint and verify its end state."""
        baseline = obs_metrics.process_stats().snapshot()
        epoch = self._find_epoch(recording, index)
        engine = self._epoch_engine(recording, epoch)
        with obs_spans.span(
            "execute", obs_spans.CAT_EPOCH, epoch=epoch.index, kind="replay"
        ):
            engine.run_schedule(epoch.schedule)
        failure = self._verify(engine, epoch)
        _count_replayed_epoch(engine.time, failure)
        return ReplayResult(
            verified=failure is None,
            total_cycles=engine.time,
            makespan=engine.time,
            epochs_replayed=1,
            workers=1,
            details=[failure] if failure else [],
            metrics=obs_metrics.build_run_metrics(
                obs_metrics.delta_since(baseline)
            ),
        )

    def replay_parallel(
        self,
        recording: Recording,
        workers: int = 0,
        jobs: int = 1,
        unit_timeout: Optional[float] = None,
        dispatcher=None,
        fault_specs=None,
    ) -> ReplayResult:
        """Replay every epoch concurrently from its checkpoint.

        ``workers`` bounds *simulated* simultaneous epoch replays (0 =
        one per epoch); the returned makespan schedules the replays onto
        that pool — all checkpoints already exist, so unlike recording
        there is no pipeline-fill constraint. ``jobs`` is the *host*
        process count: with ``jobs > 1`` the epochs actually execute
        concurrently in worker processes (they are fully independent, so
        replay is the best-scaling phase of the system), with verdicts,
        cycles and makespans bit-identical to the serial path.

        Host worker failures are contained per epoch (retry once on a
        fresh pool, then in-coordinator serial execution — see
        :mod:`repro.host.pool`), so the replay always completes with the
        serial verdict; ``unit_timeout`` bounds a hung worker's unit in
        wall-clock seconds (None = the ``REPRO_UNIT_TIMEOUT`` default,
        0 disables). Containment counters land in ``host["faults"]``.

        ``dispatcher`` overrides the executor's submission path (the
        service layer's per-session fleet handle) and ``fault_specs``
        scopes fault injection to this replay (see
        :class:`repro.host.pool.HostExecutor`).
        """
        baseline = obs_metrics.process_stats().snapshot()
        durations: List[int] = []
        details: List[ReplayFailure] = []
        host: Dict[str, object] = {"jobs": 1}
        if jobs > 1 and len(recording.epochs) > 1:
            from repro.host.pool import HostExecutor
            from repro.host.wire import replay_units_for_recording

            batch = replay_units_for_recording(recording)
            executor = HostExecutor(
                jobs,
                unit_timeout=unit_timeout,
                dispatcher=dispatcher,
                fault_specs=fault_specs,
            )
            outcomes = executor.run_replay_units(self.program, self.machine, batch)
            for _, cycles, failure in outcomes:
                if failure:
                    details.append(failure)
                durations.append(cycles + self.machine.costs.restore_base)
            host = executor.timing_summary()
        else:
            for epoch in recording.epochs:
                engine = self._epoch_engine(recording, epoch)
                with obs_spans.span(
                    "execute", obs_spans.CAT_EPOCH,
                    epoch=epoch.index, kind="replay",
                ):
                    engine.run_schedule(epoch.schedule)
                failure = self._verify(engine, epoch)
                _count_replayed_epoch(engine.time, failure)
                if failure:
                    details.append(failure)
                durations.append(engine.time + self.machine.costs.restore_base)
        pool = workers or max(len(durations), 1)
        timings = [
            EpochTiming(index=i, ready_time=0, boundary_time=0, duration=d)
            for i, d in enumerate(durations)
        ]
        pipeline = schedule_spare_cores(
            timings,
            workers=pool,
            dispatch_cost=self.machine.costs.epoch_dispatch,
            max_inflight=len(durations) + 1,
        )
        return ReplayResult(
            verified=not details,
            total_cycles=sum(durations),
            makespan=pipeline.makespan,
            epochs_replayed=len(recording.epochs),
            workers=pool,
            jobs=max(1, jobs),
            details=details,
            host=host,
            metrics=obs_metrics.build_run_metrics(
                obs_metrics.delta_since(baseline), host=host
            ),
        )

    def replay_sequential(self, recording: Recording) -> ReplayResult:
        """Replay the whole execution on one engine, epoch by epoch."""
        initial = recording.initial_checkpoint
        injector = InjectedSyscalls(recording.syscalls_for_epochs())
        engine = UniprocessorEngine.from_checkpoint(
            self.program,
            self.machine,
            injector,
            memory_snapshot=initial.memory,
            contexts=initial.copy_contexts(),
            sync_state=initial.sync_state,
            targets=None,
            wake_blocked_io=True,
            name=f"{self.program.name}/seqreplay",
        )
        engine.install_signal_records(recording.signal_records)
        baseline = obs_metrics.process_stats().snapshot()
        details: List[ReplayFailure] = []
        for epoch in recording.epochs:
            self._swap_oracle(engine, epoch)
            epoch_start_time = engine.time
            with obs_spans.span(
                "execute", obs_spans.CAT_EPOCH,
                epoch=epoch.index, kind="replay-seq",
            ):
                engine.run_schedule(epoch.schedule)
            failure = self._verify(engine, epoch)
            # The engine runs continuously, so the per-epoch cycle count
            # is the delta (fresh-engine strategies count engine.time).
            _count_replayed_epoch(engine.time - epoch_start_time, failure)
            if failure:
                details.append(failure)
                break
        if not details and recording.final_digest:
            if engine.state_digest() != recording.final_digest:
                details.append(ReplayFailure(message="final state digest mismatch"))
        return ReplayResult(
            verified=not details,
            total_cycles=engine.time,
            makespan=engine.time,
            epochs_replayed=len(recording.epochs),
            workers=1,
            details=details,
            metrics=obs_metrics.build_run_metrics(
                obs_metrics.delta_since(baseline)
            ),
        )

    # ------------------------------------------------------------------
    def materialize_checkpoints(self, recording: Recording) -> None:
        """Rebuild per-epoch start checkpoints by sequential re-execution.

        Deserialised recordings carry only the durable logs; this restores
        the in-memory checkpoints so :meth:`replay_parallel` and
        :meth:`replay_epoch` work on them.
        """
        initial = recording.initial_checkpoint
        injector = InjectedSyscalls(recording.syscalls_for_epochs())
        engine = UniprocessorEngine.from_checkpoint(
            self.program,
            self.machine,
            injector,
            memory_snapshot=initial.memory,
            contexts=initial.copy_contexts(),
            sync_state=initial.sync_state,
            targets=None,
            wake_blocked_io=True,
            name=f"{self.program.name}/materialize",
        )
        engine.install_signal_records(recording.signal_records)
        for epoch in recording.epochs:
            epoch.start_checkpoint = Checkpoint(
                index=epoch.index,
                time=engine.time,
                memory=engine.mem.snapshot(),
                contexts={t: c.copy() for t, c in engine.contexts.items()},
                sync_state=engine.sync.snapshot(merge_deferred=True),
            )
            self._swap_oracle(engine, epoch)
            engine.run_schedule(epoch.schedule)
            if engine.state_digest() != epoch.end_digest:
                raise ReplayError(
                    f"cannot materialise checkpoints: epoch {epoch.index} "
                    "digest mismatch"
                )

    @staticmethod
    def _swap_oracle(engine: UniprocessorEngine, epoch: EpochRecord) -> None:
        """Install the epoch's grant oracle on a continuously running engine.

        Grants still pending across the swap were decided under the
        previous epoch's oracle, but the committed log credits their
        acquisition to *this* epoch (the capture run inherited them from
        its start checkpoint). Marking them inherited makes their consume
        advance the new oracle identically.
        """
        engine.sync.oracle = SyncOrderOracle(epoch.sync_log)
        engine.inherited_grants = {
            tid
            for tid, ctx in engine.contexts.items()
            if ctx.pending_grant is not None and ctx.pending_grant[0] == "sync"
        }

    @staticmethod
    def _find_epoch(recording: Recording, index: int) -> EpochRecord:
        for epoch in recording.epochs:
            if epoch.index == index:
                return epoch
        raise ReplayError(f"recording has no epoch {index}")
