"""Epoch-boundary divergence detection.

At the end of an epoch-parallel execution the engine's guest state must
equal the thread-parallel checkpoint that defined the epoch's end boundary.
"Guest state" here is memory contents plus each thread's canonical context
(pc, registers, call stack, retired count, spawn/syscall counters,
exited-or-not) — see :meth:`ThreadContext.state_tuple`.

What is *deliberately excluded*, and why that is sound:

* **Wait-queue order and issued-but-unretired operations.** A thread that
  the thread-parallel run left blocked mid-LOCK compares equal to one the
  epoch-parallel run parked just before issuing the LOCK: neither op
  retired, so registers/memory/counters agree. Kernel-side queue ordering
  is scheduling state; the recorded (epoch-parallel) execution's own queue
  evolution is what replay reproduces.
* **Lock owners / semaphore values.** These are deterministic functions of
  each thread's retired-op prefix, which the context comparison already
  pins down.
* **Kernel state.** The epoch-parallel run consumes logged syscall
  results, so kernel state never feeds back into it except through the
  log; the thread-parallel checkpoint's kernel state stays authoritative.

Divergence can also be detected *mid-epoch* — syscall kind mismatch,
unexpected spawn, a stall before targets, runaway execution — in which case
the epoch runner raises :class:`DivergenceSignal` before any comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.checkpoint.checkpoint import Checkpoint
from repro.exec.uniprocessor import UniprocessorEngine


@dataclass
class DivergenceReport:
    """Outcome of an epoch-boundary state comparison."""

    matches: bool
    #: cycles the comparison itself cost (charged to the epoch executor)
    check_cost: int
    #: human-readable mismatch descriptions (empty when matches)
    details: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.matches


def compare_epoch_end(
    engine: UniprocessorEngine, boundary: Checkpoint
) -> DivergenceReport:
    """Compare an epoch executor's final state with the boundary checkpoint.

    Cost model: hashing is cached per page, so the check costs one page
    hash per page the epoch dirtied (both sides' untouched pages still
    share hashes with the previous checkpoint) plus a constant.
    """
    costs = engine.costs
    dirtied = len(engine.mem.dirty)
    check_cost = costs.checkpoint_base // 4 + costs.page_hash * max(dirtied, 1)

    details: List[str] = []
    if engine.mem.content_hash() != boundary.memory.content_hash():
        differing = _differing_pages(engine, boundary)
        details.append(
            f"memory differs on pages {sorted(differing)[:8]}"
            + ("..." if len(differing) > 8 else "")
        )
    if engine.contexts_digest() != boundary.contexts_digest():
        details.extend(_context_mismatches(engine, boundary))
    details.extend(_grant_mismatches(engine, boundary))
    return DivergenceReport(
        matches=not details, check_cost=check_cost, details=details
    )


def _grant_mismatches(engine: UniprocessorEngine, boundary: Checkpoint) -> List[str]:
    """Detect grant decisions that went to different threads.

    For a thread that *issued* a blocking sync op on both sides, being
    granted on one side but still queued on the other means the two
    executions handed the object out differently — a real divergence that
    memory/context comparison cannot see (the op is unretired either way),
    but which would corrupt the committed chimera for replay.

    A thread that issued on one side only (thread-parallel issued and was
    even granted; epoch-parallel parked just before the op) is the benign
    boundary-straddle case and is *not* flagged: the inherited-grant
    machinery (``BaseEngine.synthetic_acquisition``) keeps replay exact
    for it.
    """
    details: List[str] = []

    def sync_granted(ctx) -> bool:
        # Only "sync" grants are compared: join and syscall completions
        # are replayed lazily from exit state / the syscall log, so a
        # grant-vs-still-waiting difference for them is benign.
        return ctx.pending_grant is not None and ctx.pending_grant[0] == "sync"

    for tid in sorted(set(engine.contexts) & set(boundary.contexts)):
        mine = engine.contexts[tid]
        theirs = boundary.contexts[tid]
        mine_issued = mine.blocked is not None or mine.pending_grant is not None
        theirs_issued = theirs.blocked is not None or theirs.pending_grant is not None
        if not (mine_issued and theirs_issued):
            continue
        if sync_granted(mine) != sync_granted(theirs):
            details.append(
                f"thread {tid} grant state differs at the boundary "
                f"(granted here: {sync_granted(mine)})"
            )
    return details


def _differing_pages(engine: UniprocessorEngine, boundary: Checkpoint) -> List[int]:
    live_pages = engine.mem.pages
    boundary_pages = boundary.memory.pages
    differing = []
    for page_no in set(live_pages) | set(boundary_pages):
        mine = live_pages.get(page_no)
        theirs = boundary_pages.get(page_no)
        if mine is None or theirs is None or not mine.same_content(theirs):
            differing.append(page_no)
    return differing


def _context_mismatches(engine: UniprocessorEngine, boundary: Checkpoint) -> List[str]:
    details = []
    tids = set(engine.contexts) | set(boundary.contexts)
    for tid in sorted(tids):
        mine = engine.contexts.get(tid)
        theirs = boundary.contexts.get(tid)
        if mine is None or theirs is None:
            details.append(f"thread {tid} exists on only one side")
        elif mine.state_tuple() != theirs.state_tuple():
            details.append(
                f"thread {tid} state differs "
                f"(pc {mine.pc} vs {theirs.pc}, "
                f"retired {mine.retired} vs {theirs.retired})"
            )
    return details
