"""DoublePlay configuration.

``epoch_cycles`` is the thread-parallel budget per epoch: the recorder
checkpoints roughly every that many cycles. Shorter epochs commit the log
sooner and bound rollback work, but pay more checkpoint overhead and leave
the epoch-parallel pipeline draining more often; the epoch-length
sensitivity experiment (Fig 9) sweeps exactly this knob.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.machine.config import MachineConfig


@dataclass(frozen=True)
class DoublePlayConfig:
    """Everything the recorder needs beyond the workload itself."""

    #: simulated machine; ``machine.cores`` is the worker-thread core count
    #: the application runs on (the paper's W)
    machine: MachineConfig = MachineConfig()
    #: thread-parallel cycles per epoch (see module docstring)
    epoch_cycles: int = 6000
    #: dedicated cores for epoch-parallel execution. With spare cores the
    #: paper gives the epoch-parallel run its own W cores; without, both
    #: executions share the application's cores.
    spare_cores: bool = True
    #: number of epoch-parallel executor slots (defaults to machine.cores)
    epoch_workers: int = 0
    #: enforce thread-parallel sync acquisition order during epoch-parallel
    #: execution (the paper's synchronisation hints)
    use_sync_hints: bool = True
    #: ramp epoch lengths up from short so the pipeline fills quickly
    adaptive_epochs: bool = False
    #: bound on uncommitted epochs in flight (checkpoint memory pressure);
    #: 0 = executor slots + 1. The thread-parallel run stalls at this bound,
    #: which is where overhead grows with worker count.
    max_inflight_epochs: int = 0
    #: upper bound on recovery attempts (safety valve; a correct setup
    #: always makes progress, see repro.core.recovery)
    max_recoveries: int = 1000

    def workers(self) -> int:
        return self.machine.cores

    def executor_slots(self) -> int:
        return self.epoch_workers or self.machine.cores

    def inflight_bound(self) -> int:
        return self.max_inflight_epochs or self.executor_slots() + 1

    def replace(self, **overrides) -> "DoublePlayConfig":
        return dataclasses.replace(self, **overrides)
