"""DoublePlay configuration.

``epoch_cycles`` is the thread-parallel budget per epoch: the recorder
checkpoints roughly every that many cycles. Shorter epochs commit the log
sooner and bound rollback work, but pay more checkpoint overhead and leave
the epoch-parallel pipeline draining more often; the epoch-length
sensitivity experiment (Fig 9) sweeps exactly this knob.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Optional

from repro.machine.config import MachineConfig


def default_unit_timeout() -> float:
    """Per-unit host timeout: ``REPRO_UNIT_TIMEOUT`` seconds, else 60.

    This is the hang-containment budget for host worker processes
    (:mod:`repro.host.pool`); 0 disables hang detection. It lives here —
    not in the host layer — so building a config never imports the host
    package (``host_jobs=1`` must stay import-free of it).
    """
    raw = os.environ.get("REPRO_UNIT_TIMEOUT", "")
    if not raw:
        return 60.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 60.0


def pipelined_commit_enabled() -> bool:
    """Speculative epoch dispatch during the thread-parallel run.

    ``REPRO_PIPELINE=0`` disables the two-deep commit pipeline and
    restores the strictly phased segment flow (thread-parallel run
    first, then every epoch dispatch). Recordings are bit-identical
    either way; only wall-clock overlap changes.
    """
    return os.environ.get("REPRO_PIPELINE", "") != "0"


def _default_host_jobs() -> int:
    """Default host-process count: the ``REPRO_TEST_JOBS`` env var, else 1.

    The env hook lets CI sweep the entire tier-1 suite over the
    process-parallel path without touching a single test — results are
    bit-identical at any jobs count, so the same assertions must pass.
    """
    raw = os.environ.get("REPRO_TEST_JOBS", "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class DoublePlayConfig:
    """Everything the recorder needs beyond the workload itself."""

    #: simulated machine; ``machine.cores`` is the worker-thread core count
    #: the application runs on (the paper's W)
    machine: MachineConfig = MachineConfig()
    #: thread-parallel cycles per epoch (see module docstring)
    epoch_cycles: int = 6000
    #: dedicated cores for epoch-parallel execution. With spare cores the
    #: paper gives the epoch-parallel run its own W cores; without, both
    #: executions share the application's cores.
    spare_cores: bool = True
    #: number of epoch-parallel executor slots (defaults to machine.cores)
    epoch_workers: int = 0
    #: enforce thread-parallel sync acquisition order during epoch-parallel
    #: execution (the paper's synchronisation hints)
    use_sync_hints: bool = True
    #: ramp epoch lengths up from short so the pipeline fills quickly
    adaptive_epochs: bool = False
    #: bound on uncommitted epochs in flight (checkpoint memory pressure);
    #: 0 = executor slots + 1. The thread-parallel run stalls at this bound,
    #: which is where overhead grows with worker count.
    max_inflight_epochs: int = 0
    #: upper bound on recovery attempts (safety valve; a correct setup
    #: always makes progress, see repro.core.recovery)
    max_recoveries: int = 1000
    #: host worker *processes* for epoch execution (1 = serial, today's
    #: code path, zero extra dependencies). Orthogonal to
    #: ``epoch_workers``, which is simulated executor slots: ``host_jobs``
    #: changes only wall-clock, never a digest, makespan or recording.
    host_jobs: int = dataclasses.field(default_factory=_default_host_jobs)
    #: per-unit wall-clock timeout (seconds) for host worker processes —
    #: the hang-containment budget, not a simulated quantity. Defaults to
    #: ``REPRO_UNIT_TIMEOUT`` (else 60); 0 disables hang detection.
    #: Irrelevant at ``host_jobs=1``.
    unit_timeout: float = dataclasses.field(default_factory=default_unit_timeout)
    #: durable sharded log directory (``repro.record.shards``). When set,
    #: committed epochs stream to disk as they commit — the recording on
    #: disk is {manifest, segments, blob store} and ``repro replay`` can
    #: start from any epoch's checkpoint. None = in-memory only.
    log_dir: Optional[str] = None
    #: flight-recorder mode: drop each epoch's logs (and skip the final
    #: syscall/signal log retention) once its shards are durable, keeping
    #: resident log memory bounded by the commit pipeline instead of the
    #: run length. Requires ``log_dir``; the returned recording can then
    #: only be replayed by loading it back from the durable log.
    log_spill: bool = False
    #: segment compression codec override (``raw``/``zlib1``/``zlib6``);
    #: None = ``REPRO_LOG_COMPRESS`` or the measured default (zlib1).
    log_codec: Optional[str] = None
    #: workload metadata recorded verbatim in the durable manifest so
    #: ``repro replay <dir>`` can rebuild the program (name/workers/...).
    log_meta: Optional[dict] = None
    #: rolling flight-recorder window: keep only the last K epochs
    #: durable (pre-window shard extents drop from the manifest, dead
    #: segments are deleted, the blob pack is compacted), bounding
    #: on-disk bytes by the window regardless of run length. Requires
    #: ``log_dir``. None = keep everything; the ``REPRO_FLIGHT_WINDOW``
    #: env var supplies a default when the field is unset.
    flight_window: Optional[int] = None
    #: host submission-path override (``repro.service`` injects each
    #: session's fleet dispatcher here so N concurrent sessions share
    #: one worker pool). None = the executor's own direct pool path.
    #: Never affects recordings — only where epoch units execute.
    host_dispatcher: Optional[object] = None
    #: per-run fault-injection directives overriding the ``REPRO_FAULT``
    #: env (same grammar). The service scopes injected faults to one
    #: tenant with this; ``""`` explicitly disables injection even when
    #: the env var is set. None = read the env as before.
    host_faults: Optional[str] = None

    def workers(self) -> int:
        return self.machine.cores

    def executor_slots(self) -> int:
        return self.epoch_workers or self.machine.cores

    def inflight_bound(self) -> int:
        return self.max_inflight_epochs or self.executor_slots() + 1

    def resolve_host_jobs(self) -> int:
        return max(1, self.host_jobs)

    def resolve_flight_window(self) -> Optional[int]:
        """Effective flight window: the explicit field, else the env var."""
        if self.flight_window is not None:
            return self.flight_window
        from repro.record.shards import _flight_window_env

        return _flight_window_env()

    def replace(self, **overrides) -> "DoublePlayConfig":
        return dataclasses.replace(self, **overrides)
