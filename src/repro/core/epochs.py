"""Epoch boundary policies.

A policy answers one question, evaluated after every retired op of the
thread-parallel execution: *is it time to take a checkpoint?* Boundaries
may fall at any op boundary — the retired-op-count targets mechanism (see
``repro.core.epoch_runner``) makes every boundary well-defined without
quiescing threads at special instructions.
"""

from __future__ import annotations


class FixedEpochPolicy:
    """Checkpoint every ``epoch_cycles`` of thread-parallel time."""

    def __init__(self, epoch_cycles: int):
        if epoch_cycles <= 0:
            raise ValueError(f"epoch_cycles must be positive, got {epoch_cycles}")
        self.epoch_cycles = epoch_cycles
        self._last_boundary = 0

    def start_segment(self, time: int) -> None:
        """Reset at a (re)started thread-parallel execution."""
        self._last_boundary = time

    def should_checkpoint(self, time: int) -> bool:
        return time - self._last_boundary >= self.epoch_cycles

    def next_boundary(self) -> int:
        """The exact time at which ``should_checkpoint`` starts firing.

        The invariant ``should_checkpoint(t) == (t >= next_boundary())``
        lets the engines run fused superblocks up to the boundary instead
        of re-evaluating the stop check after every op (the ``stop_after``
        contract of ``MulticoreEngine.run``).
        """
        return self._last_boundary + self.epoch_cycles

    def note_checkpoint(self, time: int) -> None:
        self._last_boundary = time


class AdaptiveEpochPolicy(FixedEpochPolicy):
    """Ramped epoch lengths: short early epochs fill the pipeline fast.

    The epoch-parallel execution of epoch k cannot start before checkpoint
    k exists; with fixed-length epochs the pipeline idles for one full
    epoch at startup. Ramping (¼, ½, ¾, then full length) gets spare cores
    busy almost immediately — DoublePlay's epoch-sizing adaptivity in its
    simplest useful form.
    """

    RAMP = (4, 2, 2, 1)  # divisors for the first epochs

    def __init__(self, epoch_cycles: int):
        super().__init__(epoch_cycles)
        self._epoch_index = 0

    def should_checkpoint(self, time: int) -> bool:
        divisor = self.RAMP[min(self._epoch_index, len(self.RAMP) - 1)]
        return time - self._last_boundary >= max(self.epoch_cycles // divisor, 1)

    def next_boundary(self) -> int:
        divisor = self.RAMP[min(self._epoch_index, len(self.RAMP) - 1)]
        return self._last_boundary + max(self.epoch_cycles // divisor, 1)

    def note_checkpoint(self, time: int) -> None:
        super().note_checkpoint(time)
        self._epoch_index += 1

    def start_segment(self, time: int) -> None:
        super().start_segment(time)
        # keep the ramp position: after a recovery the pipeline refills,
        # so ramping again is the right behaviour
        self._epoch_index = 0
