"""Forward recovery.

When an epoch-parallel execution diverges (a data race resolved differently
than in the thread-parallel run), DoublePlay does not retry until the runs
agree — it makes the uniprocessor execution *authoritative*. We re-execute
the offending epoch as a **live** uniprocessor run from its start
checkpoint: guest state, synchronisation state and kernel state are all
restored, system calls execute for real (and are logged), and the captured
timeslice schedule becomes the committed log for the epoch. The run cannot
diverge from anything because it is no longer following anyone.

The thread-parallel execution and every later in-flight epoch are
discarded; recording resumes from the recovered state. Each recovery
commits a full epoch of progress, so recording always terminates.

Forward recovery handles *guest* divergence — a data race resolving
differently across the two executions. *Host* failures (a worker process
crashing or hanging while it re-executes an epoch) are a different layer
with the same disposability insight: the epoch attempt is discarded and
re-run, by :class:`repro.host.pool.HostExecutor`'s retry-then-serial
containment. The two compose — a recovered epoch is always executed on
the coordinator (it needs a live kernel), so host fault containment can
never interleave with, or corrupt, a forward recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.checkpoint.checkpoint import Checkpoint
from repro.checkpoint.manager import CheckpointManager
from repro.errors import SimulationError
from repro.exec.services import LiveSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallRecord
from repro.record.schedule_log import ScheduleLog
from repro.record.sync_log import SyncOrderLog


@dataclass
class RecoveryResult:
    """Committed outcome of a forward-recovery re-execution."""

    schedule: ScheduleLog
    #: cycles of re-execution (app timeline), excluding restore costs
    duration: int
    committed: Checkpoint
    end_digest: int
    #: True when the program ran to completion during recovery
    finished: bool
    #: grant order the re-execution used (replay's oracle for this epoch)
    committed_sync: "SyncOrderLog" = None


def recover_epoch(
    program: ProgramImage,
    machine: MachineConfig,
    setup: KernelSetup,
    start: Checkpoint,
    epoch_budget_cycles: int,
    syscall_log: List[SyscallRecord],
    signal_log: Optional[List] = None,
    name: str = "",
) -> RecoveryResult:
    """Re-execute one epoch live on one CPU; its result is the truth.

    ``epoch_budget_cycles`` bounds the re-execution (one serial epoch);
    the run also ends early if the program completes. New syscall
    completions are appended to ``syscall_log`` — the caller must already
    have pruned the abandoned thread-parallel records past ``start``.
    """
    if start.kernel_state is None:
        raise SimulationError(
            "forward recovery needs a checkpoint with kernel state"
        )
    kernel = Kernel(setup, program.heap_base)
    kernel.restore(start.kernel_state)
    services = LiveSyscalls(kernel, syscall_log)
    engine = UniprocessorEngine.from_checkpoint(
        program,
        machine,
        services,
        memory_snapshot=start.memory,
        contexts=start.copy_contexts(),
        sync_state=start.sync_state,
        targets=None,
        wake_blocked_io=False,
        start_time=start.time,
        name=name or f"{program.name}/recovery@{start.index}",
    )

    committed_events: List = []
    engine.acquisition_log = committed_events
    engine.halt_on_fault = True  # a crash commits the pre-crash state
    if signal_log is not None:
        engine.signal_log = signal_log

    def budget_reached(running: UniprocessorEngine) -> bool:
        return running.time - start.time >= epoch_budget_cycles

    outcome = engine.run(stop_check=budget_reached)
    duration = engine.time - start.time
    manager = CheckpointManager()
    committed = manager.take(engine, index=start.index + 1)
    return RecoveryResult(
        schedule=outcome.schedule,
        duration=duration,
        committed=committed,
        end_digest=committed.digest(),
        finished=engine.all_exited() or outcome.status == "faulted",
        committed_sync=SyncOrderLog(tuple(committed_events)),
    )
