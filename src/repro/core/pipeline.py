"""Timing composition of the two executions.

The recorder establishes *what* happens (logically deterministic); this
module establishes *when*, on a machine with a fixed number of cores:

* **Spare cores** (:func:`schedule_spare_cores`): the thread-parallel
  execution owns the application's W cores and epoch executors own their
  own pool. Epoch k starts when its checkpoint exists and a pool worker is
  free; it cannot commit before its end boundary is known (checkpoint
  k+1); the thread-parallel run is throttled when more than
  ``max_inflight`` epochs are uncommitted (checkpoint memory bound), which
  is where DoublePlay's residual overhead comes from.
* **No spare cores** (:func:`schedule_shared_cores`): both executions
  share the W cores. We use a fluid (processor-sharing) model: at any
  instant every active entity gets ``min(1, cores / total-demand)`` of a
  core; the thread-parallel job demands W, each epoch executor demands 1.
  This is a documented approximation — exact enough for the paper's
  shape (overhead around 2× without spare cores) without simulating the
  two executions' instruction streams interleaved on shared hardware.

Times here are the *recording* timeline (when log entries commit). Guest-
visible clocks always follow the thread-parallel (or recovery) execution —
feedback of throttling stalls into guest clocks is a second-order effect
this model deliberately omits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class EpochTiming:
    """Inputs per epoch: availability and cost."""

    index: int
    #: app-timeline instant the start checkpoint exists
    ready_time: int
    #: app-timeline instant the end boundary (next checkpoint) exists
    boundary_time: int
    #: epoch-parallel execution cycles (including the divergence check)
    duration: int


@dataclass(frozen=True)
class EpochCommit:
    """Outputs per epoch: when it ran and when its log committed."""

    index: int
    start: int
    finish: int


@dataclass
class PipelineResult:
    commits: List[EpochCommit]
    #: when the whole recording is durable
    makespan: int
    #: thread-parallel stall caused by the in-flight bound
    throttle_stall: int


def schedule_spare_cores(
    epochs: Sequence[EpochTiming],
    workers: int,
    dispatch_cost: int,
    max_inflight: int = 0,
    worker_free: Sequence[int] = (),
    segment_start: int = 0,
) -> PipelineResult:
    """Pipeline epochs onto a dedicated executor pool.

    ``worker_free`` carries pool availability across recovery segments.
    """
    if workers <= 0:
        raise ValueError(f"need at least one epoch worker, got {workers}")
    free = list(worker_free) if worker_free else [segment_start] * workers
    if len(free) != workers:
        raise ValueError("worker_free length must equal workers")
    inflight_bound = max_inflight or 2 * workers
    commits: List[EpochCommit] = []
    stall = 0
    for position, epoch in enumerate(epochs):
        ready = epoch.ready_time + stall
        # Throttle: checkpoint k is only taken once epoch k - bound
        # committed (bounded uncommitted state).
        gate_index = position - inflight_bound
        if gate_index >= 0:
            gate = commits[gate_index].finish
            if gate > ready:
                stall += gate - ready
                ready = gate
        slot = min(range(workers), key=lambda w: (free[w], w))
        start = max(ready + dispatch_cost, free[slot])
        finish = max(start + epoch.duration, epoch.boundary_time + stall)
        free[slot] = finish
        commits.append(EpochCommit(index=epoch.index, start=start, finish=finish))
    makespan = max((c.finish for c in commits), default=segment_start)
    return PipelineResult(commits=commits, makespan=makespan, throttle_stall=stall)


def schedule_shared_cores(
    epochs: Sequence[EpochTiming],
    tp_span: int,
    cores: int,
    dispatch_cost: int,
    segment_start: int = 0,
) -> PipelineResult:
    """Fluid-share both executions over one core pool.

    ``tp_span`` is the thread-parallel segment's solo duration; epoch
    ``ready_time``/``boundary_time`` are solo-timeline instants, reached
    when the (dilated) thread-parallel job has done that much of its work.
    """
    if cores <= 0:
        raise ValueError(f"need at least one core, got {cores}")
    now = float(segment_start)
    tp_progress = float(segment_start)
    tp_weight = cores  # the parallel app can use the whole machine
    pending = sorted(epochs, key=lambda e: e.index)
    active: List[List] = []  # [remaining, EpochTiming, start]
    commits: List[EpochCommit] = []
    tp_active = tp_span > 0

    def demand() -> float:
        return (tp_weight if tp_active else 0) + len(active)

    while tp_active or active or pending:
        d = demand()
        if d == 0:
            # Only pending epochs left but the thread-parallel job is done:
            # every checkpoint exists; admit all.
            for epoch in pending:
                active.append([float(epoch.duration + dispatch_cost), epoch, now])
            pending = []
            continue
        share = min(1.0, cores / d)
        tp_rate = share if tp_active else 0.0
        # Next event: an executor finishing, the thread-parallel job
        # finishing, or it reaching the next pending checkpoint.
        horizons = []
        for entry in active:
            horizons.append(entry[0] / share)
        if tp_active:
            horizons.append((segment_start + tp_span - tp_progress) / tp_rate)
            if pending:
                target = pending[0].ready_time
                if target > tp_progress:
                    horizons.append((target - tp_progress) / tp_rate)
                else:
                    horizons.append(0.0)
        dt = min(horizons)
        now += dt
        if tp_active:
            tp_progress += dt * tp_rate
        for entry in active:
            entry[0] -= dt * share
        finished = [entry for entry in active if entry[0] <= 1e-9]
        for entry in finished:
            active.remove(entry)
            epoch = entry[1]
            finish = max(now, _boundary_instant(epoch, tp_progress, now))
            commits.append(
                EpochCommit(index=epoch.index, start=int(entry[2]), finish=int(round(finish)))
            )
        while pending and tp_progress + 1e-9 >= pending[0].ready_time:
            epoch = pending.pop(0)
            active.append([float(epoch.duration + dispatch_cost), epoch, now])
        if tp_active and tp_progress + 1e-9 >= segment_start + tp_span:
            tp_active = False
    commits.sort(key=lambda c: c.index)
    makespan = max((c.finish for c in commits), default=segment_start)
    return PipelineResult(commits=commits, makespan=int(makespan), throttle_stall=0)


def schedule_host_units(durations: Sequence[float], workers: int) -> float:
    """Makespan of measured host work units on ``workers`` host cores.

    Greedy in-order list scheduling — exactly how the host executor's
    pool hands queued units to free workers. The benchmarks feed this
    measured per-unit worker CPU times to project what a run costs on a
    host with more cores than the measuring machine.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    free = [0.0] * workers
    for duration in durations:
        slot = min(range(workers), key=lambda w: (free[w], w))
        free[slot] += float(duration)
    return max(free, default=0.0)


def _boundary_instant(epoch: EpochTiming, tp_progress: float, now: float) -> float:
    """When the epoch's end boundary became known (shared-core model).

    If the thread-parallel job already passed the boundary, it is known by
    ``now``; otherwise the executor would have had to wait — but an
    executor only finishes after re-running the whole epoch, by which time
    the slower-by-sharing thread-parallel job has at most the same work
    left, so in practice ``now`` dominates. Kept for safety.
    """
    if tp_progress >= epoch.boundary_time:
        return now
    return now + (epoch.boundary_time - tp_progress)
