"""Epoch-parallel execution of a single epoch.

An epoch executor re-runs one epoch of the program on one simulated CPU:

* start state: the epoch's start checkpoint (a private copy-on-write view
  of its memory snapshot — "different epochs operate on different copies
  of the memory");
* inputs: the recorded syscall log (injected, never a live kernel) and,
  optionally, the thread-parallel sync acquisition order as a grant oracle;
* stop condition: every thread reaches the retired-op count the *next*
  checkpoint recorded for it;
* output: the timeslice schedule (the log DoublePlay keeps), the epoch's
  uniprocessor duration, and a divergence verdict against the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.checkpoint.checkpoint import Checkpoint
from repro.core.divergence import DivergenceReport, compare_epoch_end
from repro.errors import DivergenceSignal
from repro.exec.services import InjectedSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.instructions import Op
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.obs import histo as obs_histo
from repro.obs import metrics as obs_metrics
from repro.oskernel.syscalls import SyscallRecord
from repro.record.schedule_log import ScheduleLog
from repro.record.sync_log import SyncOrderLog, SyncOrderOracle


@dataclass
class EpochRunResult:
    """Everything the recorder needs to commit or recover an epoch."""

    epoch_index: int
    ok: bool
    schedule: ScheduleLog
    #: uniprocessor cycles the attempt took (including the divergence
    #: check when one ran)
    duration: int
    #: end-state digest (only meaningful when ok)
    end_digest: int = 0
    reason: str = ""
    report: Optional[DivergenceReport] = None
    #: syscall records consumed from the injected log
    syscalls_consumed: int = 0
    #: the acquisition order the run actually performed. This — not the
    #: thread-parallel hints — goes into the recording, so replay pins the
    #: committed execution's grant decisions exactly.
    committed_sync: SyncOrderLog = SyncOrderLog()
    #: sync objects the grant oracle consulted past its recorded order
    #: (missing or exhausted queue). A speculative run on *truncated*
    #: hints is bit-identical to the full-suffix run unless one of these
    #: objects has hint events past the truncation cut — the recorder's
    #: speculation validity check (see ``DoublePlayRecorder``).
    starved: Tuple[int, ...] = ()


def run_epoch(
    program: ProgramImage,
    machine: MachineConfig,
    epoch_index: int,
    start: Checkpoint,
    boundary: Checkpoint,
    syscall_records: Sequence[SyscallRecord],
    sync_log: SyncOrderLog,
    use_sync_hints: bool,
    signal_records: Sequence = (),
) -> EpochRunResult:
    """Execute one epoch uniprocessor-style and verify its end state.

    Counts the attempt in this process's stats registry (epochs run,
    cycles, syscalls injected, divergences) — on a worker those counters
    ride home on the unit result; see :mod:`repro.obs.metrics`.
    """
    result = _run_epoch(
        program,
        machine,
        epoch_index,
        start,
        boundary,
        syscall_records,
        sync_log,
        use_sync_hints,
        signal_records,
    )
    stats = obs_metrics.process_stats()
    stats.add("exec.epochs")
    stats.add("exec.epoch_cycles", result.duration)
    stats.add("exec.syscalls_injected", result.syscalls_consumed)
    if not result.ok:
        stats.add("exec.divergences")
    # Guest cycles are deterministic, so this histogram is identical at
    # any jobs count (worker buckets ride home on the unit result).
    obs_histo.observe("epoch_cycles", result.duration)
    return result


def _run_epoch(
    program: ProgramImage,
    machine: MachineConfig,
    epoch_index: int,
    start: Checkpoint,
    boundary: Checkpoint,
    syscall_records: Sequence[SyscallRecord],
    sync_log: SyncOrderLog,
    use_sync_hints: bool,
    signal_records: Sequence = (),
) -> EpochRunResult:
    injector = InjectedSyscalls(syscall_records)
    boundary_blocked = {}
    for tid, ctx in boundary.contexts.items():
        if ctx.blocked is not None:
            boundary_blocked[tid] = ctx.blocked.kind
        elif ctx.pending_grant is not None and ctx.pending_grant[0] == "sync":
            # Granted-but-unconsumed at the boundary. Barrier arrivals and
            # condition waits have *pre-retirement effects other threads
            # depend on* (the arrival count; the atomic mutex release), so
            # the epoch executor must still issue them. Lock/semaphore
            # grants need no issue: a boundary-granted lock is that lock's
            # last in-epoch acquisition, and the oracle holds it free for
            # the thread.
            op = program.fetch(ctx.pc).op
            if op is Op.BARRIER:
                boundary_blocked[tid] = "barrier"
            elif op is Op.CONDWAIT:
                boundary_blocked[tid] = "cond"
    engine = UniprocessorEngine.from_checkpoint(
        program,
        machine,
        injector,
        memory_snapshot=start.memory,
        contexts=start.copy_contexts(),
        sync_state=start.sync_state,
        targets=boundary.targets(),
        boundary_blocked=boundary_blocked,
        wake_blocked_io=True,
        name=f"{program.name}/epoch{epoch_index}",
    )
    if use_sync_hints:
        engine.sync.oracle = SyncOrderOracle(sync_log)
        # The hints are a thread-parallel *suffix*: events for grants the
        # executor inherits from its start checkpoint are not in it.
        engine.oracle_includes_inherited = False
    engine.install_signal_records(signal_records)
    committed_events: list = []
    engine.acquisition_log = committed_events
    try:
        outcome = engine.run()
    except DivergenceSignal as signal:
        return EpochRunResult(
            epoch_index=epoch_index,
            ok=False,
            schedule=ScheduleLog(),
            duration=engine.time,
            reason=f"mid-epoch divergence: {signal.reason}",
            syscalls_consumed=injector.consumed,
            starved=_oracle_starvation(engine),
        )
    report = compare_epoch_end(engine, boundary)
    duration = outcome.duration + report.check_cost
    committed_sync = SyncOrderLog(tuple(committed_events))
    if not report.matches:
        return EpochRunResult(
            epoch_index=epoch_index,
            ok=False,
            schedule=outcome.schedule,
            duration=duration,
            reason="end-state mismatch: " + "; ".join(report.details[:3]),
            report=report,
            syscalls_consumed=injector.consumed,
            starved=_oracle_starvation(engine),
        )
    return EpochRunResult(
        epoch_index=epoch_index,
        ok=True,
        schedule=outcome.schedule,
        duration=duration,
        end_digest=engine.state_digest(),
        report=report,
        syscalls_consumed=injector.consumed,
        committed_sync=committed_sync,
        starved=_oracle_starvation(engine),
    )


def _oracle_starvation(engine: UniprocessorEngine) -> Tuple[int, ...]:
    """The run's starved sync objects (empty when hints were off)."""
    oracle = getattr(engine.sync, "oracle", None)
    if oracle is None:
        return ()
    return tuple(sorted(oracle.starved))
