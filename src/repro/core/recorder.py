"""The DoublePlay recorder.

Record proceeds in *segments*. Within a segment:

1. The **thread-parallel execution** runs the program on the application's
   W cores with a live kernel, logging every syscall completion and every
   sync acquisition, and taking a checkpoint at each epoch boundary.
2. Each epoch is then re-executed by an **epoch-parallel executor**
   (``repro.core.epoch_runner``): one simulated CPU, injected syscalls,
   hint-ordered grants, stopping at the next checkpoint's per-thread
   retired-op targets. Matching end state ⇒ the epoch's timeslice schedule
   is committed to the recording.
3. On divergence, forward recovery (``repro.core.recovery``) re-executes
   the epoch live, commits its result, discards the abandoned
   thread-parallel future, and a new segment starts from the recovered
   state.

Logical execution and timing are deliberately separated: step 2's results
cannot depend on *when* executors run (they are deterministic functions of
checkpoints and logs), so the recorder replays the commit sequence through
``repro.core.pipeline`` afterwards to obtain the recording makespan on a
machine with or without spare cores. Overhead numbers in the benchmarks
are ``makespan / native - 1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.checkpoint import Checkpoint
from repro.checkpoint.manager import CheckpointManager
from repro.core.config import DoublePlayConfig, pipelined_commit_enabled
from repro.core.epoch_runner import run_epoch
from repro.core.epochs import AdaptiveEpochPolicy, FixedEpochPolicy
from repro.core.pipeline import (
    EpochTiming,
    PipelineResult,
    schedule_shared_cores,
    schedule_spare_cores,
)
from repro.core.recovery import recover_epoch
from repro.errors import SimulationError
from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.isa.program import ProgramImage
from repro.obs import events as obs_events
from repro.obs import histo as obs_histo
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.metrics import RunMetrics
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallRecord
from repro.record.recording import (
    EpochRecord,
    Recording,
    prune_signal_records,
    prune_syscall_records,
)
from repro.record.sync_log import SyncOrderLog


@dataclass
class RecordResult:
    """A recording plus the timing the benchmarks report."""

    recording: Recording
    #: recording-timeline instant the last epoch committed
    makespan: int
    #: recording-timeline instant the thread-parallel execution finished
    tp_finish: int
    #: guest-visible duration of the committed execution
    app_time: int
    stats: Dict[str, int] = field(default_factory=dict)
    #: kernel state of the committed execution's final checkpoint
    final_kernel_state: object = None
    #: guest crash message when the recorded program faulted (the
    #: recording then reproduces the state at the instant before the crash)
    fault: Optional[str] = None
    #: host-parallelism accounting (jobs, per-unit worker timings). Never
    #: part of the recording — recordings are bit-identical at any jobs
    #: count, host numbers by construction are not.
    host: Dict[str, object] = field(default_factory=dict)
    #: merged run-wide counters: coordinator execution counters, worker
    #: counters harvested through unit results, host wire/fault
    #: accounting, and the recording stats — one queryable snapshot
    #: (see :mod:`repro.obs.metrics`). Observability only, never part
    #: of the recording.
    metrics: RunMetrics = field(default_factory=RunMetrics)

    def overhead_vs(self, native_time: int) -> float:
        """Fractional logging overhead relative to a native run."""
        if native_time <= 0:
            raise ValueError("native_time must be positive")
        return self.makespan / native_time - 1.0

    def committed_kernel(self, setup: KernelSetup, heap_base: int) -> Kernel:
        """Materialise the committed execution's final kernel.

        Lets workload validators check the *recorded* execution's output
        (files written, responses sent), not just state digests.
        """
        kernel = Kernel(setup, heap_base)
        kernel.restore(self.final_kernel_state)
        return kernel


class DoublePlayRecorder:
    """Records one program execution with uniparallelism."""

    def __init__(
        self,
        program: ProgramImage,
        setup: KernelSetup,
        config: Optional[DoublePlayConfig] = None,
    ):
        self.program = program
        self.setup = setup
        self.config = config or DoublePlayConfig()
        self.machine = self.config.machine

    # ------------------------------------------------------------------
    def _segment_epoch_results(
        self,
        executor,
        checkpoints: List[Checkpoint],
        hints: List,
        hint_marks: List[int],
        syscall_log: List[SyscallRecord],
        signal_log: List,
        first_epoch_index: int,
        preloaded: Optional[Dict[int, tuple]] = None,
    ):
        """Yield ``(position, EpochRunResult)`` for a segment, in order.

        Serial path (``executor is None``): exactly the pre-host-layer
        loop — lazy, one epoch at a time, so an early divergence runs
        nothing past it. Parallel path: every epoch of the segment fans
        out to worker processes; results merge back in position order and
        a divergence at position *k* cancels everything after it. Both
        paths stop after the first failure; both produce identical result
        streams, because epoch execution is a deterministic function of
        the checkpoints and logs. ``preloaded`` carries the segment's
        validated speculative results (parallel path only — speculation
        requires an executor).
        """
        positions = len(checkpoints) - 1
        if executor is None or positions <= 1:
            for position in range(positions):
                # The executor gets the hint *suffix* from its epoch's
                # start to the segment end: grants decided near the epoch
                # boundary retire in later epochs, and cutting the hints
                # at the boundary would make the executor hand objects out
                # differently than the thread-parallel run did.
                sync_slice = SyncOrderLog(tuple(hints[hint_marks[position] :]))
                with obs_spans.span(
                    "execute", obs_spans.CAT_EPOCH,
                    epoch=first_epoch_index + position,
                    position=position, kind="record",
                ):
                    result = run_epoch(
                        self.program,
                        self.machine,
                        first_epoch_index + position,
                        checkpoints[position],
                        checkpoints[position + 1],
                        syscall_log,
                        sync_slice,
                        self.config.use_sync_hints,
                        signal_records=signal_log,
                    )
                yield position, result
                if not result.ok:
                    return
            return
        from repro.host.wire import record_units_for_segment

        batch = record_units_for_segment(
            checkpoints,
            hints,
            hint_marks,
            syscall_log,
            signal_log,
            first_epoch_index,
            self.config.use_sync_hints,
        )
        yield from executor.run_record_units(
            self.program, self.machine, batch, preloaded=preloaded
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _speculation_valid(
        result,
        cuts: tuple,
        boundary_cp: Checkpoint,
        hints: List,
        syscall_log: List[SyscallRecord],
        signal_log: List,
    ) -> bool:
        """May a speculative result stand in for the full-knowledge run?

        The unit ran on snapshots cut mid-segment — hints truncated at
        ``c_hint``, logs at ``c_sys``/``c_sig`` — while the full-knowledge
        unit would see the segment-complete hints suffix and logs. The
        speculative run is bit-identical to that run iff nothing arriving
        after its cuts could ever have been consulted:

        * The epoch's replay consumes syscall records with per-thread seq
          in ``[start.syscall_count, boundary.syscall_count)`` — exactly.
          The call straddling the boundary (seq == boundary count, logged
          at its later completion) is deliberately never re-issued
          (``boundary_blocked`` excludes syscalls), and a count below the
          boundary's means the call completed — and was logged — before
          the boundary checkpoint was taken, i.e. before any later cut.
          A late record inside the window therefore cannot normally
          exist; the floor check below enforces that invariant rather
          than assumes it. Signal deliveries are keyed by per-thread
          retired count and the same monotonicity argument applies.
        * A sync object the grant oracle starved on (consulted past its
          truncated queue) must have no hint events past the cut. The
          first grant decision where a truncated run differs from the
          full-suffix run is always such a consult, so no starved object
          with later events ⇒ every decision was identical.

        A failed run stops at its first divergence, so the rule covers
        failures too: a *validated* failure is a real divergence and goes
        straight to forward recovery, exactly as at ``jobs=1``.
        """
        c_hint, c_sys, c_sig = cuts
        sys_floor = {
            tid: ctx.syscall_count for tid, ctx in boundary_cp.contexts.items()
        }
        for record in syscall_log[c_sys:]:
            if record.seq < sys_floor.get(record.tid, 0):
                return False
        sig_floor = {
            tid: ctx.retired for tid, ctx in boundary_cp.contexts.items()
        }
        for record in signal_log[c_sig:]:
            if record[1] < sig_floor.get(record[0], 0):
                return False
        if result.starved:
            starved = set(result.starved)
            for _, addr, _ in hints[c_hint:]:
                if addr in starved:
                    return False
        return True

    # ------------------------------------------------------------------
    def record(self) -> RecordResult:
        """Record one run; the durable sink never leaks on a crash.

        Everything that can go wrong mid-run — a workload fault escaping
        the engine, ``KeyboardInterrupt``, a host-layer error — used to
        skip ``sink.close()`` entirely, losing the group-commit buffer
        and the sealing manifest: the one scenario a durable log exists
        for. The sink is tracked on the instance so this wrapper can
        seal the committed prefix (``close_partial``) with the crash
        reason before re-raising; `repro log recover` / `replay --tail`
        then open exactly that artifact.
        """
        self._sink = None
        try:
            return self._record()
        except BaseException as exc:
            sink = self._sink
            if sink is not None and not sink.closed:
                try:
                    sink.close_partial(f"{type(exc).__name__}: {exc}")
                except Exception:
                    pass  # never mask the original failure
            raise

    def _record(self) -> RecordResult:
        config = self.config
        costs = self.machine.costs
        stats_baseline = obs_metrics.process_stats().snapshot()
        policy_cls = AdaptiveEpochPolicy if config.adaptive_epochs else FixedEpochPolicy
        policy = policy_cls(config.epoch_cycles)

        syscall_log: List[SyscallRecord] = []
        signal_log: List = []
        kernel = Kernel(self.setup, self.program.heap_base)
        services = LiveSyscalls(kernel, syscall_log)
        engine = MulticoreEngine.boot(self.program, self.machine, services)
        engine.signal_log = signal_log
        engine.halt_on_fault = True  # crashes are recorded, not raised
        manager = CheckpointManager()
        initial = manager.initial(engine)
        recording = Recording(
            program_name=self.program.name,
            worker_threads=self.machine.cores,
            initial_checkpoint=initial,
        )

        sink = None
        if config.log_dir:
            # Imported lazily: purely in-memory recordings never touch
            # the durable-log layer.
            from repro.record.shards import ShardedLogWriter

            sink = self._sink = ShardedLogWriter(
                config.log_dir,
                initial,
                self.program.name,
                self.machine.cores,
                codec=config.log_codec,
                meta=config.log_meta,
                flight_window=config.resolve_flight_window(),
            )
        elif config.log_spill:
            raise ValueError("log_spill requires log_dir")
        elif config.flight_window:
            raise ValueError("flight_window requires log_dir")

        host_jobs = config.resolve_host_jobs()
        executor = None
        if host_jobs > 1:
            # Imported lazily: jobs=1 (the default) never touches the
            # host-parallelism layer at all.
            from repro.host.pool import HostExecutor

            executor = HostExecutor(
                host_jobs,
                unit_timeout=config.unit_timeout,
                dispatcher=config.host_dispatcher,
                fault_specs=config.host_faults,
            )

        committed = initial
        next_cp_index = 1
        divergences = 0
        recoveries = 0
        epoch_index = 0
        slots = config.executor_slots()
        worker_free = [0] * slots
        #: recording-time minus app-time for the current segment
        timeline_offset = 0
        makespan = 0
        tp_finish = 0
        finished = False

        while not finished:
            if engine is None:
                # Segment restart after recovery: rebuild the live machine
                # from the committed state.
                kernel = Kernel(self.setup, self.program.heap_base)
                kernel.restore(committed.kernel_state)
                services = LiveSyscalls(kernel, syscall_log)
                engine = MulticoreEngine.from_checkpoint(
                    self.program,
                    self.machine,
                    services,
                    memory_snapshot=committed.memory,
                    contexts=committed.copy_contexts(),
                    sync_state=committed.sync_state,
                    start_time=committed.time + costs.restore_base,
                    name=f"{self.program.name}/tp",
                )
                engine.signal_log = signal_log
                engine.halt_on_fault = True
            hints: List = []
            engine.acquisition_log = hints
            policy.start_segment(engine.time)
            segment_app_start = engine.time
            segment_checkpoints: List[Checkpoint] = [committed]
            hint_marks: List[int] = [0]
            session = None
            if executor is not None and pipelined_commit_enabled():
                session = executor.speculative_session(
                    self.program, self.machine
                )
            #: speculated position -> (hint cut, syscall cut, signal cut)
            spec_cuts: Dict[int, tuple] = {}

            fault = None
            tracer = obs_spans.current()
            try:
                while True:
                    tp_span_start = tracer.now() if tracer is not None else 0.0
                    status = engine.run(
                        stop_check=lambda e: policy.should_checkpoint(e.time),
                        stop_after=policy.next_boundary(),
                    )
                    checkpoint = manager.take(engine, index=next_cp_index)
                    next_cp_index += 1
                    policy.note_checkpoint(engine.time)
                    segment_checkpoints.append(checkpoint)
                    hint_marks.append(len(hints))
                    if tracer is not None:
                        tracer.add(
                            "tp-epoch", obs_spans.CAT_SEGMENT,
                            tp_span_start, tracer.now(),
                            args={
                                "epoch": epoch_index
                                + len(segment_checkpoints) - 2,
                                "position": len(segment_checkpoints) - 2,
                            },
                        )
                    if status == "faulted":
                        # A crash ends recording at this boundary: the
                        # epochs up to here commit, and replay reproduces
                        # the program state the instant before the crash.
                        fault = engine.fault
                        break
                    if engine.all_exited():
                        break
                    # --------------------------------------------------
                    # Two-deep commit pipeline: once boundary p+2 exists,
                    # epoch p's unit ships to the pool while the
                    # thread-parallel run executes ahead. Its hints and
                    # logs are snapshots cut *now*; whether the result
                    # may stand in for the full-knowledge run is decided
                    # at segment end (``_speculation_valid``).
                    # --------------------------------------------------
                    if session is not None and len(segment_checkpoints) >= 3:
                        from repro.host.wire import speculative_record_unit

                        position = len(segment_checkpoints) - 3
                        unit = speculative_record_unit(
                            position,
                            epoch_index + position,
                            segment_checkpoints[position],
                            segment_checkpoints[position + 1],
                            tuple(hints[hint_marks[position] :]),
                            syscall_log,
                            signal_log,
                            config.use_sync_hints,
                            session.blobs,
                        )
                        spec_cuts[position] = (
                            len(hints), len(syscall_log), len(signal_log)
                        )
                        session.push(unit)
            except BaseException:
                if session is not None:
                    session.close()
                raise

            segment_tp_finish = engine.time

            # ----------------------------------------------------------
            # Epoch-parallel execution of the segment's epochs.
            # ----------------------------------------------------------
            preloaded: Dict[int, tuple] = {}
            if session is not None:
                for position, outcome in session.harvest().items():
                    if self._speculation_valid(
                        outcome[0],
                        spec_cuts[position],
                        segment_checkpoints[position + 1],
                        hints,
                        syscall_log,
                        signal_log,
                    ):
                        preloaded[position] = outcome
                    else:
                        executor.speculation["invalidated"] += 1
            diverged_at: Optional[int] = None
            recovery = None
            attempt_duration = 0
            timings: List[EpochTiming] = []
            epoch_results = self._segment_epoch_results(
                executor,
                segment_checkpoints,
                hints,
                hint_marks,
                syscall_log,
                signal_log,
                epoch_index,
                preloaded=preloaded,
            )
            for position, result in epoch_results:
                start_cp = segment_checkpoints[position]
                end_cp = segment_checkpoints[position + 1]
                timings.append(
                    EpochTiming(
                        index=epoch_index,
                        ready_time=start_cp.time + timeline_offset,
                        boundary_time=end_cp.time + timeline_offset,
                        duration=result.duration,
                    )
                )
                if result.ok:
                    commit_started = time.perf_counter()
                    with obs_spans.span(
                        "commit", obs_spans.CAT_COMMIT, epoch=epoch_index
                    ):
                        record = EpochRecord(
                            index=epoch_index,
                            start_checkpoint=start_cp,
                            targets=end_cp.targets(),
                            schedule=result.schedule,
                            # Store the grant order the committed run
                            # actually used — replay pins its decisions
                            # from this, not from the raw hints.
                            sync_log=result.committed_sync,
                            end_digest=result.end_digest,
                            duration=result.duration,
                        )
                        recording.epochs.append(record)
                        if sink is not None:
                            sink.commit_epoch(
                                record, start_cp, end_cp,
                                syscall_log, signal_log,
                            )
                            if config.log_spill:
                                record.spill()
                    obs_histo.observe(
                        "commit_wall_s", time.perf_counter() - commit_started
                    )
                    obs_events.emit(
                        "epoch-commit", epoch=epoch_index,
                        cycles=result.duration,
                    )
                    committed = end_cp
                    epoch_index += 1
                    continue
                # ------------------------------------------------------
                # Divergence: forward recovery.
                # ------------------------------------------------------
                divergences += 1
                attempt_duration = result.duration
                obs_events.emit(
                    "divergence", epoch=epoch_index,
                    reason=result.reason[:120],
                )
                with obs_spans.span(
                    "divergence", obs_spans.CAT_RECOVERY,
                    epoch=epoch_index, reason=result.reason[:120],
                ):
                    counts = {
                        tid: ctx.syscall_count
                        for tid, ctx in start_cp.contexts.items()
                    }
                    syscall_log[:] = prune_syscall_records(syscall_log, counts)
                    retired_counts = {
                        tid: ctx.retired
                        for tid, ctx in start_cp.contexts.items()
                    }
                    signal_log[:] = prune_signal_records(
                        signal_log, retired_counts
                    )
                with obs_spans.span(
                    "recovery", obs_spans.CAT_RECOVERY, epoch=epoch_index
                ):
                    recovery = recover_epoch(
                        self.program,
                        self.machine,
                        self.setup,
                        start_cp,
                        config.epoch_cycles,
                        syscall_log,
                        signal_log=signal_log,
                    )
                obs_events.emit(
                    "recovery", epoch=epoch_index, cycles=recovery.duration
                )
                record = EpochRecord(
                    index=epoch_index,
                    start_checkpoint=start_cp,
                    targets=recovery.committed.targets(),
                    schedule=recovery.schedule,
                    sync_log=recovery.committed_sync,
                    end_digest=recovery.end_digest,
                    duration=recovery.duration,
                    recovered=True,
                )
                recording.epochs.append(record)
                if sink is not None:
                    sink.commit_epoch(
                        record, start_cp, recovery.committed,
                        syscall_log, signal_log,
                    )
                    if config.log_spill:
                        record.spill()
                obs_events.emit(
                    "epoch-commit", epoch=epoch_index,
                    cycles=recovery.duration, recovered=True,
                )
                committed = recovery.committed
                epoch_index += 1
                diverged_at = position
                break
            epoch_results.close()

            # ----------------------------------------------------------
            # Timing composition for this segment.
            # ----------------------------------------------------------
            segment_start_rec = segment_app_start + timeline_offset
            if config.spare_cores:
                pipeline = schedule_spare_cores(
                    timings,
                    workers=slots,
                    dispatch_cost=costs.epoch_dispatch,
                    max_inflight=config.inflight_bound(),
                    worker_free=worker_free,
                )
            else:
                pipeline = schedule_shared_cores(
                    timings,
                    tp_span=segment_tp_finish - segment_app_start,
                    cores=self.machine.cores,
                    dispatch_cost=costs.epoch_dispatch,
                    segment_start=segment_start_rec,
                )
            makespan = max(makespan, pipeline.makespan)
            tp_finish = max(
                tp_finish,
                segment_tp_finish + timeline_offset + pipeline.throttle_stall,
            )

            if diverged_at is None:
                finished = True
                recording.final_digest = committed.digest()
            else:
                # Anything the abandoned thread-parallel future saw —
                # including a crash — is discarded with it.
                fault = None
                recoveries += 1
                if recoveries > config.max_recoveries:
                    raise SimulationError(
                        f"recording exceeded {config.max_recoveries} recoveries"
                    )
                detection = pipeline.commits[diverged_at].finish
                recovery_finish = (
                    detection + costs.restore_base + recovery.duration
                )
                makespan = max(makespan, recovery_finish)
                worker_free = [recovery_finish] * slots
                timeline_offset = recovery_finish - committed.time
                # Release the abandoned future's checkpoints.
                for checkpoint in segment_checkpoints[diverged_at + 1 :]:
                    checkpoint.release()
                engine = None
                if recovery.finished:
                    finished = True
                    recording.final_digest = recovery.end_digest
                    tp_finish = max(tp_finish, recovery_finish)
            if config.log_spill and not finished:
                # Flight-recorder mode: at a segment restart every record
                # still in the raw logs belongs to a committed (hence
                # durable) epoch — the divergence prune dropped the
                # abandoned future and recovery's appends were committed
                # above. The next segment starts from the committed
                # checkpoint's per-thread counts, so nothing below them is
                # ever consulted again: clear the logs instead of letting
                # them grow with run length.
                syscall_log.clear()
                signal_log.clear()

        recording.stats = {
            "divergences": divergences,
            "recoveries": recoveries,
            "faulted": 1 if fault is not None else 0,
            "epochs": len(recording.epochs),
            "checkpoint_cost": manager.total_cost,
            "makespan": makespan,
            "tp_finish": tp_finish,
            "app_time": committed.time,
            "attempt_waste": attempt_duration if divergences else 0,
        }
        if fault is not None:
            recording.stats["fault_message"] = str(fault)
        if sink is not None:
            # Final manifest write — stats are sealed into it *before* any
            # spill-mode markers, so a durable log's stats are identical
            # whether or not the in-memory copy was dropped.
            sink.close(
                final_digest=recording.final_digest, stats=recording.stats
            )
        if config.log_spill:
            # The durable log holds the only full copy of the event
            # streams; retaining them here would re-grow memory with run
            # length, defeating flight-recorder mode.
            recording.stats["log_spilled"] = 1
        else:
            recording.syscall_records = list(syscall_log)
            recording.signal_records = list(signal_log)
        host_summary = executor.timing_summary() if executor else {"jobs": 1}
        run_metrics = obs_metrics.build_run_metrics(
            obs_metrics.delta_since(stats_baseline),
            host=host_summary,
            record=recording.stats,
        )
        return RecordResult(
            recording=recording,
            makespan=makespan,
            tp_finish=tp_finish,
            app_time=committed.time,
            stats=dict(recording.stats),
            final_kernel_state=committed.kernel_state,
            fault=str(fault) if fault is not None else None,
            host=host_summary,
            metrics=run_metrics,
        )
