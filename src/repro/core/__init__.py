"""DoublePlay: uniparallel deterministic record and replay.

The paper's contribution, implemented on the simulated machine:

* :class:`~repro.core.recorder.DoublePlayRecorder` runs the
  **thread-parallel execution** (multicore, live kernel, syscall and
  sync-order logging, epoch checkpoints) and the **epoch-parallel
  execution** (each epoch re-executed on one simulated CPU from its start
  checkpoint, concurrently across spare cores), verifies epoch end states,
  and commits a :class:`~repro.record.recording.Recording`.
* :mod:`~repro.core.divergence` detects when an epoch-parallel run does
  not reach the thread-parallel boundary state (a data race fired);
  :mod:`~repro.core.recovery` then makes the uniprocessor re-execution
  authoritative (forward recovery) and restarts the thread-parallel run.
* :class:`~repro.core.replayer.Replayer` replays recordings sequentially
  or epoch-parallel (parallel replay), verifying state digests throughout.
* :mod:`~repro.core.pipeline` composes the two executions' timings on a
  machine with or without spare cores — the quantity the paper's overhead
  figures measure.
"""

from repro.core.config import DoublePlayConfig
from repro.core.epochs import FixedEpochPolicy, AdaptiveEpochPolicy
from repro.core.recorder import DoublePlayRecorder, RecordResult
from repro.core.replayer import Replayer, ReplayFailure, ReplayResult
from repro.core.divergence import DivergenceReport, compare_epoch_end

__all__ = [
    "DoublePlayConfig",
    "FixedEpochPolicy",
    "AdaptiveEpochPolicy",
    "DoublePlayRecorder",
    "RecordResult",
    "Replayer",
    "ReplayFailure",
    "ReplayResult",
    "DivergenceReport",
    "compare_epoch_end",
]
