"""Record-as-a-service: async multi-session coordination over one fleet.

Public surface:

* :class:`RecordService` / :class:`ServiceConfig` — the asyncio
  coordinator and its knobs (fleet jobs, admission bound, lane depth).
* :class:`SessionRequest` / :class:`SessionResult` /
  :class:`ServiceReport` — one tenant's job, its outcome, and the
  whole run's accounting.
* :class:`FleetScheduler` / :class:`SessionDispatcher` — the shared
  worker fleet and the per-session handle that slots into
  ``HostExecutor``'s submission seam (``DoublePlayConfig.host_dispatcher``
  or ``Replayer.replay_parallel(dispatcher=...)``).
"""

from repro.service.coordinator import (
    RecordService,
    ServiceConfig,
    ServiceReport,
    SessionRequest,
    SessionResult,
)
from repro.service.fleet import FleetScheduler, SessionDispatcher

__all__ = [
    "FleetScheduler",
    "RecordService",
    "ServiceConfig",
    "ServiceReport",
    "SessionDispatcher",
    "SessionRequest",
    "SessionResult",
]
