"""The fleet scheduler: N sessions' epoch units, one worker pool.

One :class:`FleetScheduler` owns the coordinator-wide ``shared_pool()``
on behalf of every concurrent record/replay session. Each session
registers a *lane* and receives a :class:`SessionDispatcher` — the
object that slots into ``HostExecutor``'s submission seam (see
``repro.host.pool._DirectDispatcher``). Instead of submitting straight
into the process pool, a session's dispatch lands in its lane's FIFO
queue; an asyncio *pump* task drains the lanes into the pool with:

* **fair-share scheduling** — deficit round-robin over lanes with
  queued work, with a per-lane in-flight cap of its fair share of the
  pool (work-conserving: leftover capacity goes to whoever has work),
  so one session with many epochs cannot starve the others' heads;
* **bounded backpressure** — a per-lane credit semaphore caps each
  session's outstanding units; a session thread that submits past the
  bound blocks until its own completions free credits (admission
  control at the unit level, measured and surfaced per session);
* **a fleet in-flight bound** — at most ``max_inflight`` units occupy
  the pool at once, keeping the pool's internal queue shallow so a
  divergence exit cancels queued proxies before they ship.

**Isolation.** Containment stays per session: each session keeps its
own ``HostExecutor`` (its own retry counters, serial fallback, fault
specs), and the fleet only routes futures. A worker crash breaks the
shared pool for everyone — inherent to sharing — but each session's
containment then retries *its own* units; other tenants lose
wall-clock, never correctness. Proxy futures returned to sessions are
plain ``concurrent.futures.Future`` objects, so the executor's merge
loop (`result(timeout)`, `cancel()`, harvesting) works unchanged.

**Cross-session dedup accounting.** The worker blob caches and the
coordinator's ``WorkerCacheTracker`` are already module-global, so a
page one session shipped is omitted from every other session's
dispatches for free. The fleet observes each dispatch
(``note_dispatch``) to attribute that win: a digest omitted by a lane
that did not first ship it is a cross-session cache hit, and its bytes
are bytes the fleet never put on the wire.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.host.pool import _pool_pids, invalidate_shared_pool, shared_pool
from repro.obs import events as obs_events


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclass
class _Ticket:
    """One queued unit submission: the real work plus its proxy future."""

    fn: object
    dispatch: object
    proxy: Future
    lane: "_Lane"
    t_submit: float


class _Lane:
    """One session's queue state inside the fleet."""

    __slots__ = (
        "sid",
        "credit",
        "pending",
        "inflight",
        "submitted",
        "completed",
        "backpressure_wait",
        "backpressure_hits",
        "deficit",
        "latencies",
        "queue_high_water",
        "cross_hits",
        "cross_bytes_saved",
        "bytes_shipped",
    )

    def __init__(self, sid: str, depth: int):
        self.sid = sid
        #: admission credits: one per outstanding (queued or in-flight)
        #: unit; acquire blocks the session thread at the bound
        self.credit = threading.Semaphore(depth)
        self.pending: Deque[_Ticket] = deque()
        self.inflight = 0
        self.submitted = 0
        self.completed = 0
        self.backpressure_wait = 0.0
        self.backpressure_hits = 0
        self.deficit = 0
        self.latencies: List[float] = []
        self.queue_high_water = 0
        self.cross_hits = 0
        self.cross_bytes_saved = 0
        self.bytes_shipped = 0


class SessionDispatcher:
    """One session's handle into the fleet (the executor's dispatcher).

    Implements the submission-path protocol ``HostExecutor`` expects:
    ``warm``/``pids``/``submit``/``abandon`` plus the optional
    ``note_dispatch`` wire observer. Slot it into a recorder via
    ``DoublePlayConfig(host_dispatcher=...)`` or a replayer via
    ``replay_parallel(dispatcher=...)``.
    """

    def __init__(self, fleet: "FleetScheduler", lane: _Lane):
        self._fleet = fleet
        self._lane = lane

    @property
    def session_id(self) -> str:
        return self._lane.sid

    @property
    def jobs(self) -> int:
        return self._fleet.jobs

    def warm(self) -> None:
        """No-op: the fleet brought the pool up at service start."""

    def pids(self) -> List[int]:
        return self._fleet.pool_pids()

    def submit(self, fn, dispatch) -> Future:
        return self._fleet.submit(self._lane, fn, dispatch)

    def abandon(self, kill: bool) -> None:
        self._fleet.rebuild_pool(kill)

    def note_dispatch(self, shipped: Dict[int, int], omitted: Dict[int, int]) -> None:
        self._fleet.note_dispatch(self._lane, shipped, omitted)

    def session_summary(self) -> Dict[str, object]:
        """This session's queueing/wire numbers (for per-session metrics)."""
        return self._fleet.lane_summary(self._lane)


class FleetScheduler:
    """Multiplexes every session's epoch units over one shared pool."""

    def __init__(
        self,
        jobs: int,
        queue_depth: Optional[int] = None,
        max_inflight: Optional[int] = None,
    ):
        self.jobs = max(1, int(jobs))
        #: per-session outstanding-unit bound (admission control); the
        #: default matches the executor's own submission window so a
        #: lone session is never throttled below its solo behavior
        self.queue_depth = max(1, queue_depth or max(2 * self.jobs, 2))
        #: fleet-wide in-flight bound: a shallow pool queue keeps
        #: cancellation effective and fairness decisions meaningful
        self.max_inflight = max(1, max_inflight or max(2 * self.jobs, 2))
        self._lock = threading.Lock()
        self._lanes: Dict[str, _Lane] = {}
        self._rr: Deque[str] = deque()
        self._inflight = 0
        self._pending_total = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._stopping = False
        # ---- fleet-wide accounting ----
        self._latencies: List[float] = []
        self._first_shipper: Dict[int, str] = {}
        self._bytes_shipped = 0
        self._blobs_shipped = 0
        self._cross_hits = 0
        self._cross_bytes_saved = 0
        self._queue_high_water = 0
        self._deficits = 0
        self._backpressure_wait = 0.0
        self._sessions_registered = 0
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Lifecycle (called from the service's event loop).
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop, warm the pool, start the pump."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        # Spawn cost is paid here, once, off every session's path.
        await self._loop.run_in_executor(None, shared_pool, self.jobs)
        self._pump_task = self._loop.create_task(self._pump())

    async def stop(self) -> None:
        """Stop the pump (sessions must already be drained)."""
        self._stopping = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None

    def register(self, sid: str) -> SessionDispatcher:
        """Create a lane for session ``sid`` and return its dispatcher."""
        with self._lock:
            if sid in self._lanes:
                raise ValueError(f"session id {sid!r} already registered")
            lane = _Lane(sid, self.queue_depth)
            self._lanes[sid] = lane
            self._rr.append(sid)
            self._sessions_registered += 1
        return SessionDispatcher(self, lane)

    def release(self, sid: str) -> None:
        """Retire a finished session's lane; cancel anything still queued."""
        with self._lock:
            lane = self._lanes.pop(sid, None)
            if lane is None:
                return
            try:
                self._rr.remove(sid)
            except ValueError:
                pass
            stale = list(lane.pending)
            lane.pending.clear()
            self._pending_total -= len(stale)
        for ticket in stale:
            ticket.proxy.cancel()
            lane.credit.release()

    # ------------------------------------------------------------------
    # Session-thread entry points (via SessionDispatcher).
    # ------------------------------------------------------------------
    def pool_pids(self) -> List[int]:
        return _pool_pids(shared_pool(self.jobs))

    def submit(self, lane: _Lane, fn, dispatch) -> Future:
        """Queue one unit; returns a proxy future. Blocks at the bound."""
        if not lane.credit.acquire(blocking=False):
            # Admission control: this session already has queue_depth
            # units outstanding. Block until one of *its own* completions
            # frees a credit, and account the wait.
            t0 = time.perf_counter()
            lane.credit.acquire()
            wait = time.perf_counter() - t0
            lane.backpressure_hits += 1
            lane.backpressure_wait += wait
            with self._lock:
                self._backpressure_wait += wait
            obs_events.emit(
                "session-backpressure", wait=round(wait, 6),
            )
        proxy: Future = Future()
        ticket = _Ticket(
            fn=fn,
            dispatch=dispatch,
            proxy=proxy,
            lane=lane,
            t_submit=time.perf_counter(),
        )
        with self._lock:
            lane.pending.append(ticket)
            lane.submitted += 1
            self._pending_total += 1
            depth = len(lane.pending) + lane.inflight
            if depth > lane.queue_high_water:
                lane.queue_high_water = depth
            total = self._pending_total + self._inflight
            if total > self._queue_high_water:
                self._queue_high_water = total
        self._wake_pump()
        return proxy

    def rebuild_pool(self, kill: bool) -> None:
        """A session's containment abandoned the pool: rebuild for all.

        The shared pool's own lock serializes concurrent rebuild
        requests; a second caller finds the pool already gone and the
        invalidate is a no-op. Other sessions' in-flight units die with
        the pool and resurface as crash failures in *their* containment
        — collateral wall-clock, never shared blame.
        """
        with self._lock:
            self._rebuilds += 1
        invalidate_shared_pool(kill=kill)
        self._wake_pump()

    def note_dispatch(
        self, lane: _Lane, shipped: Dict[int, int], omitted: Dict[int, int]
    ) -> None:
        """Attribute one dispatch's wire traffic (cross-session dedup)."""
        with self._lock:
            lane.bytes_shipped += sum(shipped.values())
            self._blobs_shipped += len(shipped)
            self._bytes_shipped += sum(shipped.values())
            for digest in shipped:
                self._first_shipper.setdefault(digest, lane.sid)
            for digest, size in omitted.items():
                origin = self._first_shipper.get(digest)
                if origin is not None and origin != lane.sid:
                    lane.cross_hits += 1
                    lane.cross_bytes_saved += size
                    self._cross_hits += 1
                    self._cross_bytes_saved += size

    # ------------------------------------------------------------------
    # The pump: drain lanes into the pool, fairly.
    # ------------------------------------------------------------------
    def _wake_pump(self) -> None:
        loop, wake = self._loop, self._wake
        if loop is None or wake is None:
            return
        try:
            loop.call_soon_threadsafe(wake.set)
        except RuntimeError:
            pass  # loop already closed (a late completion raced stop)

    async def _pump(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._drain()

    def _drain(self) -> None:
        """Submit queued tickets until the fleet bound or the queues empty."""
        while True:
            with self._lock:
                ticket = self._next_ticket_locked()
            if ticket is None:
                return
            proxy = ticket.proxy
            if not proxy.set_running_or_notify_cancel():
                # Cancelled while queued (a divergence exit) — drop it.
                self._finish_ticket(ticket, record_latency=False)
                continue
            try:
                real = shared_pool(self.jobs).submit(ticket.fn, ticket.dispatch)
            except Exception as exc:
                # Pool unbuildable or shutting down: the session's
                # containment turns this into a crash failure.
                try:
                    proxy.set_exception(exc)
                except InvalidStateError:
                    pass
                self._finish_ticket(ticket, record_latency=False)
                continue
            real.add_done_callback(
                lambda f, t=ticket: self._on_real_done(t, f)
            )

    def _next_ticket_locked(self) -> Optional[_Ticket]:
        """Pick the next lane's head ticket under deficit round-robin."""
        if self._inflight >= self.max_inflight or self._pending_total == 0:
            return None
        active = sum(1 for lane in self._lanes.values() if lane.pending)
        if active == 0:
            return None
        fair_cap = max(1, self.max_inflight // active)
        chosen: Optional[_Lane] = None
        passed_over: List[_Lane] = []
        # First pass honors each lane's fair share of the pool; the
        # second is work-conserving (leftover capacity goes to whoever
        # still has work, cap or not).
        for honor_cap in (True, False):
            for _ in range(len(self._rr)):
                sid = self._rr[0]
                self._rr.rotate(-1)
                lane = self._lanes[sid]
                if not lane.pending:
                    continue
                if honor_cap and lane.inflight >= fair_cap:
                    passed_over.append(lane)
                    continue
                chosen = lane
                break
            if chosen is not None:
                break
        if chosen is None:
            return None
        for lane in passed_over:
            if lane is not chosen:
                # A fairness deficit: this lane had work queued but was
                # held at its fair-share cap while another lane won the
                # slot. Surfaced per session and fleet-wide.
                lane.deficit += 1
                self._deficits += 1
        ticket = chosen.pending.popleft()
        chosen.inflight += 1
        self._inflight += 1
        self._pending_total -= 1
        return ticket

    def _finish_ticket(self, ticket: _Ticket, record_latency: bool) -> None:
        lane = ticket.lane
        with self._lock:
            lane.inflight -= 1
            self._inflight -= 1
            lane.completed += 1
            if record_latency:
                latency = time.perf_counter() - ticket.t_submit
                lane.latencies.append(latency)
                self._latencies.append(latency)
        lane.credit.release()
        self._wake_pump()

    def _on_real_done(self, ticket: _Ticket, real: Future) -> None:
        """Copy the pool future's outcome onto the session's proxy."""
        result = exc = None
        if real.cancelled():
            # cancel_futures=True during another session's rebuild: the
            # unit never ran. Surface an Exception (not CancelledError,
            # which would escape the executor's containment) so the
            # owning session retries it like any crash casualty.
            exc = RuntimeError("fleet pool was rebuilt while this unit was queued")
        else:
            exc = real.exception()
            if exc is None:
                result = real.result()
            elif not isinstance(exc, Exception):
                exc = RuntimeError(f"unit future aborted: {exc!r}")
        try:
            if exc is not None:
                ticket.proxy.set_exception(exc)
            else:
                ticket.proxy.set_result(result)
        except InvalidStateError:
            pass  # proxy already resolved/cancelled; outcome is dropped
        self._finish_ticket(ticket, record_latency=True)

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------
    def lane_summary(self, lane: _Lane) -> Dict[str, object]:
        with self._lock:
            return self._lane_summary_locked(lane)

    def _lane_summary_locked(self, lane: _Lane) -> Dict[str, object]:
        latencies = sorted(lane.latencies)
        return {
            "units": lane.completed,
            "inflight": lane.inflight,
            "pending": len(lane.pending),
            "queue_high_water": lane.queue_high_water,
            "backpressure_hits": lane.backpressure_hits,
            "backpressure_wait": round(lane.backpressure_wait, 6),
            "fair_share_deficits": lane.deficit,
            "unit_latency_p50": round(_percentile(latencies, 0.50), 6),
            "unit_latency_p99": round(_percentile(latencies, 0.99), 6),
            "bytes_shipped": lane.bytes_shipped,
            "cross_session_hits": lane.cross_hits,
            "cross_session_bytes_saved": lane.cross_bytes_saved,
        }

    def live_summary(self) -> Dict[str, Dict[str, object]]:
        """Every registered lane's current state (the ``/sessions`` feed)."""
        with self._lock:
            return {
                sid: self._lane_summary_locked(lane)
                for sid, lane in self._lanes.items()
            }

    def summary(self) -> Dict[str, object]:
        """Fleet-wide queueing and wire accounting (service report)."""
        with self._lock:
            latencies = sorted(self._latencies)
            return {
                "jobs": self.jobs,
                "queue_depth": self.queue_depth,
                "max_inflight": self.max_inflight,
                "sessions": self._sessions_registered,
                "units": len(latencies),
                "unit_latency_p50": round(_percentile(latencies, 0.50), 6),
                "unit_latency_p99": round(_percentile(latencies, 0.99), 6),
                "queue_high_water": self._queue_high_water,
                "backpressure_wait": round(self._backpressure_wait, 6),
                "fair_share_deficits": self._deficits,
                "pool_rebuilds": self._rebuilds,
                "wire": {
                    "bytes_shipped": self._bytes_shipped,
                    "blobs_shipped": self._blobs_shipped,
                    "cross_session_hits": self._cross_hits,
                    "cross_session_bytes_saved": self._cross_bytes_saved,
                },
            }
