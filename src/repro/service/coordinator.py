"""Record-as-a-service: N concurrent sessions, one shared worker fleet.

:class:`RecordService` is an asyncio coordinator that runs many
record/replay sessions concurrently against a single
:class:`~repro.service.fleet.FleetScheduler`. Each session:

1. waits for an **admission slot** (``max_active`` sessions run at
   once; the wait is measured and reported — that's the service's
   admission-control latency, distinct from the fleet's per-unit
   backpressure);
2. registers a fleet **lane** and receives the dispatcher that its
   private ``HostExecutor`` will submit epoch units through;
3. runs the ordinary blocking record/replay path on a worker thread
   (``loop.run_in_executor``), with this thread's observability scoped:
   a private :class:`~repro.sim.stats.StatsRegistry` and a private (or
   absent) tracer, so interleaved sessions never bleed counters or
   spans into each other;
4. folds its lane's queueing/wire numbers into the run's
   :class:`~repro.obs.metrics.RunMetrics` under the ``service`` group
   and releases its lane and slot.

**Determinism contract.** The service changes *where* epoch units
execute and *when* they are admitted — never what they compute. Every
session's recording is bit-identical to the same workload recorded
solo at ``jobs=1`` (the tier-1 parity matrix pins this), including
when ``REPRO_FAULT``-style directives are injected into one tenant:
faults are scoped per session via ``DoublePlayConfig.host_faults``, so
one tenant's crashing unit exercises only that session's
retry/serial-fallback containment.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import DoublePlayConfig
from repro.core.recorder import DoublePlayRecorder
from repro.core.replayer import Replayer
from repro.machine.config import MachineConfig
from repro.obs import events as obs_events
from repro.obs import health as obs_health
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.expo import TelemetryHub, TelemetryServer
from repro.service.fleet import FleetScheduler, SessionDispatcher
from repro.workloads import build_workload


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (the fleet's shape and the admission bound)."""

    #: worker processes in the shared fleet
    jobs: int = 2
    #: sessions allowed to run concurrently (admission control); the
    #: rest wait in the admission queue with their wait time measured
    max_active: int = 8
    #: per-session outstanding-unit bound (fleet lane credits);
    #: None = the fleet default (``max(2*jobs, 2)``)
    queue_depth: Optional[int] = None
    #: fleet-wide in-flight bound; None = the fleet default
    max_inflight: Optional[int] = None
    #: serve ``/metrics`` + ``/sessions`` + ``/healthz`` on this port
    #: (0 = an ephemeral port, reported on the service after start;
    #: None = no HTTP endpoint)
    telemetry_port: Optional[int] = None
    #: keep the telemetry endpoint up this many seconds after the last
    #: session completes (scrape window for smoke tests / operators)
    telemetry_linger: float = 0.0
    #: append the event journal as JSON lines here (``repro events tail``)
    events_path: Optional[str] = None
    #: event-journal ring capacity
    journal_capacity: int = 1024
    #: health/SLO thresholds; None = :class:`HealthPolicy` defaults
    #: (with ``expect_dedup`` applied)
    health: Optional[obs_health.HealthPolicy] = None
    #: evaluate the cross-session dedup-regression detector (set when
    #: the tenants are known to share a workload)
    expect_dedup: bool = False


@dataclass(frozen=True)
class SessionRequest:
    """One tenant's record (or replay) job."""

    #: session id (unique per service run; used in fleet accounting)
    sid: str
    #: workload name (``repro.workloads.build_workload``)
    workload: str = "fft"
    workers: int = 2
    scale: int = 1
    seed: int = 0
    #: ``record`` or ``replay``
    kind: str = "record"
    #: explicit epoch length; None = derive from a native run as
    #: ``max(native.duration // epoch_divisor, 500)``
    epoch_cycles: Optional[int] = None
    epoch_divisor: int = 12
    #: per-tenant fault directives (``REPRO_FAULT`` grammar). None =
    #: inherit the env; ``""`` = explicitly no injection for this tenant
    faults: Optional[str] = None
    #: collect a per-session span trace (isolated from other sessions)
    trace: bool = False
    #: for ``kind="replay"``: the recording to replay, as the plain
    #: dict from ``Recording.to_plain()``
    recording_plain: Optional[dict] = None


@dataclass
class SessionResult:
    """What one session produced, plus its service-level accounting."""

    sid: str
    kind: str
    ok: bool
    error: Optional[str] = None
    #: the recording as a plain dict (record sessions) — the parity
    #: surface: bit-identical to a solo jobs=1 recording
    recording_plain: Optional[dict] = None
    #: replay sessions: did the replay verify against the recording?
    verified: Optional[bool] = None
    epochs: int = 0
    #: seconds spent waiting for an admission slot
    admission_wait: float = 0.0
    #: wall-clock seconds inside the session body (after admission)
    duration: float = 0.0
    #: the run's merged metrics snapshot (includes the ``service`` group)
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-session span trace (only when the request asked for one)
    tracer: Optional[obs_spans.Tracer] = None


@dataclass
class ServiceReport:
    """One service run: every session's result plus fleet accounting."""

    results: List[SessionResult]
    fleet: Dict[str, object]
    elapsed: float
    #: the health verdict at end of run (``/healthz`` shape)
    health: Optional[Dict[str, object]] = None
    #: bound telemetry port when the run served HTTP endpoints
    telemetry_port: Optional[int] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def healthy(self) -> bool:
        return self.health is None or self.health.get("status") == "ok"

    def sessions_per_sec(self) -> float:
        return len(self.results) / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        waits = sorted(result.admission_wait for result in self.results)
        mid = waits[len(waits) // 2] if waits else 0.0
        summary: Dict[str, object] = {
            "sessions": len(self.results),
            "ok": sum(1 for result in self.results if result.ok),
            "elapsed": round(self.elapsed, 6),
            "sessions_per_sec": round(self.sessions_per_sec(), 3),
            "admission_wait_p50": round(mid, 6),
            "admission_wait_max": round(waits[-1] if waits else 0.0, 6),
            "fleet": self.fleet,
        }
        if self.health is not None:
            summary["health"] = self.health
        return summary


class RecordService:
    """Async coordinator multiplexing sessions over one worker fleet."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        policy = self.config.health or obs_health.HealthPolicy(
            expect_dedup=self.config.expect_dedup
        )
        #: the live telemetry state — persistent across :meth:`serve`
        #: calls on one service, so a record phase followed by a replay
        #: phase exposes both through one ``/metrics`` history
        self.hub = TelemetryHub(policy)

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[SessionRequest]) -> ServiceReport:
        """Synchronous wrapper: serve every request, return the report."""
        return asyncio.run(self.serve(requests))

    async def serve(self, requests: Sequence[SessionRequest]) -> ServiceReport:
        """Run every session concurrently over one shared fleet."""
        config = self.config
        fleet = FleetScheduler(
            config.jobs,
            queue_depth=config.queue_depth,
            max_inflight=config.max_inflight,
        )
        # The journal is the telemetry plane's spine: the hub derives
        # live per-session state from the same stream an operator tails.
        journal = obs_events.install_journal(
            capacity=config.journal_capacity, sink_path=config.events_path
        )
        journal.add_listener(self.hub.ingest_event)
        self.hub.attach_fleet(fleet)
        server: Optional[TelemetryServer] = None
        bound_port: Optional[int] = None
        if config.telemetry_port is not None:
            server = TelemetryServer(self.hub, port=config.telemetry_port)
            bound_port = await server.start()
        await fleet.start()
        loop = asyncio.get_running_loop()
        admission = asyncio.Semaphore(max(1, config.max_active))
        # Session bodies are blocking (the ordinary record/replay path);
        # they run on this dedicated thread pool, one thread per active
        # session. The worker fleet does the actual epoch execution.
        threads = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, config.max_active),
            thread_name_prefix="repro-session",
        )
        t0 = time.perf_counter()
        elapsed = 0.0
        try:
            results = await asyncio.gather(
                *(
                    self._session(request, fleet, admission, loop, threads)
                    for request in requests
                )
            )
            # The scrape window below is idle time, not session work:
            # stop the throughput clock before lingering.
            elapsed = time.perf_counter() - t0
            if server is not None and config.telemetry_linger > 0:
                # Scrape window: sessions are done but the endpoint stays
                # up so operators/smoke tests can read the final state.
                await asyncio.sleep(config.telemetry_linger)
        finally:
            if not elapsed:
                elapsed = time.perf_counter() - t0
            await fleet.stop()
            threads.shutdown(wait=True)
            if server is not None:
                await server.stop()
            health = self.hub.evaluate().to_plain()
            obs_events.uninstall_journal()
        return ServiceReport(
            results=list(results),
            fleet=fleet.summary(),
            elapsed=elapsed,
            health=health,
            telemetry_port=bound_port,
        )

    # ------------------------------------------------------------------
    # One session.
    # ------------------------------------------------------------------
    async def _session(
        self,
        request: SessionRequest,
        fleet: FleetScheduler,
        admission: asyncio.Semaphore,
        loop: asyncio.AbstractEventLoop,
        threads: concurrent.futures.ThreadPoolExecutor,
    ) -> SessionResult:
        t_arrive = time.perf_counter()
        async with admission:
            admission_wait = time.perf_counter() - t_arrive
            self.hub.session_admitted(request.sid, admission_wait)
            obs_events.emit(
                "session-admitted", sid=request.sid,
                wait=round(admission_wait, 6),
            )
            dispatcher = fleet.register(request.sid)
            try:
                result = await loop.run_in_executor(
                    threads, self._session_body, request, dispatcher
                )
            finally:
                fleet.release(request.sid)
            result.admission_wait = admission_wait
            self.hub.session_completed(
                request.sid,
                ok=result.ok,
                epochs=result.epochs,
                duration=result.duration,
                summary=result.metrics.get("service"),
                error=result.error,
            )
            obs_events.emit(
                "session-completed", sid=request.sid, ok=result.ok,
                epochs=result.epochs,
            )
            return result

    def _session_body(
        self, request: SessionRequest, dispatcher: SessionDispatcher
    ) -> SessionResult:
        """The blocking session body (runs on a service worker thread)."""
        t0 = time.perf_counter()
        result = SessionResult(sid=request.sid, kind=request.kind, ok=False)
        # Scope this thread's observability: a private counter registry
        # and a private (or explicitly absent) tracer. Nothing this
        # session records can bleed into another session or the caller.
        obs_metrics.activate_session_registry()
        tracer = obs_spans.Tracer() if request.trace else None
        obs_spans.set_session_tracer(tracer)
        # Stamp every event this thread emits (epoch commits, contained
        # faults, backpressure) with the tenant's session id.
        obs_events.set_event_context(request.sid)
        try:
            if request.kind == "record":
                self._run_record(request, dispatcher, result)
            elif request.kind == "replay":
                self._run_replay(request, dispatcher, result)
            else:
                raise ValueError(f"unknown session kind {request.kind!r}")
            result.ok = result.error is None
        except Exception as exc:  # a failed tenant, not a failed service
            result.error = f"{type(exc).__name__}: {exc}"
        finally:
            result.tracer = tracer
            obs_events.set_event_context(None)
            obs_spans.clear_session_tracer()
            obs_metrics.deactivate_session_registry()
            result.duration = time.perf_counter() - t0
        return result

    def _build(self, request: SessionRequest):
        instance = build_workload(
            request.workload,
            workers=request.workers,
            scale=request.scale,
            seed=request.seed,
        )
        machine = MachineConfig(cores=request.workers)
        epoch_cycles = request.epoch_cycles
        if epoch_cycles is None:
            from repro.baselines import run_native

            native = run_native(instance.image, instance.setup, machine)
            epoch_cycles = max(
                native.duration // max(request.epoch_divisor, 1), 500
            )
        return instance, machine, epoch_cycles

    def _run_record(
        self,
        request: SessionRequest,
        dispatcher: SessionDispatcher,
        result: SessionResult,
    ) -> None:
        instance, machine, epoch_cycles = self._build(request)
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=epoch_cycles,
            host_jobs=dispatcher.jobs,
            host_dispatcher=dispatcher,
            host_faults=request.faults,
        )
        record = DoublePlayRecorder(instance.image, instance.setup, config).record()
        record.metrics.merge_group("service", dispatcher.session_summary())
        result.recording_plain = record.recording.to_plain()
        result.epochs = record.recording.epoch_count()
        result.metrics = record.metrics.snapshot()
        if record.fault is not None:
            # A guest fault is a property of the workload, faithfully
            # recorded — not a session failure.
            result.metrics.setdefault("record", {})

    def _run_replay(
        self,
        request: SessionRequest,
        dispatcher: SessionDispatcher,
        result: SessionResult,
    ) -> None:
        if request.recording_plain is None:
            raise ValueError("replay session requires recording_plain")
        instance, machine, _ = self._build(request)
        from repro.checkpoint.manager import CheckpointManager
        from repro.exec.multicore import MulticoreEngine
        from repro.exec.services import LiveSyscalls
        from repro.oskernel.kernel import Kernel
        from repro.record.recording import Recording

        kernel = Kernel(instance.setup, instance.image.heap_base)
        boot = MulticoreEngine.boot(instance.image, machine, LiveSyscalls(kernel))
        initial = CheckpointManager().initial(boot)
        recording = Recording.from_plain(request.recording_plain, initial)
        replayer = Replayer(instance.image, machine)
        replayer.materialize_checkpoints(recording)
        outcome = replayer.replay_parallel(
            recording,
            jobs=dispatcher.jobs,
            dispatcher=dispatcher,
            fault_specs=request.faults,
        )
        result.verified = outcome.verified
        result.epochs = recording.epoch_count()
        metrics = getattr(outcome, "metrics", None)
        if metrics is not None:
            metrics.merge_group("service", dispatcher.session_summary())
            result.metrics = metrics.snapshot()
        else:
            result.metrics = {"service": dict(dispatcher.session_summary())}
        if not outcome.verified:
            result.error = f"replay diverged: {outcome.details}"
