"""Static basic-block discovery over a program image.

A *fusable block* is a maximal straight-line run of instructions that

* contains no control flow (the pc only ever advances by one),
* contains no instruction that can block, trap to the kernel, consult
  the sync manager, or touch another thread's state, and
* is never entered except at its head by any *static* control edge.

Such a run is the unit the superinstruction compiler
(:mod:`repro.exec.superblock`) fuses into a single Python-level handler:
every logged or ordered event — syscall completions, sync grants, signal
deliveries, atomic turns, spawns — happens at a block boundary, so
executing the block's interior in one frame cannot reorder anything the
recorder logs. Mid-block *dynamic* entry (a thread resuming at an
interior pc after a preemption or an epoch boundary) is always allowed:
the engine simply executes generically until it next lands on a block
head, so the partition affects performance only, never semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Op

#: Ops a fused handler can execute: pure register/memory work whose only
#: failure mode is a :class:`~repro.errors.GuestFault` (caught and
#: re-raised at the exact op by the fused handler). Everything else —
#: control flow, atomics, sync, threads, syscalls — is a block boundary.
FUSABLE_OPS = frozenset(
    {
        Op.LI,
        Op.MOV,
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MOD,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.ADDI,
        Op.MULI,
        Op.SHLI,
        Op.SHRI,
        Op.SLT,
        Op.SLTI,
        Op.SEQ,
        Op.SEQI,
        Op.TID,
        Op.NOP,
        Op.WORK,
        Op.WORKR,
        Op.LOAD,
        Op.LOADG,
        Op.STORE,
        Op.STOREG,
    }
)

#: Minimum run length worth fusing: a one-op "block" would just add a
#: guard on top of the generic dispatch it replaces.
MIN_BLOCK_LEN = 2

#: ops whose ``c`` operand is a branch target
_TARGET_C = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BEQI, Op.BNEI, Op.BLTI, Op.BGEI}
)


def _static_targets(pc: int, instr: Instruction) -> Tuple[int, ...]:
    """Code indices this instruction can transfer control to (statically)."""
    op = instr.op
    if op is Op.JMP or op is Op.CALL:
        return (instr.a,)
    if op in _TARGET_C:
        return (instr.c, pc + 1)
    if op is Op.SPAWN:
        # A child thread starts at ``b`` — an entry point, hence a leader.
        return (instr.b, pc + 1)
    return ()


def block_leaders(code: Tuple[Instruction, ...]) -> List[int]:
    """Sorted code indices where a fusable run may begin.

    Leaders are the classic basic-block leaders — the entry index, every
    static branch/call/spawn target, and every instruction following a
    control transfer or non-fusable op. Branch targets must break runs:
    a backward edge into the middle of a run would otherwise let the
    same pc be both "op 3 of block A" and "op 1 of block B".
    """
    leaders = {0}
    for pc, instr in enumerate(code):
        targets = _static_targets(pc, instr)
        for target in targets:
            if 0 <= target < len(code):
                leaders.add(target)
        if targets or instr.op not in FUSABLE_OPS:
            if pc + 1 < len(code):
                leaders.add(pc + 1)
    return sorted(leaders)


def discover_blocks(
    code: Tuple[Instruction, ...], min_len: int = MIN_BLOCK_LEN
) -> Dict[int, Tuple[Instruction, ...]]:
    """``head pc → instruction run`` for every fusable block of ``code``.

    Runs extend from a leader over consecutive fusable instructions and
    stop at the next leader or the first non-fusable op; runs shorter
    than ``min_len`` are dropped.
    """
    leaders = set(block_leaders(code))
    blocks: Dict[int, Tuple[Instruction, ...]] = {}
    pc = 0
    n = len(code)
    while pc < n:
        if pc not in leaders or code[pc].op not in FUSABLE_OPS:
            pc += 1
            continue
        end = pc + 1
        while end < n and end not in leaders and code[end].op in FUSABLE_OPS:
            end += 1
        if end - pc >= min_len:
            blocks[pc] = tuple(code[pc:end])
        pc = end
    return blocks
