"""Thread contexts — the checkpointable per-thread machine state.

A :class:`ThreadContext` is deliberately plain data: integers, a register
list, a call stack of return addresses, and a :class:`BlockedReason` tag
describing why a blocked thread is waiting. ``copy()`` is the primitive
that makes DoublePlay checkpoints cheap and exact.

``retired`` counts completed instructions since thread start. DoublePlay
epoch boundaries are expressed as per-thread retired-op targets: the
epoch-parallel run executes each thread until its counter reaches the
count the thread-parallel checkpoint recorded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ThreadStatus(enum.Enum):
    """Lifecycle state of a guest thread."""

    READY = "ready"        # runnable, waiting for a core
    RUNNING = "running"    # currently scheduled on a core
    BLOCKED = "blocked"    # waiting on a sync object, join, or syscall
    EXITED = "exited"      # finished; joinable
    PARKED = "parked"      # epoch-parallel only: reached its epoch target


@dataclass(frozen=True)
class BlockedReason:
    """Why a thread is blocked, as plain copyable data.

    ``kind`` is one of ``lock``, ``cond``, ``cond-reacquire``, ``sem``,
    ``barrier``, ``join``, ``syscall``. ``detail`` carries the object
    address / target tid / syscall descriptor needed to complete the
    operation when the thread is woken.
    """

    kind: str
    detail: Tuple = ()


@dataclass
class ThreadContext:
    """Complete execution state of one guest thread."""

    tid: int
    pc: int
    registers: List[int]
    status: ThreadStatus = ThreadStatus.READY
    call_stack: List[int] = field(default_factory=list)
    retired: int = 0
    blocked: Optional[BlockedReason] = None
    #: number of threads this thread has spawned (gives children stable ids)
    spawn_count: int = 0
    #: number of syscalls this thread has issued (indexes the syscall log)
    syscall_count: int = 0
    #: tid of the thread that spawned this one (-1 for the initial thread)
    parent: int = -1
    #: completion data for a blocked op that has been granted but not yet
    #: consumed. Forms: ("sync",), ("join",),
    #: ("syscall", retval, writes, transferred). The op retires — and all
    #: its memory effects apply — when the thread is next scheduled, so
    #: retirement always happens inside the owning thread's timeslice.
    pending_grant: Optional[Tuple] = None
    #: handler pcs of signals that have fired but not yet been delivered
    #: (live executions only; injected executions deliver from the log)
    pending_signals: List[int] = field(default_factory=list)

    def copy(self) -> "ThreadContext":
        """Deep-enough copy: registers and call stack are fresh lists."""
        return ThreadContext(
            tid=self.tid,
            pc=self.pc,
            registers=list(self.registers),
            status=self.status,
            call_stack=list(self.call_stack),
            retired=self.retired,
            blocked=self.blocked,
            spawn_count=self.spawn_count,
            syscall_count=self.syscall_count,
            parent=self.parent,
            pending_grant=self.pending_grant,
            pending_signals=list(self.pending_signals),
        )

    def is_runnable(self) -> bool:
        return self.status in (ThreadStatus.READY, ThreadStatus.RUNNING)

    def state_tuple(self) -> Tuple:
        """Canonical comparable form used by divergence detection.

        Scheduling-only distinctions are normalised away: READY, RUNNING,
        PARKED and BLOCKED all compare as "live", and blocked reasons and
        pending grants are excluded. A thread blocked mid-op at ``pc`` is
        semantically identical to one parked just before issuing the op at
        ``pc``: in both cases the op has not retired, so registers, memory
        and ``retired`` agree — and those are what the tuple captures.
        """
        norm_status = "exited" if self.status == ThreadStatus.EXITED else "live"
        return (
            self.tid,
            self.pc,
            tuple(self.registers),
            tuple(self.call_stack),
            self.retired,
            norm_status,
            self.spawn_count,
            self.syscall_count,
        )

    def __repr__(self) -> str:
        return (
            f"ThreadContext(tid={self.tid}, pc={self.pc}, "
            f"status={self.status.value}, retired={self.retired})"
        )
