"""Guest instruction set architecture.

Guest programs — the workloads that DoublePlay records — are written in a
tiny deterministic ISA rather than as Python functions. The crucial
property this buys is *checkpointability*: a guest thread's entire state is
``(pc, registers, call stack, retired-op count)``, which can be copied into
an epoch checkpoint and re-executed under a different schedule. Python
threads and generators cannot be snapshotted; guest ISA contexts can.

The ISA deliberately exposes the concurrency features DoublePlay cares
about: plain loads/stores (which can race), atomic read-modify-writes,
kernel-mediated synchronisation (locks, barriers, condition variables,
semaphores), thread spawn/join, and system calls.
"""

from repro.isa.instructions import Instruction, Op
from repro.isa.context import ThreadContext, ThreadStatus, BlockedReason
from repro.isa.program import ProgramImage
from repro.isa.assembler import Assembler
from repro.isa.builder import GuestBuilder

__all__ = [
    "Instruction",
    "Op",
    "ThreadContext",
    "ThreadStatus",
    "BlockedReason",
    "ProgramImage",
    "Assembler",
    "GuestBuilder",
]
