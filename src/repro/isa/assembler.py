"""Assembler for the guest ISA.

Workloads build programs through one method per instruction plus a small
amount of structure: named data (words and arrays), functions, and local
labels. Forward references are resolved at :meth:`Assembler.assemble`
time; label and symbol mistakes raise :class:`AssemblerError` with the
offending name.

Example::

    asm = Assembler(name="count")
    counter = asm.word("counter", 0)
    with asm.function("worker"):
        asm.li("r1", 100)
        asm.label("loop")
        asm.fetchadd("r2", addr="counter", amount_reg=None, imm=1)
        asm.addi("r1", "r1", -1)
        asm.bnei("r1", 0, "loop")
        asm.exit_()
    with asm.function("main"):
        asm.spawn("r1", "worker")
        asm.spawn("r2", "worker")
        asm.join("r1")
        asm.join("r2")
        asm.exit_()
    image = asm.assemble()

Data symbols may be used wherever an address immediate is expected
(``loadg``, ``storeg``, ``li``); the assembler substitutes the word
address.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, Op
from repro.isa.program import ProgramImage
from repro.memory.layout import DATA_BASE, PAGE_WORDS

Reg = Union[str, int]
Imm = Union[int, str]  # str = data symbol, resolved to its address


@dataclass
class _Pending:
    """An emitted instruction whose label operands are not yet resolved."""

    op: Op
    a: object
    b: object
    c: object
    d: object
    function: Optional[str]


class _Label:
    """Marker wrapper distinguishing label operands from plain strings."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class Assembler:
    """Builds a :class:`ProgramImage` instruction by instruction."""

    def __init__(self, name: str = "guest", registers: int = 32):
        if registers < 4:
            raise AssemblerError("programs need at least 4 registers (spawn args)")
        self.name = name
        self.registers = registers
        self._pending: List[_Pending] = []
        self._labels: Dict[str, int] = {}
        self._symbols: Dict[str, int] = {}
        self._data: Dict[int, int] = {}
        self._data_cursor = DATA_BASE
        self._current_function: Optional[str] = None

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------
    def word(self, symbol: str, value: int = 0) -> int:
        """Reserve one initialised word of global data; returns its address."""
        return self.array(symbol, 1, values=[value])

    def array(
        self,
        symbol: str,
        length: int,
        fill: int = 0,
        values: Optional[Sequence[int]] = None,
    ) -> int:
        """Reserve ``length`` words of global data; returns the base address.

        ``values`` initialises a prefix of the array; the rest is ``fill``.
        """
        if symbol in self._symbols:
            raise AssemblerError(f"data symbol {symbol!r} defined twice")
        if length <= 0:
            raise AssemblerError(f"array {symbol!r} must have positive length")
        base = self._data_cursor
        initial = list(values or [])
        if len(initial) > length:
            raise AssemblerError(f"array {symbol!r}: {len(initial)} values > length {length}")
        for offset in range(length):
            value = initial[offset] if offset < len(initial) else fill
            self._data[base + offset] = value
        self._symbols[symbol] = base
        self._data_cursor = base + length
        return base

    def page_aligned_array(
        self,
        symbol: str,
        length: int,
        fill: int = 0,
        values: Optional[Sequence[int]] = None,
    ) -> int:
        """Like :meth:`array` but starting on a fresh page.

        Used by workloads that want per-thread data on distinct pages so
        that page-granularity baselines (CREW) see true sharing patterns.
        """
        remainder = self._data_cursor % PAGE_WORDS
        if remainder:
            self._data_cursor += PAGE_WORDS - remainder
        return self.array(symbol, length, fill=fill, values=values)

    def address_of(self, symbol: str) -> int:
        try:
            return self._symbols[symbol]
        except KeyError:
            raise AssemblerError(f"unknown data symbol {symbol!r}") from None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def function(self, name: str):
        """Define a function; its name becomes a global label."""
        if self._current_function is not None:
            raise AssemblerError(f"cannot nest function {name!r} in {self._current_function!r}")
        if name in self._labels:
            raise AssemblerError(f"label {name!r} defined twice")
        self._labels[name] = len(self._pending)
        self._current_function = name
        try:
            yield self
        finally:
            self._current_function = None

    def label(self, name: str) -> None:
        """Define a label local to the current function (global outside one)."""
        full = self._qualify(name)
        if full in self._labels:
            raise AssemblerError(f"label {name!r} defined twice")
        self._labels[full] = len(self._pending)

    def _qualify(self, name: str) -> str:
        if self._current_function is not None:
            return f"{self._current_function}.{name}"
        return name

    def here(self) -> int:
        """Current instruction index (rarely needed; labels are preferred)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------
    def _reg(self, reg: Reg) -> int:
        if isinstance(reg, str):
            if not reg.startswith("r"):
                raise AssemblerError(f"bad register name {reg!r}")
            try:
                index = int(reg[1:])
            except ValueError:
                raise AssemblerError(f"bad register name {reg!r}") from None
        else:
            index = reg
        if not 0 <= index < self.registers:
            raise AssemblerError(
                f"register {reg!r} out of range (program has {self.registers})"
            )
        return index

    def _emit(self, op: Op, a=0, b=0, c=0, d=0) -> None:
        self._pending.append(_Pending(op, a, b, c, d, self._current_function))

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    def li(self, rd: Reg, imm: Imm) -> None:
        self._emit(Op.LI, self._reg(rd), imm)

    def li_label(self, rd: Reg, target: str) -> None:
        """Load a code label's address (e.g. a signal handler's pc)."""
        self._emit(Op.LI, self._reg(rd), _Label(target))

    def mov(self, rd: Reg, rs: Reg) -> None:
        self._emit(Op.MOV, self._reg(rd), self._reg(rs))

    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.ADD, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.SUB, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.MUL, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def div(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.DIV, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def mod(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.MOD, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.AND, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.OR, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.XOR, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def addi(self, rd: Reg, rs: Reg, imm: Imm) -> None:
        self._emit(Op.ADDI, self._reg(rd), self._reg(rs), imm)

    def muli(self, rd: Reg, rs: Reg, imm: int) -> None:
        self._emit(Op.MULI, self._reg(rd), self._reg(rs), imm)

    def shli(self, rd: Reg, rs: Reg, imm: int) -> None:
        self._emit(Op.SHLI, self._reg(rd), self._reg(rs), imm)

    def shri(self, rd: Reg, rs: Reg, imm: int) -> None:
        self._emit(Op.SHRI, self._reg(rd), self._reg(rs), imm)

    def slt(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.SLT, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def slti(self, rd: Reg, rs: Reg, imm: int) -> None:
        self._emit(Op.SLTI, self._reg(rd), self._reg(rs), imm)

    def seq(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Op.SEQ, self._reg(rd), self._reg(rs1), self._reg(rs2))

    def seqi(self, rd: Reg, rs: Reg, imm: int) -> None:
        self._emit(Op.SEQI, self._reg(rd), self._reg(rs), imm)

    def tid(self, rd: Reg) -> None:
        self._emit(Op.TID, self._reg(rd))

    def nop(self) -> None:
        self._emit(Op.NOP)

    def work(self, cycles: int) -> None:
        if cycles <= 0:
            raise AssemblerError(f"work needs positive cycles, got {cycles}")
        self._emit(Op.WORK, cycles)

    def workr(self, rs: Reg) -> None:
        self._emit(Op.WORKR, self._reg(rs))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def jmp(self, target: str) -> None:
        self._emit(Op.JMP, _Label(target))

    def beq(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._emit(Op.BEQ, self._reg(rs1), self._reg(rs2), _Label(target))

    def bne(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._emit(Op.BNE, self._reg(rs1), self._reg(rs2), _Label(target))

    def blt(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._emit(Op.BLT, self._reg(rs1), self._reg(rs2), _Label(target))

    def bge(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._emit(Op.BGE, self._reg(rs1), self._reg(rs2), _Label(target))

    def beqi(self, rs: Reg, imm: int, target: str) -> None:
        self._emit(Op.BEQI, self._reg(rs), imm, _Label(target))

    def bnei(self, rs: Reg, imm: int, target: str) -> None:
        self._emit(Op.BNEI, self._reg(rs), imm, _Label(target))

    def blti(self, rs: Reg, imm: int, target: str) -> None:
        self._emit(Op.BLTI, self._reg(rs), imm, _Label(target))

    def bgei(self, rs: Reg, imm: int, target: str) -> None:
        self._emit(Op.BGEI, self._reg(rs), imm, _Label(target))

    def call(self, target: str) -> None:
        self._emit(Op.CALL, _Label(target))

    def ret(self) -> None:
        self._emit(Op.RET)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, rd: Reg, ra: Reg, off: int = 0) -> None:
        self._emit(Op.LOAD, self._reg(rd), self._reg(ra), off)

    def store(self, rs: Reg, ra: Reg, off: int = 0) -> None:
        self._emit(Op.STORE, self._reg(rs), self._reg(ra), off)

    def loadg(self, rd: Reg, addr: Imm) -> None:
        self._emit(Op.LOADG, self._reg(rd), addr)

    def storeg(self, rs: Reg, addr: Imm) -> None:
        self._emit(Op.STOREG, self._reg(rs), addr)

    # ------------------------------------------------------------------
    # Atomics
    # ------------------------------------------------------------------
    def fetchadd(self, rd: Reg, ra: Reg, off: int, rs: Reg) -> None:
        self._emit(Op.FETCHADD, self._reg(rd), self._reg(ra), off, self._reg(rs))

    def cas(self, rd: Reg, ra: Reg, off: int, rs_expect: Reg, rs_new: Reg) -> None:
        self._emit(
            Op.CAS,
            self._reg(rd),
            self._reg(ra),
            off,
            (self._reg(rs_expect), self._reg(rs_new)),
        )

    def xchg(self, rd: Reg, ra: Reg, off: int, rs: Reg) -> None:
        self._emit(Op.XCHG, self._reg(rd), self._reg(ra), off, self._reg(rs))

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def lock(self, ra: Reg) -> None:
        self._emit(Op.LOCK, self._reg(ra))

    def unlock(self, ra: Reg) -> None:
        self._emit(Op.UNLOCK, self._reg(ra))

    def barrier(self, ra: Reg, rs_count: Reg) -> None:
        self._emit(Op.BARRIER, self._reg(ra), self._reg(rs_count))

    def condwait(self, ra_cond: Reg, ra_mutex: Reg) -> None:
        self._emit(Op.CONDWAIT, self._reg(ra_cond), self._reg(ra_mutex))

    def condsignal(self, ra_cond: Reg) -> None:
        self._emit(Op.CONDSIGNAL, self._reg(ra_cond))

    def condbcast(self, ra_cond: Reg) -> None:
        self._emit(Op.CONDBCAST, self._reg(ra_cond))

    def seminit(self, ra: Reg, rs_value: Reg) -> None:
        self._emit(Op.SEMINIT, self._reg(ra), self._reg(rs_value))

    def semwait(self, ra: Reg) -> None:
        self._emit(Op.SEMWAIT, self._reg(ra))

    def sempost(self, ra: Reg) -> None:
        self._emit(Op.SEMPOST, self._reg(ra))

    # ------------------------------------------------------------------
    # Threads and OS
    # ------------------------------------------------------------------
    def spawn(self, rd: Reg, target: str, args: Sequence[Reg] = ()) -> None:
        """Spawn a thread at ``target``; ``args`` copy into the child's r0..rk."""
        if len(args) > 4:
            raise AssemblerError("spawn passes at most 4 argument registers")
        self._emit(
            Op.SPAWN,
            self._reg(rd),
            _Label(target),
            tuple(self._reg(arg) for arg in args),
        )

    def join(self, rs: Reg) -> None:
        self._emit(Op.JOIN, self._reg(rs))

    def exit_(self) -> None:
        self._emit(Op.EXIT)

    def syscall(self, rd: Reg, kind, args: Sequence[Reg] = ()) -> None:
        """Issue a system call; ``kind`` is a ``SyscallKind`` member."""
        if len(args) > 3:
            raise AssemblerError("syscalls take at most 3 argument registers")
        self._emit(
            Op.SYSCALL,
            self._reg(rd),
            kind,
            tuple(self._reg(arg) for arg in args),
        )

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def assemble(self, entry: str = "main") -> ProgramImage:
        """Resolve labels and symbols; returns the immutable image."""
        if entry not in self._labels:
            raise AssemblerError(f"entry function {entry!r} not defined")
        code = tuple(
            Instruction(
                pending.op,
                self._resolve(pending.a, pending),
                self._resolve(pending.b, pending),
                self._resolve(pending.c, pending),
                self._resolve(pending.d, pending),
            )
            for pending in self._pending
        )
        functions = {
            name: index
            for name, index in self._labels.items()
            if "." not in name
        }
        heap_base = self._data_cursor + (PAGE_WORDS - self._data_cursor % PAGE_WORDS)
        return ProgramImage(
            code=code,
            entry=self._labels[entry],
            data=dict(self._data),
            symbols=dict(self._symbols),
            functions=functions,
            register_count=self.registers,
            heap_base=heap_base,
            name=self.name,
        )

    def _resolve(self, operand, pending: _Pending):
        if isinstance(operand, _Label):
            return self._resolve_label(operand.name, pending.function)
        if isinstance(operand, str):
            # String immediates are data symbols.
            if operand not in self._symbols:
                raise AssemblerError(f"unknown data symbol {operand!r}")
            return self._symbols[operand]
        return operand

    def _resolve_label(self, name: str, function: Optional[str]) -> int:
        if function is not None:
            local = f"{function}.{name}"
            if local in self._labels:
                return self._labels[local]
        if name in self._labels:
            return self._labels[name]
        raise AssemblerError(
            f"unknown label {name!r}"
            + (f" in function {function!r}" if function else "")
        )
