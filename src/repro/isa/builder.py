"""Structured guest-code builder.

Raw assembler programs need hand-managed labels and registers. The
:class:`GuestBuilder` layers structured control flow (``for_range``,
``while_true``, ``if_*`` as context managers), scoped register allocation,
and the idioms every workload repeats (critical sections, array checksum
folds) on top of :class:`~repro.isa.assembler.Assembler` — a small
compiler front-end for the guest ISA.

Example::

    asm = Assembler(name="demo")
    asm.word("mutex", 0)
    asm.word("total", 0)
    build = GuestBuilder(asm)
    with asm.function("worker"):
        with build.scope() as s:
            i = s.reg()
            with build.for_range(i, 0, 10):
                with build.critical("mutex"):
                    tmp = s.reg()
                    asm.loadg(tmp, "total")
                    asm.addi(tmp, tmp, 1)
                    asm.storeg(tmp, "total")
                    s.release(tmp)
        asm.exit_()
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Union

from repro.errors import AssemblerError
from repro.isa.assembler import Assembler, Reg


class RegisterScope:
    """Hands out registers and reclaims them when the scope closes."""

    def __init__(self, builder: "GuestBuilder"):
        self._builder = builder
        self._held: List[str] = []

    def reg(self, init: Optional[int] = None) -> str:
        name = self._builder._allocate()
        self._held.append(name)
        if init is not None:
            self._builder.asm.li(name, init)
        return name

    def release(self, name: str) -> None:
        if name not in self._held:
            raise AssemblerError(f"register {name} not held by this scope")
        self._held.remove(name)
        self._builder._free(name)

    def close(self) -> None:
        for name in self._held:
            self._builder._free(name)
        self._held = []


class GuestBuilder:
    """Structured control flow over an :class:`Assembler`.

    Registers r0–r3 are reserved for spawn arguments and r20+ for the
    conventional main-thread join registers; the builder allocates from
    the band in between.
    """

    FIRST_REG = 4
    LAST_REG = 19

    def __init__(self, asm: Assembler):
        self.asm = asm
        self._pool = [f"r{index}" for index in range(self.FIRST_REG, self.LAST_REG + 1)]
        self._label_seq = 0

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def _allocate(self) -> str:
        if not self._pool:
            raise AssemblerError("builder register pool exhausted")
        return self._pool.pop(0)

    def _free(self, name: str) -> None:
        if name in self._pool:
            raise AssemblerError(f"double free of register {name}")
        self._pool.insert(0, name)

    @contextlib.contextmanager
    def scope(self):
        """A register scope; everything allocated in it is reclaimed."""
        scope = RegisterScope(self)
        try:
            yield scope
        finally:
            scope.close()

    def _fresh(self, stem: str) -> str:
        self._label_seq += 1
        return f"__{stem}{self._label_seq}"

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def for_range(self, counter: Reg, start: int, stop: Union[int, Reg]):
        """``for counter in range(start, stop)`` over the body."""
        top = self._fresh("for")
        self.asm.li(counter, start)
        self.asm.label(top)
        yield
        self.asm.addi(counter, counter, 1)
        if isinstance(stop, int):
            self.asm.blti(counter, stop, top)
        else:
            self.asm.blt(counter, stop, top)

    class _Loop:
        def __init__(self, builder: "GuestBuilder", top: str, end: str):
            self._builder = builder
            self.top = top
            self.end = end

        def break_(self) -> None:
            self._builder.asm.jmp(self.end)

        def break_if_zero(self, reg: Reg) -> None:
            self._builder.asm.beqi(reg, 0, self.end)

        def break_if_ge(self, reg: Reg, bound: Union[int, Reg]) -> None:
            if isinstance(bound, int):
                self._builder.asm.bgei(reg, bound, self.end)
            else:
                self._builder.asm.bge(reg, bound, self.end)

        def continue_(self) -> None:
            self._builder.asm.jmp(self.top)

    @contextlib.contextmanager
    def while_true(self):
        """An infinite loop; exit through the yielded handle's breaks."""
        top = self._fresh("while")
        end = self._fresh("endwhile")
        self.asm.label(top)
        loop = self._Loop(self, top, end)
        yield loop
        self.asm.jmp(top)
        self.asm.label(end)

    @contextlib.contextmanager
    def if_zero(self, reg: Reg):
        """Body runs when ``reg == 0``."""
        end = self._fresh("endif")
        self.asm.bnei(reg, 0, end)
        yield
        self.asm.label(end)

    @contextlib.contextmanager
    def if_nonzero(self, reg: Reg):
        """Body runs when ``reg != 0``."""
        end = self._fresh("endif")
        self.asm.beqi(reg, 0, end)
        yield
        self.asm.label(end)

    @contextlib.contextmanager
    def if_ge(self, reg: Reg, bound: int):
        """Body runs when ``reg >= bound``."""
        end = self._fresh("endif")
        self.asm.blti(reg, bound, end)
        yield
        self.asm.label(end)

    @contextlib.contextmanager
    def if_lt(self, reg: Reg, bound: int):
        """Body runs when ``reg < bound``."""
        end = self._fresh("endif")
        self.asm.bgei(reg, bound, end)
        yield
        self.asm.label(end)

    # ------------------------------------------------------------------
    # Idioms
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def critical(self, mutex_symbol: str):
        """Lock/unlock the mutex at ``mutex_symbol`` around the body."""
        with self.scope() as scope:
            lock_reg = scope.reg()
            self.asm.li(lock_reg, mutex_symbol)
            self.asm.lock(lock_reg)
            yield
            self.asm.unlock(lock_reg)

    def barrier(self, barrier_symbol: str, participants: int) -> None:
        """Arrive at the named barrier with a fixed participant count."""
        with self.scope() as scope:
            addr = scope.reg()
            count = scope.reg()
            self.asm.li(addr, barrier_symbol)
            self.asm.li(count, participants)
            self.asm.barrier(addr, count)

    def atomic_add(self, symbol: str, value_reg: Reg) -> None:
        """Atomically add ``value_reg`` into the word at ``symbol``."""
        with self.scope() as scope:
            addr = scope.reg()
            old = scope.reg()
            self.asm.li(addr, symbol)
            self.asm.fetchadd(old, addr, 0, value_reg)

    def checksum_array(self, dest: Reg, symbol: str, length: int) -> None:
        """``dest = fold(31 * acc + word)`` over the named array."""
        with self.scope() as scope:
            index = scope.reg()
            addr = scope.reg()
            word = scope.reg()
            scaled = scope.reg()
            self.asm.li(dest, 0)
            with self.for_range(index, 0, length):
                self.asm.li(addr, symbol)
                self.asm.add(addr, addr, index)
                self.asm.load(word, addr, 0)
                self.asm.muli(scaled, dest, 31)
                self.asm.add(dest, scaled, word)

    def print_reg(self, reg: Reg) -> None:
        from repro.oskernel.syscalls import SyscallKind

        with self.scope() as scope:
            result = scope.reg()
            self.asm.syscall(result, SyscallKind.PRINT, args=[reg])
