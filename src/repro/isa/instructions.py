"""Instruction encoding for the guest ISA.

An :class:`Instruction` is an opcode plus up to four generic operand slots
``a``–``d``. Operand meaning is per-opcode and documented in the
:class:`Op` members below; the assembler is the only producer, the
interpreter (``repro.exec.interpreter``) the only consumer, so the generic
encoding never leaks into workload code.

Conventions used in the operand docs:

* ``rd`` / ``rs`` — register indices (destination / source),
* ``imm`` — an integer immediate,
* ``tgt`` — an absolute code index (the assembler resolves labels),
* ``addr`` — an absolute word address in guest memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Op(enum.Enum):
    """Opcodes of the guest ISA, grouped by cost class."""

    # --- ALU (cost: alu) -------------------------------------------------
    LI = "li"            # a=rd, b=imm            rd ← imm
    MOV = "mov"          # a=rd, b=rs             rd ← rs
    ADD = "add"          # a=rd, b=rs1, c=rs2     rd ← rs1 + rs2
    SUB = "sub"          # a=rd, b=rs1, c=rs2     rd ← rs1 - rs2
    MUL = "mul"          # a=rd, b=rs1, c=rs2     rd ← rs1 * rs2
    DIV = "div"          # a=rd, b=rs1, c=rs2     rd ← rs1 // rs2 (fault on 0)
    MOD = "mod"          # a=rd, b=rs1, c=rs2     rd ← rs1 % rs2 (fault on 0)
    AND = "and"          # a=rd, b=rs1, c=rs2     rd ← rs1 & rs2
    OR = "or"            # a=rd, b=rs1, c=rs2     rd ← rs1 | rs2
    XOR = "xor"          # a=rd, b=rs1, c=rs2     rd ← rs1 ^ rs2
    ADDI = "addi"        # a=rd, b=rs, c=imm      rd ← rs + imm
    MULI = "muli"        # a=rd, b=rs, c=imm      rd ← rs * imm
    SHLI = "shli"        # a=rd, b=rs, c=imm      rd ← rs << imm
    SHRI = "shri"        # a=rd, b=rs, c=imm      rd ← rs >> imm
    SLT = "slt"          # a=rd, b=rs1, c=rs2     rd ← 1 if rs1 < rs2 else 0
    SLTI = "slti"        # a=rd, b=rs, c=imm      rd ← 1 if rs < imm else 0
    SEQ = "seq"          # a=rd, b=rs1, c=rs2     rd ← 1 if rs1 == rs2 else 0
    SEQI = "seqi"        # a=rd, b=rs, c=imm      rd ← 1 if rs == imm else 0
    TID = "tid"          # a=rd                   rd ← own thread id
    NOP = "nop"          #                        no effect

    # --- Compute block (cost: operand cycles) ----------------------------
    WORK = "work"        # a=imm                  burn imm cycles of compute
    WORKR = "workr"      # a=rs                   burn max(rs, 1) cycles

    # --- Control flow (cost: branch) --------------------------------------
    JMP = "jmp"          # a=tgt                  pc ← tgt
    BEQ = "beq"          # a=rs1, b=rs2, c=tgt    if rs1 == rs2: pc ← tgt
    BNE = "bne"          # a=rs1, b=rs2, c=tgt    if rs1 != rs2: pc ← tgt
    BLT = "blt"          # a=rs1, b=rs2, c=tgt    if rs1 <  rs2: pc ← tgt
    BGE = "bge"          # a=rs1, b=rs2, c=tgt    if rs1 >= rs2: pc ← tgt
    BEQI = "beqi"        # a=rs, b=imm, c=tgt     if rs == imm: pc ← tgt
    BNEI = "bnei"        # a=rs, b=imm, c=tgt     if rs != imm: pc ← tgt
    BLTI = "blti"        # a=rs, b=imm, c=tgt     if rs <  imm: pc ← tgt
    BGEI = "bgei"        # a=rs, b=imm, c=tgt     if rs >= imm: pc ← tgt
    CALL = "call"        # a=tgt                  push pc+1; pc ← tgt
    RET = "ret"          #                        pc ← pop()

    # --- Memory (cost: mem) ------------------------------------------------
    LOAD = "load"        # a=rd, b=ra, c=off      rd ← mem[ra + off]
    STORE = "store"      # a=rs, b=ra, c=off      mem[ra + off] ← rs
    LOADG = "loadg"      # a=rd, b=addr           rd ← mem[addr]
    STOREG = "storeg"    # a=rs, b=addr           mem[addr] ← rs

    # --- Atomics (cost: atomic) ---------------------------------------------
    FETCHADD = "fetchadd"  # a=rd, b=ra, c=off, d=rs   rd ← mem[ra+off]; mem += rs
    CAS = "cas"            # a=rd, b=ra, c=off, d=(rs_exp, rs_new)
    #                        rd ← 1 and swap if mem[ra+off] == rs_exp else 0
    XCHG = "xchg"          # a=rd, b=ra, c=off, d=rs   rd ← mem[ra+off]; mem ← rs

    # --- Kernel-mediated synchronisation (cost: sync; may block) -----------
    LOCK = "lock"          # a=ra        acquire mutex object at address ra
    UNLOCK = "unlock"      # a=ra        release mutex object at address ra
    BARRIER = "barrier"    # a=ra, b=rs  wait at barrier ra with rs participants
    CONDWAIT = "condwait"  # a=ra_cond, b=ra_mutex   wait; mutex released/reacquired
    CONDSIGNAL = "condsignal"  # a=ra_cond   wake one waiter
    CONDBCAST = "condbcast"    # a=ra_cond   wake all waiters
    SEMINIT = "seminit"    # a=ra, b=rs  initialise semaphore value to rs
    SEMWAIT = "semwait"    # a=ra        P(): block while value == 0, then decrement
    SEMPOST = "sempost"    # a=ra        V(): increment, wake one waiter

    # --- Threads (cost: spawn / alu) -----------------------------------------
    SPAWN = "spawn"        # a=rd, b=tgt, c=(arg regs...)  rd ← new tid;
    #                        child starts at tgt with r0..rk = copies of args
    JOIN = "join"          # a=rs        block until thread rs exits
    EXIT = "exit"          #             terminate this thread

    # --- Operating system (cost: syscall; may block) --------------------------
    SYSCALL = "syscall"    # a=rd, b=kind, c=(arg regs...)  rd ← result


#: Opcodes that the happens-before race detector treats as synchronisation.
SYNC_OPS = frozenset(
    {
        Op.LOCK,
        Op.UNLOCK,
        Op.BARRIER,
        Op.CONDWAIT,
        Op.CONDSIGNAL,
        Op.CONDBCAST,
        Op.SEMINIT,
        Op.SEMWAIT,
        Op.SEMPOST,
    }
)

#: Opcodes that can suspend the executing thread.
BLOCKING_OPS = frozenset(
    {Op.LOCK, Op.BARRIER, Op.CONDWAIT, Op.SEMWAIT, Op.JOIN, Op.SYSCALL}
)


@dataclass(frozen=True)
class Instruction:
    """One decoded guest instruction.

    Immutable so that program images can be shared freely between the
    thread-parallel execution, every epoch-parallel executor and every
    replay without copying.
    """

    op: Op
    a: Any = 0
    b: Any = 0
    c: Any = 0
    d: Any = 0

    def __repr__(self) -> str:
        operands = ", ".join(
            str(operand)
            for operand in (self.a, self.b, self.c, self.d)
            if operand != 0 or self.op in (Op.LI, Op.MOV)
        )
        return f"{self.op.value} {operands}".strip()
