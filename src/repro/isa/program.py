"""Program images — assembled, immutable guest programs.

A :class:`ProgramImage` is everything the execution engine needs to run a
guest: the decoded instruction list, the entry point, the initial data
segment, and the symbol tables the assembler produced. Images are shared
(never copied) between all executions of a recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class ProgramImage:
    """An assembled guest program.

    Attributes:
        code: decoded instructions; branch targets are absolute indices.
        entry: code index where the initial thread starts.
        data: initial contents of guest memory, ``{word address: value}``.
        symbols: global data symbol → word address.
        functions: function name → code index.
        register_count: registers per thread context.
        heap_base: first word address available to the ALLOC syscall.
        name: human-readable program name (used in reports).
    """

    code: tuple
    entry: int
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    functions: Dict[str, int] = field(default_factory=dict)
    register_count: int = 32
    heap_base: int = 0
    name: str = "guest"

    def __getstate__(self):
        # Host-wire form: the declared fields only. The interpreter caches
        # its decoded ``(handler, instr)`` table in ``__dict__`` (see
        # ``repro.exec.interpreter.decode_program``); handlers are
        # host-process function objects, so the cache is stripped here and
        # rebuilt on first use in the receiving process — decode is a pure
        # function of ``code``, so the rebuilt table is identical.
        return {
            "code": self.code,
            "entry": self.entry,
            "data": self.data,
            "symbols": self.symbols,
            "functions": self.functions,
            "register_count": self.register_count,
            "heap_base": self.heap_base,
            "name": self.name,
        }

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def fetch(self, pc: int) -> Instruction:
        """Instruction at ``pc``; faults on out-of-range pc."""
        if 0 <= pc < len(self.code):
            return self.code[pc]
        raise AssemblerError(f"pc {pc} outside program of {len(self.code)} instructions")

    def address_of(self, symbol: str) -> int:
        """Word address of a global data symbol."""
        try:
            return self.symbols[symbol]
        except KeyError:
            raise AssemblerError(f"unknown data symbol {symbol!r}") from None

    def __len__(self) -> int:
        return len(self.code)
