"""Experiment drivers — one function per table/figure of the evaluation.

Each driver returns structured rows (lists of dicts) so tests can assert
on the numbers, and the ``benchmarks/`` wrappers print them with
:func:`repro.analysis.tables.render_table`. See DESIGN.md for the
experiment index and EXPERIMENTS.md for paper-vs-measured results.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import fmt_bytes, fmt_pct, geomean_overhead
from repro.baselines import (
    record_crew,
    record_uniprocessor,
    record_value_log,
    run_native,
)
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer
from repro.core.recorder import RecordResult
from repro.exec.trace import CollectingObserver
from repro.machine.config import MachineConfig
from repro.memory.layout import page_of
from repro.race.detector import find_races
from repro.workloads import WORKLOADS, WorkloadInstance, build_workload, workload_names

#: default experiment parameters (kept small enough for CI, large enough
#: that per-epoch costs are realistic fractions of an epoch)
DEFAULT_SCALE = 24
DEFAULT_SEED = 1
DEFAULT_EPOCH_DIVISOR = 18
MIN_EPOCH_CYCLES = 600


def race_free_names() -> List[str]:
    return [name for name in workload_names() if not WORKLOADS[name].racy]


def racy_names() -> List[str]:
    return [name for name in workload_names() if WORKLOADS[name].racy]


def record_once(
    instance: WorkloadInstance,
    machine: MachineConfig,
    native_duration: int,
    spare_cores: bool = True,
    use_sync_hints: bool = True,
    epoch_divisor: int = DEFAULT_EPOCH_DIVISOR,
    adaptive: bool = False,
) -> RecordResult:
    """Record an instance with epochs sized relative to its native run."""
    epoch_cycles = max(native_duration // epoch_divisor, MIN_EPOCH_CYCLES)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=epoch_cycles,
        spare_cores=spare_cores,
        use_sync_hints=use_sync_hints,
        adaptive_epochs=adaptive,
    )
    return DoublePlayRecorder(instance.image, instance.setup, config).record()


# ----------------------------------------------------------------------
# Table 1 — workload characteristics
# ----------------------------------------------------------------------
def workload_characteristics(
    workers: int = 2, scale: int = 4, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """Threads, instructions, syscalls, sync ops, shared pages, races."""
    rows = []
    for name in workload_names():
        instance = build_workload(name, workers=workers, scale=scale, seed=seed)
        observer = CollectingObserver()
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine, observers=[observer])
        page_users: Dict[int, set] = defaultdict(set)
        syscalls = 0
        sync_ops = 0
        for event in observer.events:
            if event.kind in ("read", "write"):
                page_users[page_of(event.addr)].add(event.tid)
            elif event.kind == "syscall":
                syscalls += 1
            elif event.kind in ("acquire", "release", "barrier"):
                sync_ops += 1
        shared_pages = sum(1 for users in page_users.values() if len(users) > 1)
        races = find_races(observer.events)
        rows.append(
            {
                "workload": name,
                "category": WORKLOADS[name].category,
                "threads": len(native.engine.contexts),
                "instructions": native.ops,
                "cycles": native.duration,
                "syscalls": syscalls,
                "sync_ops": sync_ops,
                "shared_pages": shared_pages,
                "races": len(races),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figs 5/6/7 — logging overhead
# ----------------------------------------------------------------------
def overhead_experiment(
    workers: int,
    spare_cores: bool = True,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
    epoch_divisor: int = DEFAULT_EPOCH_DIVISOR,
) -> List[Dict]:
    """Per-workload DoublePlay logging overhead vs native."""
    rows = []
    for name in names or race_free_names():
        instance = build_workload(name, workers=workers, scale=scale, seed=seed)
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine)
        result = record_once(
            instance,
            machine,
            native.duration,
            spare_cores=spare_cores,
            epoch_divisor=epoch_divisor,
        )
        rows.append(
            {
                "workload": name,
                "native": native.duration,
                "makespan": result.makespan,
                "overhead": fmt_pct(result.overhead_vs(native.duration)),
                "overhead_raw": result.overhead_vs(native.duration),
                "epochs": result.recording.epoch_count(),
                "divergences": result.recording.divergences(),
            }
        )
    rows.append(
        {
            "workload": "GEOMEAN",
            "overhead": fmt_pct(geomean_overhead([r["overhead_raw"] for r in rows])),
            "overhead_raw": geomean_overhead([r["overhead_raw"] for r in rows]),
        }
    )
    return rows


# ----------------------------------------------------------------------
# Table 2 — log sizes
# ----------------------------------------------------------------------
def _durable_disk_bytes(recording) -> int:
    """Compressed segment bytes the durable sharded log writes for this
    recording (default codec, no fsync) — the on-disk counterpart of the
    in-memory event totals, so Table 2 covers the durable format too.
    Blob-store (checkpoint page) bytes are excluded: Table 2 compares
    event-log volume, and checkpoints are priced separately."""
    import tempfile

    from repro.record.shards import persist_recording

    with tempfile.TemporaryDirectory(prefix="repro-table2-") as tmp:
        totals = persist_recording(recording, tmp, fsync=False)
    return totals["segment_bytes"]


def log_size_experiment(
    workers: int = 2,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """DoublePlay log composition, with CREW / value-log volume alongside."""
    rows = []
    for name in names or race_free_names():
        instance = build_workload(name, workers=workers, scale=scale, seed=seed)
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine)
        result = record_once(instance, machine, native.duration)
        recording = result.recording
        crew = record_crew(
            build_workload(name, workers=workers, scale=scale, seed=seed).image,
            instance.setup,
            machine,
        )
        value = record_value_log(
            build_workload(name, workers=workers, scale=scale, seed=seed).image,
            instance.setup,
            machine,
        )
        total = recording.total_log_bytes()
        disk = _durable_disk_bytes(recording)
        rows.append(
            {
                "workload": name,
                "schedule": fmt_bytes(recording.schedule_log_bytes()),
                "sync": fmt_bytes(recording.sync_log_bytes()),
                "syscall": fmt_bytes(recording.syscall_log_bytes()),
                "dp_total": fmt_bytes(total),
                "dp_total_raw": total,
                "disk_shards": fmt_bytes(disk),
                "disk_shards_raw": disk,
                "per_mcycle": fmt_bytes(int(total * 1_000_000 / max(native.duration, 1))),
                "crew": fmt_bytes(crew.log_bytes),
                "crew_raw": crew.log_bytes,
                "value_log": fmt_bytes(value.log_bytes),
                "value_log_raw": value.log_bytes,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 8 — replay speed
# ----------------------------------------------------------------------
def replay_speed_experiment(
    workers: int = 2,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Sequential vs parallel epoch replay, normalised to the native run."""
    rows = []
    for name in names or race_free_names():
        instance = build_workload(name, workers=workers, scale=scale, seed=seed)
        machine = MachineConfig(cores=workers)
        native = run_native(instance.image, instance.setup, machine)
        result = record_once(instance, machine, native.duration)
        replayer = Replayer(instance.image, machine)
        sequential = replayer.replay_sequential(result.recording)
        parallel = replayer.replay_parallel(result.recording, workers=workers)
        rows.append(
            {
                "workload": name,
                "native": native.duration,
                "sequential": sequential.total_cycles,
                "seq_x": f"{sequential.total_cycles / native.duration:.2f}x",
                "seq_x_raw": sequential.total_cycles / native.duration,
                "parallel": parallel.makespan,
                "par_x": f"{parallel.makespan / native.duration:.2f}x",
                "par_x_raw": parallel.makespan / native.duration,
                "verified": sequential.verified and parallel.verified,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 3 — divergence and forward recovery
# ----------------------------------------------------------------------
def divergence_experiment(
    workers: int = 2,
    scale: int = 8,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Racy workloads with and without sync hints; recovery and fidelity."""
    rows = []
    for name in racy_names() + ["pbzip", "mysql"]:
        for hints in (True, False):
            instance = build_workload(name, workers=workers, scale=scale, seed=seed)
            machine = MachineConfig(cores=workers)
            native = run_native(instance.image, instance.setup, machine)
            result = record_once(
                instance, machine, native.duration, use_sync_hints=hints
            )
            replayer = Replayer(instance.image, machine)
            verified = replayer.replay_sequential(result.recording).verified
            rows.append(
                {
                    "workload": name,
                    "racy": WORKLOADS[name].racy,
                    "sync_hints": hints,
                    "epochs": result.recording.epoch_count(),
                    "divergences": result.recording.divergences(),
                    "recoveries": result.stats.get("recoveries", 0),
                    "overhead": fmt_pct(result.overhead_vs(native.duration)),
                    "overhead_raw": result.overhead_vs(native.duration),
                    "replay_ok": verified,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig 9 — epoch-length sensitivity
# ----------------------------------------------------------------------
def epoch_length_experiment(
    name: str = "pbzip",
    workers: int = 2,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    divisors: Sequence[int] = (4, 8, 14, 22, 36, 60),
) -> List[Dict]:
    """Overhead as a function of epoch length (short → long epochs)."""
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    rows = []
    for divisor in divisors:
        fresh = build_workload(name, workers=workers, scale=scale, seed=seed)
        result = record_once(
            fresh, machine, native.duration, epoch_divisor=divisor
        )
        rows.append(
            {
                "workload": name,
                "epoch_cycles": max(native.duration // divisor, MIN_EPOCH_CYCLES),
                "epochs": result.recording.epoch_count(),
                "overhead": fmt_pct(result.overhead_vs(native.duration)),
                "overhead_raw": result.overhead_vs(native.duration),
                "log_bytes": result.recording.total_log_bytes(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 10 — comparison with recording baselines
# ----------------------------------------------------------------------
def baseline_comparison(
    workers: int = 2,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """DoublePlay vs uniprocessor record vs CREW vs value logging."""
    rows = []
    for name in names or race_free_names():
        machine = MachineConfig(cores=workers)
        instance = build_workload(name, workers=workers, scale=scale, seed=seed)
        native = run_native(instance.image, instance.setup, machine)

        dp = record_once(
            build_workload(name, workers=workers, scale=scale, seed=seed),
            machine,
            native.duration,
        )
        uni = record_uniprocessor(
            build_workload(name, workers=workers, scale=scale, seed=seed).image,
            instance.setup,
            machine,
        )
        crew = record_crew(
            build_workload(name, workers=workers, scale=scale, seed=seed).image,
            instance.setup,
            machine,
        )
        value = record_value_log(
            build_workload(name, workers=workers, scale=scale, seed=seed).image,
            instance.setup,
            machine,
        )
        rows.append(
            {
                "workload": name,
                "doubleplay": fmt_pct(dp.overhead_vs(native.duration)),
                "doubleplay_raw": dp.overhead_vs(native.duration),
                "uniproc": fmt_pct(uni.duration / native.duration - 1),
                "uniproc_raw": uni.duration / native.duration - 1,
                "crew": fmt_pct(crew.duration / native.duration - 1),
                "crew_raw": crew.duration / native.duration - 1,
                "valuelog": fmt_pct(value.duration / native.duration - 1),
                "valuelog_raw": value.duration / native.duration - 1,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablation A — sync hints on race-free workloads
# ----------------------------------------------------------------------
def ablation_sync_hints(
    workers: int = 2,
    scale: int = 8,
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Divergence counts with hints on vs off, race-free suite."""
    rows = []
    for name in names or race_free_names():
        for hints in (True, False):
            instance = build_workload(name, workers=workers, scale=scale, seed=seed)
            machine = MachineConfig(cores=workers)
            native = run_native(instance.image, instance.setup, machine)
            result = record_once(
                instance, machine, native.duration, use_sync_hints=hints
            )
            rows.append(
                {
                    "workload": name,
                    "sync_hints": hints,
                    "divergences": result.recording.divergences(),
                    "overhead": fmt_pct(result.overhead_vs(native.duration)),
                    "overhead_raw": result.overhead_vs(native.duration),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Ablation C — executor (spare core) count sweep
# ----------------------------------------------------------------------
def spare_core_sweep(
    name: str = "fft",
    workers: int = 4,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    executor_counts: Sequence[int] = (1, 2, 3, 4, 6),
) -> List[Dict]:
    """Overhead as the epoch-executor pool shrinks below W.

    Each epoch's uniprocessor re-execution takes ~W× the epoch's wall
    time, so fewer than W executors cannot keep up: the recording falls
    behind and the in-flight bound throttles the application. This is the
    paper's "DoublePlay needs W spare cores" requirement, measured.
    """
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    rows = []
    for executors in executor_counts:
        fresh = build_workload(name, workers=workers, scale=scale, seed=seed)
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // DEFAULT_EPOCH_DIVISOR, MIN_EPOCH_CYCLES),
            epoch_workers=executors,
        )
        result = DoublePlayRecorder(fresh.image, fresh.setup, config).record()
        rows.append(
            {
                "workload": name,
                "executors": executors,
                "workers": workers,
                "overhead": fmt_pct(result.overhead_vs(native.duration)),
                "overhead_raw": result.overhead_vs(native.duration),
                "throttle_stall": result.stats.get("makespan", 0)
                - result.stats.get("tp_finish", 0),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablation B — checkpoint cost sweep
# ----------------------------------------------------------------------
def ablation_checkpoint_cost(
    name: str = "ocean",
    workers: int = 2,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    cow_costs: Sequence[int] = (2, 10, 40, 120),
) -> List[Dict]:
    """Overhead as copy-on-write page cost scales (checkpoint pressure)."""
    rows = []
    for cow in cow_costs:
        machine = MachineConfig(cores=workers)
        machine = machine.replace(costs=machine.costs.replace(page_cow_copy=cow))
        instance = build_workload(name, workers=workers, scale=scale, seed=seed)
        native = run_native(instance.image, instance.setup, machine)
        result = record_once(instance, machine, native.duration)
        rows.append(
            {
                "workload": name,
                "page_cow_copy": cow,
                "overhead": fmt_pct(result.overhead_vs(native.duration)),
                "overhead_raw": result.overhead_vs(native.duration),
                "divergences": result.recording.divergences(),
            }
        )
    return rows
