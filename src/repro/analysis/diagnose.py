"""Divergence diagnosis: which race caused a rollback?

A recovered epoch means the epoch-parallel re-execution resolved some
conflicting accesses differently than the thread-parallel run — i.e. a
data race fired inside that epoch. Because the recording replays the
epoch deterministically, we can re-execute exactly that interval under
the happens-before detector and name the racing addresses, turning "epoch
7 rolled back" into "threads 1025 and 1026 race on address 64".

This is the workflow DoublePlay's authors pursued in follow-on work
(using uniparallel replay as a race-analysis substrate); here it is a
small composition of the replayer and the detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ReplayError
from repro.exec.services import InjectedSyscalls
from repro.exec.trace import CollectingObserver
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.race.detector import Race, find_races
from repro.record.recording import Recording
from repro.record.sync_log import SyncOrderOracle


@dataclass
class EpochDiagnosis:
    """What the detector found inside one replayed epoch."""

    epoch_index: int
    recovered: bool
    races: List[Race] = field(default_factory=list)
    #: guest word addresses involved in races
    racy_addresses: List[int] = field(default_factory=list)

    @property
    def racy(self) -> bool:
        return bool(self.races)


def diagnose_epoch(
    program: ProgramImage,
    machine: MachineConfig,
    recording: Recording,
    epoch_index: int,
) -> EpochDiagnosis:
    """Replay one epoch under the race detector.

    Requires the epoch's start checkpoint (materialise first for
    deserialised recordings). The replayed interval contains exactly the
    committed execution's accesses for that epoch, so any race reported
    happened within it.
    """
    epoch = next((e for e in recording.epochs if e.index == epoch_index), None)
    if epoch is None:
        raise ReplayError(f"recording has no epoch {epoch_index}")
    if epoch.start_checkpoint is None:
        raise ReplayError(
            f"epoch {epoch_index} has no materialised checkpoint; call "
            "Replayer.materialize_checkpoints first"
        )
    observer = CollectingObserver()
    engine = UniprocessorEngine.from_checkpoint(
        program,
        machine,
        InjectedSyscalls(recording.syscalls_for_epochs()),
        memory_snapshot=epoch.start_checkpoint.memory,
        contexts=epoch.start_checkpoint.copy_contexts(),
        sync_state=epoch.start_checkpoint.sync_state,
        targets=dict(epoch.targets),
        wake_blocked_io=True,
        name=f"{program.name}/diagnose{epoch_index}",
    )
    engine.sync.oracle = SyncOrderOracle(epoch.sync_log)
    engine.install_signal_records(recording.signal_records)
    engine.observers.append(observer)
    engine.run_schedule(epoch.schedule)
    races = find_races(observer.events)
    return EpochDiagnosis(
        epoch_index=epoch_index,
        recovered=epoch.recovered,
        races=races,
        racy_addresses=sorted({race.addr for race in races}),
    )


def diagnose_recording(
    program: ProgramImage,
    machine: MachineConfig,
    recording: Recording,
) -> List[EpochDiagnosis]:
    """Diagnose every *recovered* epoch of a recording.

    Recovered epochs are where divergence — and therefore a manifested
    race — occurred; clean epochs are skipped (their races, if any, did
    not fire).
    """
    return [
        diagnose_epoch(program, machine, recording, epoch.index)
        for epoch in recording.epochs
        if epoch.recovered
    ]
