"""Small metric helpers shared by the experiment drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class OverheadRow:
    """One workload's overhead measurement."""

    workload: str
    native: int
    makespan: int
    epochs: int
    divergences: int

    @property
    def overhead(self) -> float:
        return self.makespan / self.native - 1.0


def geomean_overhead(overheads: Iterable[float]) -> float:
    """Geometric mean of (1 + overhead) minus 1 — the paper's average."""
    values = [1.0 + o for o in overheads]
    if not values:
        raise ValueError("no overheads to average")
    return math.exp(sum(math.log(v) for v in values) / len(values)) - 1.0


def fmt_pct(value: float) -> str:
    return f"{value * 100:.1f}%"


def fmt_bytes(value: int) -> str:
    if value >= 1 << 20:
        return f"{value / (1 << 20):.2f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f} KiB"
    return f"{value} B"
