"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(rows: Sequence[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render dict rows as an aligned ASCII table.

    Missing keys render as empty cells; all values are ``str()``-ed.
    """
    cells: List[List[str]] = [[str(col) for col in columns]]
    for row in rows:
        cells.append([str(row.get(col, "")) for col in columns])
    widths = [
        max(len(line[index]) for line in cells) for index in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(
        cells[0][index].ljust(widths[index]) for index in range(len(columns))
    )
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in cells[1:]:
        lines.append(
            " | ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        )
    return "\n".join(lines)
