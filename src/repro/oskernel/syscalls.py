"""System call numbering and outcome types.

A syscall either completes immediately (:class:`SyscallDone`) or blocks
(:class:`SyscallBlock`); blocked calls later complete through a
:class:`Wakeup`. Every completion carries the return value and the list of
guest-memory writes it performed — exactly the information DoublePlay must
log so the epoch-parallel execution and replay can inject results without a
kernel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class SyscallKind(enum.Enum):
    """Guest-visible system calls.

    File names are small integers (the workload's kernel setup names
    them), keeping the ISA free of string handling.
    """

    OPEN = "open"        # (file_id) → fd
    CLOSE = "close"      # (fd) → 0
    READ = "read"        # (fd, buf, maxlen) → words read (0 = EOF); shared offset
    WRITE = "write"      # (fd, buf, len) → words written (append)
    LISTEN = "listen"    # () → listening socket fd
    ACCEPT = "accept"    # (sock) → connection fd; blocks for an arrival
    RECV = "recv"        # (fd, buf, maxlen) → words received (0 = drained)
    SEND = "send"        # (fd, buf, len) → words sent (captured as output)
    TIME = "time"        # () → current simulated cycle
    RAND = "rand"        # () → deterministic pseudo-random input word
    GETPID = "getpid"    # () → 1
    ALLOC = "alloc"      # (nwords) → base address of fresh zeroed memory
    PRINT = "print"      # (value) → 0; appends to the program's output
    SLEEP = "sleep"      # (cycles) → 0; blocks for the duration
    YIELD = "yield"      # () → 0; scheduling hint only
    SETTIMER = "settimer"  # (delay, handler_pc) → 0; deliver a signal to
    #                        the calling thread after ~delay cycles


#: writes applied to guest memory: ((base_addr, (word, ...)), ...)
BufferWrites = Tuple[Tuple[int, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class SyscallDone:
    """Immediate completion."""

    retval: int
    writes: BufferWrites = ()
    #: extra words transferred (engine converts to cycles via the cost model)
    transferred: int = 0


@dataclass(frozen=True)
class SyscallBlock:
    """The calling thread must park; the kernel recorded it as a waiter."""

    reason: str


@dataclass(frozen=True)
class Wakeup:
    """Deferred completion of a previously blocked syscall."""

    tid: int
    retval: int
    writes: BufferWrites = ()
    transferred: int = 0


@dataclass(frozen=True)
class SignalDelivery:
    """An asynchronous signal becoming deliverable to a thread."""

    tid: int
    handler_pc: int


@dataclass(frozen=True)
class SyscallRecord:
    """One logged syscall completion (what recordings store).

    ``seq`` is the per-thread syscall sequence number — the index the
    injector uses, making injection independent of cross-thread order.
    """

    tid: int
    seq: int
    kind: SyscallKind
    retval: int
    writes: BufferWrites = ()
    transferred: int = 0

    def size_words(self) -> int:
        """Approximate log footprint in words (for the log-size table)."""
        data_words = sum(len(words) for _, words in self.writes)
        return 4 + 2 * len(self.writes) + data_words
