"""Simulated network: timed request arrivals and captured responses.

Server workloads (the Apache- and MySQL-like programs) are driven by an
*arrival schedule* the workload fixes up front: each :class:`Arrival` is a
request payload that becomes available to ``accept`` at a simulated time.
Arrival times are the nondeterministic input; which worker thread accepts
which request is scheduling nondeterminism — both are exactly the things a
record/replay system must capture.

Responses ``send``-ed on a connection are captured per connection so
workload validators can check them, and so replay fidelity is observable
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SyscallError


@dataclass(frozen=True)
class Arrival:
    """One inbound request: available at ``time`` with ``payload`` words."""

    time: int
    payload: Tuple[int, ...]


@dataclass
class _Connection:
    payload: List[int]
    cursor: int
    responses: List[int]


class SimNetwork:
    """A single listening socket with scheduled arrivals."""

    def __init__(self, arrivals: List[Arrival]):
        self._arrivals = sorted(arrivals, key=lambda arrival: arrival.time)
        self._next_arrival = 0
        self._backlog: List[Tuple[int, ...]] = []
        self._listening = False
        self._connections: Dict[int, _Connection] = {}
        self._next_conn_fd = 1000
        #: tids blocked in accept, FIFO
        self.accept_waiters: List[int] = []

    # ------------------------------------------------------------------
    # Time-driven arrival processing
    # ------------------------------------------------------------------
    def next_arrival_time(self) -> Optional[int]:
        if self._next_arrival < len(self._arrivals):
            return self._arrivals[self._next_arrival].time
        return None

    def admit_arrivals(self, now: int) -> int:
        """Move every arrival due by ``now`` into the backlog; returns count."""
        admitted = 0
        while (
            self._next_arrival < len(self._arrivals)
            and self._arrivals[self._next_arrival].time <= now
        ):
            self._backlog.append(self._arrivals[self._next_arrival].payload)
            self._next_arrival += 1
            admitted += 1
        return admitted

    def backlog_size(self) -> int:
        return len(self._backlog)

    # ------------------------------------------------------------------
    # Socket operations
    # ------------------------------------------------------------------
    def listen(self) -> int:
        self._listening = True
        return 999  # the single listening socket's fd

    def try_accept(self) -> Optional[int]:
        """Pop one backlog request into a fresh connection; None if empty."""
        if not self._listening:
            raise SyscallError("accept before listen")
        if not self._backlog:
            return None
        payload = self._backlog.pop(0)
        fd = self._next_conn_fd
        self._next_conn_fd += 1
        self._connections[fd] = _Connection(
            payload=list(payload), cursor=0, responses=[]
        )
        return fd

    def recv(self, fd: int, maxlen: int) -> List[int]:
        conn = self._connections.get(fd)
        if conn is None:
            raise SyscallError(f"recv on unknown connection fd {fd}")
        chunk = conn.payload[conn.cursor : conn.cursor + maxlen]
        conn.cursor += len(chunk)
        return chunk

    def send(self, fd: int, words: List[int]) -> int:
        conn = self._connections.get(fd)
        if conn is None:
            raise SyscallError(f"send on unknown connection fd {fd}")
        conn.responses.extend(words)
        return len(words)

    def all_responses(self) -> Dict[int, List[int]]:
        """connection fd → captured response words (for validators)."""
        return {fd: list(conn.responses) for fd, conn in self._connections.items()}

    def all_conversations(self) -> Dict[int, Tuple[List[int], List[int]]]:
        """connection fd → (request payload, response words)."""
        return {
            fd: (list(conn.payload), list(conn.responses))
            for fd, conn in self._connections.items()
        }

    def pending_requests(self) -> int:
        """Requests not yet admitted plus backlog (used by adaptive epochs)."""
        return len(self._arrivals) - self._next_arrival + len(self._backlog)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple:
        return (
            self._next_arrival,
            tuple(tuple(payload) for payload in self._backlog),
            self._listening,
            {
                fd: (tuple(conn.payload), conn.cursor, tuple(conn.responses))
                for fd, conn in self._connections.items()
            },
            self._next_conn_fd,
            tuple(self.accept_waiters),
        )

    def restore(self, state: Tuple) -> None:
        (
            self._next_arrival,
            backlog,
            self._listening,
            connections,
            self._next_conn_fd,
            accept_waiters,
        ) = state
        self._backlog = [tuple(payload) for payload in backlog]
        self._connections = {
            fd: _Connection(payload=list(payload), cursor=cursor, responses=list(responses))
            for fd, (payload, cursor, responses) in connections.items()
        }
        self.accept_waiters = list(accept_waiters)
