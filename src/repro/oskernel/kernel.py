"""The kernel facade: syscall dispatch, timed wakeups, whole-OS snapshot.

One :class:`Kernel` instance backs one *live* execution (native runs and
DoublePlay's thread-parallel execution). Epoch-parallel executions and
replays never construct a kernel — they inject logged syscall results
instead (see ``repro.exec.services``), which is precisely the paper's
split: the thread-parallel run interacts with the world and logs it; the
epoch-parallel run consumes the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SyscallError
from repro.memory.address_space import AddressSpace
from repro.memory.hashing import hash_structure
from repro.memory.layout import PAGE_WORDS
from repro.oskernel.files import SimFileSystem
from repro.oskernel.net import Arrival, SimNetwork
from repro.oskernel.syscalls import (
    SignalDelivery,
    SyscallBlock,
    SyscallDone,
    SyscallKind,
    Wakeup,
)
from repro.sim.rng import DeterministicRng

#: ``next_event_time`` cache sentinel (``None`` is a valid cached value).
_STALE_EVENT = object()


@dataclass
class KernelSetup:
    """Everything a workload configures about the external world.

    Attributes:
        files: initial filesystem contents, file id → words.
        arrivals: network request schedule for server workloads.
        rand_seed: seed for the RAND syscall stream.
    """

    files: Dict[int, List[int]] = field(default_factory=dict)
    arrivals: List[Arrival] = field(default_factory=list)
    rand_seed: int = 0


class Kernel:
    """Live simulated OS for one execution."""

    def __init__(self, setup: KernelSetup, heap_base: int):
        self.fs = SimFileSystem(setup.files)
        self.net = SimNetwork(setup.arrivals)
        self._rng = DeterministicRng(setup.rand_seed, "kernel-rand")
        self._brk = heap_base
        self.output: List[int] = []
        #: (wake time, insertion seq, tid) for sleeping threads
        self._sleepers: List[Tuple[int, int, int]] = []
        self._sleep_seq = 0
        #: (fire time, seq, tid, handler pc) armed via SETTIMER
        self._timers: List[Tuple[int, int, int, int]] = []
        self._timer_seq = 0
        # Cached next_event_time (engines poll it once or twice per op).
        # It is a pure function of the net arrival cursor, _sleepers and
        # _timers, all of which change only inside syscall/wakeups/
        # signal_deliveries/restore — each of those drops the cache.
        self._next_event_cache = _STALE_EVENT

    # ------------------------------------------------------------------
    # Syscall dispatch
    # ------------------------------------------------------------------
    def syscall(
        self,
        tid: int,
        kind: SyscallKind,
        args: Sequence[int],
        mem: AddressSpace,
        now: int,
    ):
        """Execute one syscall; returns :class:`SyscallDone` or
        :class:`SyscallBlock` (having queued the thread as a waiter)."""
        self._next_event_cache = _STALE_EVENT
        if kind == SyscallKind.OPEN:
            return SyscallDone(self.fs.open(args[0]))
        if kind == SyscallKind.CLOSE:
            return SyscallDone(self.fs.close(args[0]))
        if kind == SyscallKind.READ:
            fd, buf, maxlen = args[0], args[1], args[2]
            mem.check_range(buf, maxlen)
            words = self.fs.read(fd, maxlen)
            if words:
                mem.write_block(buf, words)
                return SyscallDone(
                    len(words),
                    writes=((buf, tuple(words)),),
                    transferred=len(words),
                )
            return SyscallDone(0)
        if kind == SyscallKind.WRITE:
            fd, buf, length = args[0], args[1], args[2]
            words = mem.read_block(buf, length)
            return SyscallDone(self.fs.write(fd, words), transferred=length)
        if kind == SyscallKind.LISTEN:
            return SyscallDone(self.net.listen())
        if kind == SyscallKind.ACCEPT:
            self.net.admit_arrivals(now)
            fd = self.net.try_accept()
            if fd is not None:
                return SyscallDone(fd)
            self.net.accept_waiters.append(tid)
            return SyscallBlock("net-accept")
        if kind == SyscallKind.RECV:
            fd, buf, maxlen = args[0], args[1], args[2]
            mem.check_range(buf, maxlen)
            words = self.net.recv(fd, maxlen)
            if words:
                mem.write_block(buf, words)
                return SyscallDone(
                    len(words),
                    writes=((buf, tuple(words)),),
                    transferred=len(words),
                )
            return SyscallDone(0)
        if kind == SyscallKind.SEND:
            fd, buf, length = args[0], args[1], args[2]
            words = mem.read_block(buf, length)
            return SyscallDone(self.net.send(fd, words), transferred=length)
        if kind == SyscallKind.TIME:
            return SyscallDone(now)
        if kind == SyscallKind.RAND:
            return SyscallDone(self._rng.randint(0, (1 << 31) - 1))
        if kind == SyscallKind.GETPID:
            return SyscallDone(1)
        if kind == SyscallKind.ALLOC:
            return SyscallDone(self._alloc(args[0], mem))
        if kind == SyscallKind.PRINT:
            self.output.append(args[0])
            return SyscallDone(0)
        if kind == SyscallKind.SLEEP:
            duration = max(args[0], 0)
            self._sleepers.append((now + duration, self._sleep_seq, tid))
            self._sleep_seq += 1
            return SyscallBlock("sleep")
        if kind == SyscallKind.YIELD:
            return SyscallDone(0)
        if kind == SyscallKind.SETTIMER:
            delay = max(args[0], 0)
            self._timers.append((now + delay, self._timer_seq, tid, args[1]))
            self._timer_seq += 1
            return SyscallDone(0)
        raise SyscallError(f"unsupported syscall {kind!r}", tid)

    def _alloc(self, nwords: int, mem: AddressSpace) -> int:
        if nwords <= 0:
            raise SyscallError(f"alloc of non-positive size {nwords}")
        base = self._brk
        self._brk += nwords
        # Round the break to a page so consecutive allocations do not
        # false-share pages (matters to the CREW baseline).
        remainder = self._brk % PAGE_WORDS
        if remainder:
            self._brk += PAGE_WORDS - remainder
        mem.map_range(base, nwords)
        return base

    # ------------------------------------------------------------------
    # Timed wakeups
    # ------------------------------------------------------------------
    def wakeups(self, now: int, mem: AddressSpace) -> List[Wakeup]:
        """Complete every blocked syscall that becomes ready by ``now``."""
        self._next_event_cache = _STALE_EVENT
        ready: List[Wakeup] = []
        self.net.admit_arrivals(now)
        while self.net.accept_waiters and self.net.backlog_size():
            tid = self.net.accept_waiters.pop(0)
            fd = self.net.try_accept()
            ready.append(Wakeup(tid=tid, retval=fd))
        remaining: List[Tuple[int, int, int]] = []
        for wake_time, seq, tid in sorted(self._sleepers):
            if wake_time <= now:
                ready.append(Wakeup(tid=tid, retval=0))
            else:
                remaining.append((wake_time, seq, tid))
        self._sleepers = remaining
        return ready

    def signal_deliveries(self, now: int) -> List[SignalDelivery]:
        """Timers that have fired by ``now``, in arming order."""
        self._next_event_cache = _STALE_EVENT
        due = [timer for timer in sorted(self._timers) if timer[0] <= now]
        if due:
            self._timers = [t for t in self._timers if t[0] > now]
        return [SignalDelivery(tid=tid, handler_pc=pc) for _, _, tid, pc in due]

    def next_event_time(self) -> Optional[int]:
        """Earliest future time at which a wakeup could occur."""
        cached = self._next_event_cache
        if cached is not _STALE_EVENT:
            return cached
        candidates = []
        arrival = self.net.next_arrival_time()
        if arrival is not None:
            candidates.append(arrival)
        if self._sleepers:
            candidates.append(min(self._sleepers)[0])
        if self._timers:
            candidates.append(min(self._timers)[0])
        value = min(candidates) if candidates else None
        self._next_event_cache = value
        return value

    # ------------------------------------------------------------------
    # Snapshot / restore / digest
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple:
        return (
            self.fs.snapshot(),
            self.net.snapshot(),
            self._rng.getstate(),
            self._brk,
            tuple(self.output),
            tuple(self._sleepers),
            self._sleep_seq,
            tuple(self._timers),
            self._timer_seq,
        )

    def restore(self, state: Tuple) -> None:
        (
            fs_state,
            net_state,
            rng_state,
            brk,
            output,
            sleepers,
            sleep_seq,
            timers,
            timer_seq,
        ) = state
        self.fs.restore(fs_state)
        self.net.restore(net_state)
        self._rng.setstate(rng_state)
        self._brk = brk
        self.output = list(output)
        self._sleepers = [tuple(entry) for entry in sleepers]
        self._sleep_seq = sleep_seq
        self._timers = [tuple(entry) for entry in timers]
        self._timer_seq = timer_seq
        self._next_event_cache = _STALE_EVENT

    def digest(self) -> int:
        """Stable hash of externally visible kernel state (tests only)."""
        fs_files, fs_fds, _ = self.fs.snapshot()
        return hash_structure(
            (
                fs_files,
                fs_fds,
                self._brk,
                tuple(self.output),
            )
        )
