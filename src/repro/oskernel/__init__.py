"""Simulated operating system services.

The kernel is the source of every input a guest cannot compute for itself:
file contents, network arrivals, the clock, random numbers. During the
thread-parallel execution these are *live* and their results are logged;
during epoch-parallel execution and replay the logged results are injected
instead (``repro.exec.services`` provides both personalities behind one
interface). The whole kernel state is snapshot/restorable so that forward
recovery can restart the thread-parallel execution from a committed epoch
state.
"""

from repro.oskernel.syscalls import SyscallKind, SyscallDone, SyscallBlock, Wakeup
from repro.oskernel.files import SimFileSystem
from repro.oskernel.net import SimNetwork, Arrival
from repro.oskernel.sync import SyncManager
from repro.oskernel.kernel import Kernel, KernelSetup

__all__ = [
    "SyscallKind",
    "SyscallDone",
    "SyscallBlock",
    "Wakeup",
    "SimFileSystem",
    "SimNetwork",
    "Arrival",
    "SyncManager",
    "Kernel",
    "KernelSetup",
]
