"""Simulated filesystem.

Files are integer-named sequences of guest words. An open file descriptor
carries an offset; when several threads share one descriptor (the pfscan
and pbzip2 workloads do), the *order* of their reads is nondeterministic
input that DoublePlay must log — which is why the kernel, not the guest,
owns offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SyscallError


@dataclass
class _OpenFile:
    file_id: int
    offset: int


class SimFileSystem:
    """Integer-named files plus a per-process descriptor table."""

    def __init__(self, files: Dict[int, List[int]]):
        #: file id → word contents; writes append
        self.files: Dict[int, List[int]] = {fid: list(data) for fid, data in files.items()}
        self._descriptors: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0..2 reserved by convention

    def open(self, file_id: int) -> int:
        if file_id not in self.files:
            self.files[file_id] = []
        fd = self._next_fd
        self._next_fd += 1
        self._descriptors[fd] = _OpenFile(file_id=file_id, offset=0)
        return fd

    def close(self, fd: int) -> int:
        if fd not in self._descriptors:
            raise SyscallError(f"close of unknown fd {fd}")
        del self._descriptors[fd]
        return 0

    def read(self, fd: int, maxlen: int) -> List[int]:
        """Read up to ``maxlen`` words at the descriptor's offset, advancing it."""
        handle = self._descriptors.get(fd)
        if handle is None:
            raise SyscallError(f"read from unknown fd {fd}")
        if maxlen < 0:
            raise SyscallError(f"read with negative length {maxlen}")
        data = self.files[handle.file_id]
        chunk = data[handle.offset : handle.offset + maxlen]
        handle.offset += len(chunk)
        return chunk

    def write(self, fd: int, words: List[int]) -> int:
        """Append ``words`` to the file behind ``fd``."""
        handle = self._descriptors.get(fd)
        if handle is None:
            raise SyscallError(f"write to unknown fd {fd}")
        self.files[handle.file_id].extend(words)
        return len(words)

    def file_contents(self, file_id: int) -> List[int]:
        """Contents of a file (workload validators use this)."""
        return list(self.files.get(file_id, []))

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple:
        return (
            {fid: tuple(data) for fid, data in self.files.items()},
            {fd: (h.file_id, h.offset) for fd, h in self._descriptors.items()},
            self._next_fd,
        )

    def restore(self, state: Tuple) -> None:
        files, descriptors, next_fd = state
        self.files = {fid: list(data) for fid, data in files.items()}
        self._descriptors = {
            fd: _OpenFile(file_id=file_id, offset=offset)
            for fd, (file_id, offset) in descriptors.items()
        }
        self._next_fd = next_fd
