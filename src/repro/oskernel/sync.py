"""Kernel-mediated synchronisation: mutexes, condition variables,
semaphores, barriers.

Synchronisation objects live at guest addresses but their state (owner,
wait queues) is kernel-side, mirroring futex-based pthreads. Two features
matter specifically to DoublePlay:

* An optional *acquisition oracle* can constrain the order in which
  mutexes and semaphores are granted. The epoch-parallel execution installs
  an oracle built from the thread-parallel run's logged acquisition order
  (the paper's synchronisation hints), which makes race-free programs
  deterministic across the two runs and reduces divergence for racy ones.
* An optional *acquisition listener* observes every successful grant; the
  thread-parallel recorder uses it to produce those hints, and the
  happens-before race detector uses it for its sync order.

All methods return the tids whose pending operation was completed by the
call ("grants"); the execution engine unblocks them. The manager never
touches thread contexts itself.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestFault, SimulationError
from repro.memory.hashing import hash_structure


class _Lock:
    __slots__ = ("owner", "waiters")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.waiters: List[int] = []


class _Cond:
    __slots__ = ("waiters",)

    def __init__(self) -> None:
        #: (tid, mutex addr) in wait order
        self.waiters: List[Tuple[int, int]] = []


class _Sem:
    __slots__ = ("value", "waiters")

    def __init__(self, value: int = 0) -> None:
        self.value = value
        self.waiters: List[int] = []


class _Barrier:
    __slots__ = ("count", "arrived", "generation")

    def __init__(self) -> None:
        self.count: Optional[int] = None
        self.arrived: List[int] = []
        self.generation = 0


class AcquisitionOracle:
    """Interface for hint-driven grant ordering (duck-typed; see
    :class:`repro.record.sync_log.SyncOrderOracle`)."""

    def may_acquire(self, addr: int, tid: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def next_turn(self, addr: int) -> Optional[int]:  # pragma: no cover
        raise NotImplementedError

    def consume(self, addr: int, tid: int) -> None:  # pragma: no cover
        raise NotImplementedError


class SyncManager:
    """State and policy for every synchronisation object of one execution."""

    def __init__(self) -> None:
        self._locks: Dict[int, _Lock] = {}
        self._conds: Dict[int, _Cond] = {}
        self._sems: Dict[int, _Sem] = {}
        self._barriers: Dict[int, _Barrier] = {}
        #: tids parked because the oracle says it is not their turn yet
        self._deferred: Dict[int, List[int]] = {}
        self.oracle: Optional[AcquisitionOracle] = None
        #: called with (kind, addr, tid) on every successful acquisition
        self.acquisition_listener: Optional[Callable[[str, int, int], None]] = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lock(self, addr: int) -> _Lock:
        lock = self._locks.get(addr)
        if lock is None:
            lock = self._locks[addr] = _Lock()
        return lock

    def _record(self, kind: str, addr: int, tid: int) -> None:
        if self.oracle is not None:
            self.oracle.consume(addr, tid)
        if self.acquisition_listener is not None:
            self.acquisition_listener(kind, addr, tid)

    def _grant_lock(self, addr: int, lock: _Lock) -> List[int]:
        """Grant a free lock to whichever thread may take it; returns grants.

        With an oracle, grants strictly follow the recorded order; an
        *exhausted* order (no further events for this address) means the
        recorded execution granted nothing more here, so nobody is granted
        — the lock stays free. FIFO applies only when no oracle is
        installed (live executions).
        """
        grants: List[int] = []
        if lock.owner is not None:
            return grants
        candidate: Optional[int] = None
        if self.oracle is not None:
            turn = self.oracle.next_turn(addr)
            if turn is not None:
                deferred = self._deferred.get(addr, [])
                if turn in deferred:
                    deferred.remove(turn)
                    candidate = turn
                elif turn in lock.waiters:
                    lock.waiters.remove(turn)
                    candidate = turn
                # else: the thread whose turn it is has not asked yet;
                # leave the lock free for it.
        elif lock.waiters:
            candidate = lock.waiters.pop(0)
        if candidate is not None:
            lock.owner = candidate
            self._record("lock", addr, candidate)
            grants.append(candidate)
        return grants

    # ------------------------------------------------------------------
    # Mutexes
    # ------------------------------------------------------------------
    def acquire(self, tid: int, addr: int) -> bool:
        """Try to take the mutex; True if acquired, False if the caller
        must block (it has been queued)."""
        lock = self._lock(addr)
        if lock.owner == tid:
            raise GuestFault(f"thread {tid} re-locking mutex {addr} it already holds", tid)
        if self.oracle is not None and not self.oracle.may_acquire(addr, tid):
            self._deferred.setdefault(addr, []).append(tid)
            return False
        if lock.owner is None:
            lock.owner = tid
            self._record("lock", addr, tid)
            return True
        lock.waiters.append(tid)
        return False

    def release(self, tid: int, addr: int) -> List[int]:
        """Release the mutex; returns tids granted as a consequence."""
        lock = self._locks.get(addr)
        if lock is None or lock.owner != tid:
            raise GuestFault(f"thread {tid} unlocking mutex {addr} it does not hold", tid)
        lock.owner = None
        return self._grant_lock(addr, lock)

    def holds(self, tid: int, addr: int) -> bool:
        lock = self._locks.get(addr)
        return lock is not None and lock.owner == tid

    # ------------------------------------------------------------------
    # Condition variables
    # ------------------------------------------------------------------
    def cond_wait(self, tid: int, cond_addr: int, mutex_addr: int) -> List[int]:
        """Atomically release the mutex and park on the condition.

        Returns grants caused by the mutex release. The caller always
        blocks (condition waits have no fast path).
        """
        if not self.holds(tid, mutex_addr):
            raise GuestFault(
                f"thread {tid} cond-waiting without holding mutex {mutex_addr}", tid
            )
        cond = self._conds.setdefault(cond_addr, _Cond())
        cond.waiters.append((tid, mutex_addr))
        return self.release(tid, mutex_addr)

    def _requeue_cond_waiter(self, tid: int, mutex_addr: int) -> List[int]:
        """A signalled waiter must reacquire its mutex before returning."""
        lock = self._lock(mutex_addr)
        if self.oracle is not None and not self.oracle.may_acquire(mutex_addr, tid):
            self._deferred.setdefault(mutex_addr, []).append(tid)
            return []
        if lock.owner is None:
            lock.owner = tid
            self._record("lock", mutex_addr, tid)
            return [tid]
        lock.waiters.append(tid)
        return []

    def cond_signal(self, cond_addr: int) -> List[int]:
        """Wake one waiter; returns tids whose wait fully completed
        (i.e. they also reacquired their mutex).

        The *choice* of waiter is a grant decision like a lock handoff:
        it is oracle-guided when hints are installed, and always recorded
        (kind ``cond``) so replay can pin the same choice even when the
        wait queue's order differs at an epoch boundary.
        """
        cond = self._conds.get(cond_addr)
        if cond is None or not cond.waiters:
            return []
        chosen = cond.waiters[0]
        if self.oracle is not None:
            turn = self.oracle.next_turn(cond_addr)
            if turn is not None:
                for pair in cond.waiters:
                    if pair[0] == turn:
                        chosen = pair
                        break
        cond.waiters.remove(chosen)
        tid, mutex_addr = chosen
        self._record("cond", cond_addr, tid)
        return self._requeue_cond_waiter(tid, mutex_addr)

    def cond_broadcast(self, cond_addr: int) -> List[int]:
        """Wake every waiter; returns tids whose wait fully completed."""
        cond = self._conds.get(cond_addr)
        if cond is None:
            return []
        waiters, cond.waiters = cond.waiters, []
        grants: List[int] = []
        for tid, mutex_addr in waiters:
            grants.extend(self._requeue_cond_waiter(tid, mutex_addr))
        return grants

    # ------------------------------------------------------------------
    # Semaphores
    # ------------------------------------------------------------------
    def sem_init(self, addr: int, value: int) -> None:
        if value < 0:
            raise GuestFault(f"semaphore {addr} initialised to negative {value}")
        self._sems[addr] = _Sem(value)

    def sem_wait(self, tid: int, addr: int) -> bool:
        """P(); True if taken immediately, False if the caller must block."""
        sem = self._sems.setdefault(addr, _Sem(0))
        if self.oracle is not None and sem.value > 0:
            if not self.oracle.may_acquire(addr, tid):
                self._deferred.setdefault(addr, []).append(tid)
                return False
        if sem.value > 0:
            sem.value -= 1
            self._record("sem", addr, tid)
            return True
        sem.waiters.append(tid)
        return False

    def sem_post(self, addr: int) -> List[int]:
        """V(); returns the tid granted, if any waiter was pending.

        Oracle semantics mirror :meth:`_grant_lock`: grants follow the
        recorded order exactly, and an exhausted order banks the value
        instead of granting (the recorded execution granted nothing more).
        """
        sem = self._sems.setdefault(addr, _Sem(0))
        candidate: Optional[int] = None
        if self.oracle is not None:
            turn = self.oracle.next_turn(addr)
            deferred = self._deferred.get(addr, [])
            if turn is not None and turn in deferred:
                deferred.remove(turn)
                candidate = turn
            elif turn is not None and turn in sem.waiters:
                sem.waiters.remove(turn)
                candidate = turn
            # else: hold the value for the hinted thread (or bank it when
            # the order is exhausted)
        elif sem.waiters:
            candidate = sem.waiters.pop(0)
        if candidate is None:
            sem.value += 1
            # A deferred thread may now be eligible (its turn plus value>0).
            return self._drain_deferred_sem(addr, sem)
        self._record("sem", addr, candidate)
        return [candidate]

    def _drain_deferred_sem(self, addr: int, sem: _Sem) -> List[int]:
        grants: List[int] = []
        deferred = self._deferred.get(addr)
        while deferred and sem.value > 0 and self.oracle is not None:
            turn = self.oracle.next_turn(addr)
            if turn is not None and turn in deferred:
                deferred.remove(turn)
                sem.value -= 1
                self._record("sem", addr, turn)
                grants.append(turn)
            else:
                break
        return grants

    def sem_drain(self, addr: int) -> List[int]:
        """Grant hint-deferred P()s whose turn has arrived.

        Must be called after every successful ``sem_wait`` take: the take
        advances the per-address order, which can make an
        already-deferred thread the next acquirer — with tokens still
        banked, nothing else would ever wake it.
        """
        sem = self._sems.get(addr)
        if sem is None:
            return []
        return self._drain_deferred_sem(addr, sem)

    # ------------------------------------------------------------------
    # Atomic read-modify-write ordering
    # ------------------------------------------------------------------
    # Atomics are synchronisation at the ISA level (DoublePlay instruments
    # them in libc): their cross-thread order per address is recorded as
    # acquisition events and enforced by the oracle, otherwise two
    # fetch-adds on a counter would be an undetectable source of epoch
    # divergence in perfectly disciplined programs.

    def atomic_enter(self, tid: int, addr: int) -> bool:
        """May this thread perform its atomic op now? False = deferred.

        An exhausted order defers too: the recorded execution performed no
        further atomics on this address, so performing one here would be a
        divergence — the deferral surfaces it as a stall.
        """
        if self.oracle is None or self.oracle.next_turn(addr) == tid:
            return True
        self._deferred.setdefault(addr, []).append(tid)
        return False

    def atomic_done(self, tid: int, addr: int) -> List[int]:
        """Record the atomic's turn; returns deferred tids now eligible."""
        self._record("atomic", addr, tid)
        wakes: List[int] = []
        deferred = self._deferred.get(addr)
        if deferred and self.oracle is not None:
            turn = self.oracle.next_turn(addr)
            if turn is not None and turn in deferred:
                deferred.remove(turn)
                wakes.append(turn)
        return wakes

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def barrier_arrive(self, tid: int, addr: int, count: int) -> List[int]:
        """Arrive at the barrier; when full, returns every released tid
        (including the caller). An empty list means the caller blocks."""
        if count <= 0:
            raise GuestFault(f"barrier {addr} with non-positive count {count}", tid)
        barrier = self._barriers.setdefault(addr, _Barrier())
        if barrier.count is None:
            barrier.count = count
        elif barrier.count != count:
            raise GuestFault(
                f"barrier {addr} used with count {count} but earlier count {barrier.count}",
                tid,
            )
        barrier.arrived.append(tid)
        if len(barrier.arrived) < barrier.count:
            return []
        released, barrier.arrived = barrier.arrived, []
        barrier.generation += 1
        barrier.count = None
        return released

    # ------------------------------------------------------------------
    # Snapshot / comparison
    # ------------------------------------------------------------------
    def has_deferred(self) -> bool:
        return any(self._deferred.values())

    def snapshot(self, merge_deferred: bool = False) -> Tuple:
        """Exact state (queue orders included) for checkpoint/restore.

        Live executions never have hint-deferred threads (no oracle), so
        the default refuses them — a deferred thread in a *recording*
        checkpoint would be a bug. Oracle-driven engines (sequential
        replay materialising epoch checkpoints) pass ``merge_deferred``:
        lock/semaphore deferrals fold into the wait queues (semantically
        the thread is waiting; grant order is oracle-pinned anyway), and
        atomic deferrals are dropped — the thread's own blocked marker
        re-issues the op on resume.
        """
        if self.has_deferred() and not merge_deferred:
            raise SimulationError(
                "cannot checkpoint a sync manager with hint-deferred threads"
            )
        lock_extra: Dict[int, List[int]] = {}
        sem_extra: Dict[int, List[int]] = {}
        if merge_deferred:
            for addr, tids in self._deferred.items():
                if not tids:
                    continue
                if addr in self._locks:
                    lock_extra[addr] = list(tids)
                elif addr in self._sems:
                    sem_extra[addr] = list(tids)
                # else: atomic deferral; context markers carry it
        return (
            {
                a: (l.owner, tuple(l.waiters + lock_extra.get(a, [])))
                for a, l in self._locks.items()
            },
            {a: tuple(c.waiters) for a, c in self._conds.items()},
            {
                a: (s.value, tuple(s.waiters + sem_extra.get(a, [])))
                for a, s in self._sems.items()
            },
            {a: (b.count, tuple(b.arrived), b.generation) for a, b in self._barriers.items()},
        )

    def restore(self, state: Tuple) -> None:
        locks, conds, sems, barriers = state
        self._locks = {}
        for addr, (owner, waiters) in locks.items():
            lock = _Lock()
            lock.owner = owner
            lock.waiters = list(waiters)
            self._locks[addr] = lock
        self._conds = {}
        for addr, waiters in conds.items():
            cond = _Cond()
            cond.waiters = [tuple(w) for w in waiters]
            self._conds[addr] = cond
        self._sems = {}
        for addr, (value, waiters) in sems.items():
            sem = _Sem(value)
            sem.waiters = list(waiters)
            self._sems[addr] = sem
        self._barriers = {}
        for addr, (count, arrived, generation) in barriers.items():
            barrier = _Barrier()
            barrier.count = count
            barrier.arrived = list(arrived)
            barrier.generation = generation
            self._barriers[addr] = barrier
        self._deferred = {}

    def semantic_digest(self) -> int:
        """Hash of the *semantic* sync state: owners, values, waiter sets.

        Queue order is excluded deliberately — it is scheduling state, not
        program state, and legitimately differs between the thread-parallel
        and epoch-parallel executions of the same program (see
        ``repro.core.divergence``).
        """
        state = (
            {
                a: (l.owner, tuple(sorted(l.waiters)))
                for a, l in self._locks.items()
                if l.owner is not None or l.waiters
            },
            {
                a: tuple(sorted(c.waiters))
                for a, c in self._conds.items()
                if c.waiters
            },
            {
                a: (s.value, tuple(sorted(s.waiters)))
                for a, s in self._sems.items()
                if s.value or s.waiters
            },
            {
                a: (b.count, tuple(sorted(b.arrived)), b.generation)
                for a, b in self._barriers.items()
                if b.arrived or b.generation
            },
        )
        return hash_structure(state)
