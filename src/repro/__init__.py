"""repro — a reproduction of DoublePlay (ASPLOS 2011).

DoublePlay records multithreaded executions for deterministic replay using
**uniparallelism**: a thread-parallel execution runs the program normally
on multiple cores and generates epoch checkpoints, while an epoch-parallel
execution re-runs each epoch on a single simulated CPU — so the only log
needed is the timeslice order, syscall results, and sync acquisition
order. Divergent epochs (data races) are committed by forward recovery.

Everything runs on a deterministic discrete-event simulated multiprocessor
(see DESIGN.md for the substitution rationale): guest programs are written
in a tiny checkpointable ISA, time is counted in simulated cycles, and all
results are exactly reproducible from a seed.

Quick start::

    from repro import (
        build_workload, MachineConfig, DoublePlayConfig,
        DoublePlayRecorder, Replayer, run_native,
    )

    inst = build_workload("pbzip", workers=2, scale=8, seed=1)
    machine = MachineConfig(cores=2)
    native = run_native(inst.image, inst.setup, machine)

    config = DoublePlayConfig(machine=machine, epoch_cycles=native.duration // 18)
    result = DoublePlayRecorder(inst.image, inst.setup, config).record()
    print("overhead:", result.overhead_vs(native.duration))

    replay = Replayer(inst.image, machine).replay_sequential(result.recording)
    assert replay.verified
"""

from repro.baselines import (
    record_crew,
    record_uniprocessor,
    record_value_log,
    run_native,
)
from repro.core import (
    DoublePlayConfig,
    DoublePlayRecorder,
    RecordResult,
    Replayer,
    ReplayResult,
)
from repro.errors import (
    DeadlockError,
    GuestFault,
    ReplayError,
    ReproError,
    SimulationError,
)
from repro.isa import Assembler, ProgramImage
from repro.machine import CostModel, MachineConfig
from repro.oskernel import Kernel, KernelSetup, SyscallKind
from repro.oskernel.net import Arrival
from repro.record import Recording
from repro.workloads import build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "ProgramImage",
    "MachineConfig",
    "CostModel",
    "Kernel",
    "KernelSetup",
    "SyscallKind",
    "Arrival",
    "Recording",
    "DoublePlayConfig",
    "DoublePlayRecorder",
    "RecordResult",
    "Replayer",
    "ReplayResult",
    "run_native",
    "record_uniprocessor",
    "record_crew",
    "record_value_log",
    "build_workload",
    "workload_names",
    "ReproError",
    "GuestFault",
    "SimulationError",
    "DeadlockError",
    "ReplayError",
    "__version__",
]
