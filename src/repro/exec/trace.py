"""Passive execution tracing.

Observers receive one :class:`TraceEvent` per interesting action, in global
retirement order. The happens-before race detector consumes these; the
workload-characteristics table counts them. Observers must not mutate
engine state — engines do not defend against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One traced action.

    ``kind`` is one of: ``read``, ``write``, ``acquire``, ``release``,
    ``barrier``, ``spawn``, ``exit``, ``join``, ``syscall``.
    ``addr`` is the memory/sync-object address (or child tid for spawn,
    target tid for join, syscall kind ordinal for syscall).
    """

    kind: str
    tid: int
    addr: int
    time: int


class TraceObserver:
    """Base observer; collects nothing. Subclass and override ``on_event``."""

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError


class CollectingObserver(TraceObserver):
    """Buffers every event (tests, the race detector, characteristics)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def counts(self) -> Tuple[int, int, int]:
        """(reads, writes, sync ops) — quick summary for tables."""
        reads = sum(1 for e in self.events if e.kind == "read")
        writes = sum(1 for e in self.events if e.kind == "write")
        syncs = sum(
            1 for e in self.events if e.kind in ("acquire", "release", "barrier")
        )
        return reads, writes, syncs
