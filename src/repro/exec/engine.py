"""Shared machinery of the execution engines.

:class:`BaseEngine` owns thread lifecycle (spawn / exit / join wakeups),
blocking and grants, tracing, and construction from either a fresh program
image or a checkpoint. Scheduling — which thread runs when, on which core,
and what the simulated time is — belongs to the subclasses in
``multicore.py`` and ``uniprocessor.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestFault, SimulationError
from repro.exec import superblock
from repro.exec.interpreter import decode_program
from repro.exec.services import LiveSyscalls
from repro.exec.trace import TraceEvent, TraceObserver
from repro.isa.context import BlockedReason, ThreadContext, ThreadStatus
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace
from repro.memory.hashing import combine_hashes, hash_structure
from repro.obs import metrics as obs_metrics
from repro.oskernel.sync import SyncManager

#: Maximum children one thread may spawn; child tids are the deterministic
#: function ``parent_tid * _TID_RADIX + spawn_count + 1``, so identical
#: executions assign identical tids regardless of cross-thread timing.
_TID_RADIX = 1024

#: tid of the initial thread.
MAIN_TID = 1


class BaseEngine:
    """State and services common to both engines."""

    def __init__(
        self,
        program: ProgramImage,
        config: MachineConfig,
        mem: AddressSpace,
        sync: SyncManager,
        services,
        name: str = "",
    ):
        self.program = program
        #: per-pc ``(handler, instr)`` pairs; the interpreter's fetch+decode
        self.decoded = decode_program(program)
        #: per-pc superblock table (or None when fusion is disabled); the
        #: engines enter a fused handler only at a block head with no
        #: pending event — see :mod:`repro.exec.superblock`
        self.fused = superblock.table_for(program, config.costs)
        self.config = config
        self.costs = config.costs
        self.mem = mem
        self.sync = sync
        self.services = services
        self.name = name or program.name
        self.contexts: Dict[int, ThreadContext] = {}
        #: count of contexts not yet EXITED, so ``all_exited`` is O(1) in
        #: the engines' per-op loop. Maintained at every point a context
        #: enters the table (boot, spawn, checkpoint adoption) and the one
        #: place a thread exits (``on_exit``).
        self.live_threads = 0
        self.observers: List[TraceObserver] = []
        #: optional hook charging extra cycles per memory access
        #: (tid, addr, is_write) → cycles; the CREW baseline installs one
        self.access_interceptor: Optional[Callable[[int, int, bool], int]] = None
        #: when set, every successful sync acquisition is appended as
        #: (kind, addr, tid) — the thread-parallel recorder's hint capture
        self.acquisition_log: Optional[List[Tuple[str, int, int]]] = None
        #: when set, every signal delivery is appended as
        #: (tid, retired-at-delivery, handler pc) — live executions record
        self.signal_log: Optional[List[Tuple[int, int, int]]] = None
        #: (tid, retired) → handler pc; injected executions deliver from this
        self.injected_signals: Dict[Tuple[int, int], int] = {}
        self.ops = 0
        self._now = 0
        #: superblock telemetry for the current run (fused handler calls,
        #: ops retired fused, early exits); flushed by _flush_exec_stats
        self._sb_calls = 0
        self._sb_ops = 0
        self._sb_exits = 0
        #: set when the guest faulted: the GuestFault that ended the run.
        #: Faults are clean op boundaries (the faulting op applied no
        #: effects), so a faulted execution checkpoints and replays up to
        #: the instant before the crash — the paper's debugging use case.
        self.fault: Optional[GuestFault] = None
        #: when True, a guest fault ends the run (status "faulted") instead
        #: of propagating — the recorder sets this to record crashes
        self.halt_on_fault = False
        #: tids restored from a checkpoint with an unconsumed sync grant.
        #: Their grant was made by the *previous* execution, so this run's
        #: acquisition log must credit the acquisition at consume time
        #: (see synthetic_acquisition) to stay self-consistent for replay.
        self.inherited_grants: set = set()
        #: does the installed oracle's order include inherited grants?
        #: True for replay oracles (the committed log credits inherited
        #: grants at consume time, so consuming advances correctly); False
        #: for thread-parallel hint *suffixes* (the inherited grant's event
        #: was recorded before the suffix begins — consuming there would
        #: wrongly eat the thread's next acquisition of the same object).
        self.oracle_includes_inherited = True
        self.sync.acquisition_listener = self._on_acquisition

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def boot(cls, program: ProgramImage, config: MachineConfig, services, **kwargs):
        """Fresh engine: image data segment loaded, main thread at entry."""
        mem = AddressSpace.from_data(program.data)
        engine = cls(program, config, mem, SyncManager(), services, **kwargs)
        main = ThreadContext(
            tid=MAIN_TID,
            pc=program.entry,
            registers=[0] * program.register_count,
        )
        engine.contexts[MAIN_TID] = main
        engine.live_threads += 1
        engine._on_ready(MAIN_TID, 0)
        return engine

    def _adopt_checkpoint_contexts(self, contexts: Dict[int, ThreadContext],
                                   wake_blocked_io: bool) -> None:
        """Install copies of checkpointed contexts and build the run queue.

        ``wake_blocked_io`` is the epoch-parallel/replay normalisation: a
        thread that was blocked in the kernel (syscall) or on a join is
        made schedulable again; the interpreter's resume path completes
        its op from the injected log / exit state. Sync-blocked threads
        stay blocked — the restored sync state holds them in wait queues
        and re-execution will grant them.
        """
        for tid in sorted(contexts):
            ctx = contexts[tid].copy()
            if ctx.status == ThreadStatus.RUNNING:
                ctx.status = ThreadStatus.READY
            if ctx.status == ThreadStatus.PARKED:
                ctx.status = ThreadStatus.READY
            if (
                wake_blocked_io
                and ctx.status == ThreadStatus.BLOCKED
                and ctx.blocked is not None
                and ctx.blocked.kind in ("syscall", "join", "atomic")
            ):
                ctx.status = ThreadStatus.READY
            self.contexts[tid] = ctx
            if ctx.status != ThreadStatus.EXITED:
                self.live_threads += 1
        for tid in sorted(self.contexts):
            ctx = self.contexts[tid]
            if ctx.pending_grant is not None and ctx.pending_grant[0] == "sync":
                self.inherited_grants.add(tid)
            if ctx.status == ThreadStatus.READY:
                self._on_ready(tid, 0)

    # ------------------------------------------------------------------
    # Interpreter services
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Simulated time at which the current op executes."""
        return self._now

    def trace(self, kind: str, tid: int, addr: int) -> None:
        if self.observers:
            event = TraceEvent(kind=kind, tid=tid, addr=addr, time=self._now)
            for observer in self.observers:
                observer.on_event(event)

    def access_extra(self, tid: int, addr: int, is_write: bool) -> int:
        if self.access_interceptor is None:
            return 0
        return self.access_interceptor(tid, addr, is_write)

    def _on_acquisition(self, kind: str, addr: int, tid: int) -> None:
        if self.acquisition_log is not None:
            self.acquisition_log.append((kind, addr, tid))
        self.trace("acquire", tid, addr)

    def synthetic_acquisition(self, ctx: ThreadContext, instr) -> None:
        """Credit an inherited grant's acquisition at its consume point.

        The grant itself happened in the execution this engine was
        restored from, so the sync manager never fires the listener here;
        without this, the acquisition would be invisible to this run's
        log and a replay's oracle would hand the object to the wrong
        thread.
        """
        from repro.isa.instructions import Op  # local to avoid cycle at import

        if instr.op is Op.LOCK:
            kind, addr = "lock", ctx.registers[instr.a]
        elif instr.op is Op.SEMWAIT:
            kind, addr = "sem", ctx.registers[instr.a]
        elif instr.op is Op.CONDWAIT:
            kind, addr = "lock", ctx.registers[instr.b]
        else:
            return  # barriers have no grant order to credit
        if self.sync.oracle is not None and self.oracle_includes_inherited:
            self.sync.oracle.consume(addr, ctx.tid)
        if self.acquisition_log is not None:
            self.acquisition_log.append((kind, addr, ctx.tid))
        self.trace("acquire", ctx.tid, addr)

    def install_signal_records(self, records) -> None:
        """Configure log-driven signal delivery (epoch runs and replay)."""
        self.injected_signals = {
            (tid, retired): handler_pc for tid, retired, handler_pc in records
        }

    def next_signal(self, ctx: ThreadContext):
        """Handler pc of a signal to deliver before ``ctx``'s next op.

        Live executions drain the thread's pending queue and record the
        delivery point; injected executions look the delivery point up.
        Delivery and the handler's first instruction are one atomic step
        (see ``interpreter.step``), so checkpoints never capture a
        delivered-but-unexecuted handler.
        """
        if self.injected_signals:
            handler_pc = self.injected_signals.pop((ctx.tid, ctx.retired), None)
            if handler_pc is not None:
                obs_metrics.process_stats().add("exec.signals_delivered")
            return handler_pc
        if ctx.pending_signals:
            handler_pc = ctx.pending_signals.pop(0)
            if self.signal_log is not None:
                self.signal_log.append((ctx.tid, ctx.retired, handler_pc))
            obs_metrics.process_stats().add("exec.signals_delivered")
            return handler_pc
        return None

    def deliver_signal(self, tid: int, handler_pc: int) -> None:
        """Queue a fired timer's signal on its target thread (live only)."""
        self.contexts[tid].pending_signals.append(handler_pc)

    def services_log_wakeup(self, ctx: ThreadContext, kind, grant: Tuple) -> None:
        """Log a wakeup-completed syscall at retirement (live engines only)."""
        if isinstance(self.services, LiveSyscalls):
            self.services.record_wakeup_completion(ctx, kind, grant)

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------
    def spawn_thread(self, parent: ThreadContext, pc: int, args: Tuple[int, ...]) -> int:
        if parent.spawn_count >= _TID_RADIX - 1:
            raise GuestFault(
                f"thread {parent.tid} exceeded {_TID_RADIX - 1} children", parent.tid
            )
        child_tid = parent.tid * _TID_RADIX + parent.spawn_count + 1
        parent.spawn_count += 1
        if child_tid in self.contexts:
            raise SimulationError(f"tid collision for {child_tid}")
        registers = [0] * self.program.register_count
        registers[: len(args)] = [*args]
        child = ThreadContext(
            tid=child_tid, pc=pc, registers=registers, parent=parent.tid
        )
        self.contexts[child_tid] = child
        self.live_threads += 1
        # Rare event, so the counter costs nothing on the per-op path.
        obs_metrics.process_stats().add("exec.threads_spawned")
        self._check_spawn(child_tid)
        self._on_ready(child_tid, self._now)
        return child_tid

    def _check_spawn(self, child_tid: int) -> None:
        """Subclass hook; epoch executors verify the spawn was expected."""

    def block(self, ctx: ThreadContext, reason: BlockedReason) -> None:
        ctx.status = ThreadStatus.BLOCKED
        ctx.blocked = reason

    def wake_deferred(self, tid: int) -> None:
        """Make an oracle-deferred thread schedulable again.

        Unlike :meth:`grant`, the woken thread's op has *not* executed —
        its blocked reason stays as the re-dispatch marker and the op runs
        fresh when the thread is next scheduled.
        """
        ctx = self.contexts[tid]
        if ctx.status != ThreadStatus.BLOCKED:
            raise SimulationError(
                f"wake_deferred on thread {tid} in status {ctx.status.value}"
            )
        ctx.status = ThreadStatus.READY
        self._on_ready(tid, self._now)

    def grant(self, tid: int, grant: Tuple) -> None:
        """Complete a blocked thread's op; it retires when next scheduled."""
        ctx = self.contexts[tid]
        if ctx.status != ThreadStatus.BLOCKED:
            raise SimulationError(
                f"grant to thread {tid} in status {ctx.status.value}"
            )
        ctx.pending_grant = grant
        ctx.blocked = None
        ctx.status = ThreadStatus.READY
        self._on_ready(tid, self._now)

    def on_exit(self, ctx: ThreadContext) -> None:
        """Wake every thread joined on the exiting one, in tid order."""
        self.live_threads -= 1
        for tid in sorted(self.contexts):
            other = self.contexts[tid]
            if (
                other.status == ThreadStatus.BLOCKED
                and other.blocked is not None
                and other.blocked.kind == "join"
                and other.blocked.detail[0] == ctx.tid
            ):
                self.grant(tid, ("join",))

    def all_exited(self) -> bool:
        return self.live_threads == 0

    def blocked_tids(self) -> List[int]:
        return sorted(
            tid
            for tid, ctx in self.contexts.items()
            if ctx.status == ThreadStatus.BLOCKED
        )

    # ------------------------------------------------------------------
    # State digests
    # ------------------------------------------------------------------
    def contexts_digest(self) -> int:
        """Stable hash of all thread contexts' canonical state."""
        return hash_structure(
            [self.contexts[tid].state_tuple() for tid in sorted(self.contexts)]
        )

    def state_digest(self) -> int:
        """Memory + contexts digest — the divergence-check currency."""
        return combine_hashes([self.mem.content_hash(), self.contexts_digest()])

    # ------------------------------------------------------------------
    # Scheduling hooks (subclass responsibility)
    # ------------------------------------------------------------------
    def _on_ready(self, tid: int, time: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _guard_ops(self) -> None:
        self.ops += 1
        if self.ops > self.config.max_ops:
            raise SimulationError(
                f"execution exceeded {self.config.max_ops} ops (infinite loop?)"
            )

    def _flush_exec_stats(self, ops_delta: int) -> None:
        """Publish per-run execution counters to the process stats.

        Called once per engine run (from a ``finally``, so divergences and
        faults still report); the superblock counters are accumulated by
        the subclasses' fused-dispatch paths.
        """
        if not ops_delta and not self._sb_calls:
            return
        stats = obs_metrics.process_stats()
        if ops_delta:
            stats.add("exec.ops_executed", ops_delta)
        if self._sb_calls:
            stats.add("superblock.fused_calls", self._sb_calls)
            stats.add("superblock.fused_ops", self._sb_ops)
            stats.add("superblock.fallback_exits", self._sb_exits)
            self._sb_calls = self._sb_ops = self._sb_exits = 0
