"""Discrete-event multiprocessor execution.

Each core has a local clock; at every step the engine executes one
instruction on the core whose clock is earliest (deterministic tie-break by
core id), so the global order of memory operations is the simulated-time
order — sequentially consistent and perfectly reproducible for a given
program, inputs and configuration.

This engine runs native executions, DoublePlay's thread-parallel execution
(with syscall logging and acquisition capture enabled), and the multicore
recording baselines (via the access interceptor).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import DeadlockError, GuestFault, SimulationError
from repro.exec.engine import BaseEngine
from repro.exec.interpreter import step
from repro.isa.context import ThreadContext, ThreadStatus
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace
from repro.oskernel.sync import SyncManager


@dataclass
class _Core:
    cid: int
    time: int = 0
    tid: Optional[int] = None
    quantum_left: int = 0


class MulticoreEngine(BaseEngine):
    """Runs one guest program on ``config.cores`` simulated cores."""

    def __init__(
        self,
        program: ProgramImage,
        config: MachineConfig,
        mem: AddressSpace,
        sync: SyncManager,
        services,
        name: str = "",
    ):
        super().__init__(program, config, mem, sync, services, name)
        self.cores = [_Core(cid) for cid in range(config.cores)]
        self._ready: Deque[Tuple[int, int]] = deque()  # (tid, ready time)
        #: latest simulated time any core has reached
        self.time = 0
        self.context_switches = 0

    # ------------------------------------------------------------------
    # Construction from a checkpoint (forward-recovery restart)
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        program: ProgramImage,
        config: MachineConfig,
        services,
        memory_snapshot,
        contexts: Dict[int, ThreadContext],
        sync_state,
        start_time: int = 0,
        name: str = "",
    ) -> "MulticoreEngine":
        mem = AddressSpace.from_snapshot(memory_snapshot)
        sync = SyncManager()
        sync.restore(sync_state)
        engine = cls(program, config, mem, sync, services, name=name)
        engine.time = start_time
        for core in engine.cores:
            core.time = start_time
        engine._adopt_checkpoint_contexts(contexts, wake_blocked_io=False)
        return engine

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _on_ready(self, tid: int, time: int) -> None:
        self._ready.append((tid, time))

    def _dispatch(self) -> None:
        """Assign ready threads to idle cores, earliest core first."""
        while self._ready:
            core = None
            for candidate in self.cores:
                if candidate.tid is None and (
                    core is None or candidate.time < core.time
                ):
                    core = candidate
            if core is None:
                return
            tid, ready_time = self._ready.popleft()
            ctx = self.contexts[tid]
            if ctx.status != ThreadStatus.READY:
                continue  # exited or re-blocked while queued
            core.tid = tid
            core.time = max(core.time, ready_time) + self.costs.context_switch
            core.quantum_left = self.config.quantum
            ctx.status = ThreadStatus.RUNNING
            self.context_switches += 1

    def _process_wakeups(self, now: int) -> None:
        for wakeup in self.services.wakeups(now, self.mem):
            self._now = now
            self.grant(
                wakeup.tid,
                ("syscall", wakeup.retval, wakeup.writes, wakeup.transferred),
            )
        for signal in self.services.signal_deliveries(now):
            self.deliver_signal(signal.tid, signal.handler_pc)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        stop_check: Optional[Callable[["MulticoreEngine"], bool]] = None,
    ) -> str:
        """Execute until completion or until ``stop_check`` fires.

        Returns ``"done"`` when every thread exited, ``"stopped"`` when the
        stop check fired (all committed ops are consistent; the engine can
        be checkpointed and resumed), or ``"faulted"`` when the guest
        crashed and ``halt_on_fault`` is set. Raises
        :class:`DeadlockError` when nothing can ever run again.
        """
        cores = self.cores
        contexts = self.contexts
        ready = self._ready
        next_event_fn = self.services.next_event_time
        max_ops = self.config.max_ops
        running = ThreadStatus.RUNNING
        while True:
            if self.live_threads == 0:
                return "done"
            if ready:
                self._dispatch()
            # earliest busy core; strict < keeps the lowest-cid tie-break
            core = None
            for candidate in cores:
                if candidate.tid is not None and (
                    core is None or candidate.time < core.time
                ):
                    core = candidate
            if core is None:
                next_event = next_event_fn()
                if next_event is None:
                    raise DeadlockError(
                        f"all threads blocked in {self.name!r}",
                        self.blocked_tids(),
                    )
                if next_event > self.time:
                    self.time = next_event
                self._process_wakeups(self.time)
                continue
            core_time = core.time
            next_event = next_event_fn()
            if next_event is not None and next_event <= core_time:
                # A kernel event (arrival, sleep expiry) is due before this
                # op; deliver it first so a woken thread can claim an idle
                # core that is earlier in time.
                self._process_wakeups(core_time)
                continue
            ctx = contexts[core.tid]
            self._now = core_time
            try:
                cost = step(self, ctx)
            except GuestFault as fault:
                if not self.halt_on_fault:
                    raise
                # The faulting op applied no effects; the whole program
                # stops at this op boundary (a crash ends the process).
                self.fault = fault
                return "faulted"
            ops = self.ops + 1
            self.ops = ops
            if ops > max_ops:
                raise SimulationError(
                    f"execution exceeded {max_ops} ops (infinite loop?)"
                )
            core_time += cost
            core.time = core_time
            core.quantum_left -= cost
            if core_time > self.time:
                self.time = core_time
            if ctx.status is not running:
                core.tid = None
            elif core.quantum_left <= 0 and ready:
                ctx.status = ThreadStatus.READY
                ready.append((ctx.tid, core_time))
                core.tid = None
            if stop_check is not None and stop_check(self):
                return "stopped"

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def quiesce(self) -> int:
        """Synchronise all cores to the latest core time (checkpoint
        barrier) and return that time. Threads stay scheduled."""
        latest = max([core.time for core in self.cores] + [self.time])
        for core in self.cores:
            core.time = latest
        self.time = latest
        return latest

    def advance_all(self, cycles: int) -> None:
        """Charge ``cycles`` to every core (checkpoint / restore cost)."""
        for core in self.cores:
            core.time += cycles
        self.time += cycles
