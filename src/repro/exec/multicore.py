"""Discrete-event multiprocessor execution.

Each core has a local clock; at every step the engine executes one
instruction on the core whose clock is earliest (deterministic tie-break by
core id), so the global order of memory operations is the simulated-time
order — sequentially consistent and perfectly reproducible for a given
program, inputs and configuration.

This engine runs native executions, DoublePlay's thread-parallel execution
(with syscall logging and acquisition capture enabled), and the multicore
recording baselines (via the access interceptor).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import DeadlockError, GuestFault
from repro.exec.engine import BaseEngine
from repro.exec.interpreter import step
from repro.isa.context import ThreadContext, ThreadStatus
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace
from repro.oskernel.sync import SyncManager


@dataclass
class _Core:
    cid: int
    time: int = 0
    tid: Optional[int] = None
    quantum_left: int = 0


class MulticoreEngine(BaseEngine):
    """Runs one guest program on ``config.cores`` simulated cores."""

    def __init__(
        self,
        program: ProgramImage,
        config: MachineConfig,
        mem: AddressSpace,
        sync: SyncManager,
        services,
        name: str = "",
    ):
        super().__init__(program, config, mem, sync, services, name)
        self.cores = [_Core(cid) for cid in range(config.cores)]
        self._ready: Deque[Tuple[int, int]] = deque()  # (tid, ready time)
        #: latest simulated time any core has reached
        self.time = 0
        self.context_switches = 0

    # ------------------------------------------------------------------
    # Construction from a checkpoint (forward-recovery restart)
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        program: ProgramImage,
        config: MachineConfig,
        services,
        memory_snapshot,
        contexts: Dict[int, ThreadContext],
        sync_state,
        start_time: int = 0,
        name: str = "",
    ) -> "MulticoreEngine":
        mem = AddressSpace.from_snapshot(memory_snapshot)
        sync = SyncManager()
        sync.restore(sync_state)
        engine = cls(program, config, mem, sync, services, name=name)
        engine.time = start_time
        for core in engine.cores:
            core.time = start_time
        engine._adopt_checkpoint_contexts(contexts, wake_blocked_io=False)
        return engine

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _on_ready(self, tid: int, time: int) -> None:
        self._ready.append((tid, time))

    def _dispatch(self) -> None:
        """Assign ready threads to idle cores, earliest core first."""
        while self._ready:
            idle = [core for core in self.cores if core.tid is None]
            if not idle:
                return
            tid, ready_time = self._ready.popleft()
            ctx = self.contexts[tid]
            if ctx.status != ThreadStatus.READY:
                continue  # exited or re-blocked while queued
            core = min(idle, key=lambda c: (c.time, c.cid))
            core.tid = tid
            core.time = max(core.time, ready_time) + self.costs.context_switch
            core.quantum_left = self.config.quantum
            ctx.status = ThreadStatus.RUNNING
            self.context_switches += 1

    def _process_wakeups(self, now: int) -> None:
        for wakeup in self.services.wakeups(now, self.mem):
            self._now = now
            self.grant(
                wakeup.tid,
                ("syscall", wakeup.retval, wakeup.writes, wakeup.transferred),
            )
        for signal in self.services.signal_deliveries(now):
            self.deliver_signal(signal.tid, signal.handler_pc)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        stop_check: Optional[Callable[["MulticoreEngine"], bool]] = None,
    ) -> str:
        """Execute until completion or until ``stop_check`` fires.

        Returns ``"done"`` when every thread exited, ``"stopped"`` when the
        stop check fired (all committed ops are consistent; the engine can
        be checkpointed and resumed), or ``"faulted"`` when the guest
        crashed and ``halt_on_fault`` is set. Raises
        :class:`DeadlockError` when nothing can ever run again.
        """
        while True:
            if self.all_exited():
                return "done"
            self._dispatch()
            busy = [core for core in self.cores if core.tid is not None]
            if not busy:
                next_event = self.services.next_event_time()
                if next_event is None:
                    raise DeadlockError(
                        f"all threads blocked in {self.name!r}",
                        self.blocked_tids(),
                    )
                self.time = max(self.time, next_event)
                self._process_wakeups(self.time)
                continue
            core = min(busy, key=lambda c: (c.time, c.cid))
            next_event = self.services.next_event_time()
            if next_event is not None and next_event <= core.time:
                # A kernel event (arrival, sleep expiry) is due before this
                # op; deliver it first so a woken thread can claim an idle
                # core that is earlier in time.
                self._process_wakeups(core.time)
                continue
            ctx = self.contexts[core.tid]
            self._now = core.time
            try:
                cost = step(self, ctx)
            except GuestFault as fault:
                if not self.halt_on_fault:
                    raise
                # The faulting op applied no effects; the whole program
                # stops at this op boundary (a crash ends the process).
                self.fault = fault
                return "faulted"
            self._guard_ops()
            core.time += cost
            core.quantum_left -= cost
            if core.time > self.time:
                self.time = core.time
            if ctx.status != ThreadStatus.RUNNING:
                core.tid = None
            elif core.quantum_left <= 0 and self._ready:
                ctx.status = ThreadStatus.READY
                self._ready.append((ctx.tid, core.time))
                core.tid = None
            if stop_check is not None and stop_check(self):
                return "stopped"

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def quiesce(self) -> int:
        """Synchronise all cores to the latest core time (checkpoint
        barrier) and return that time. Threads stay scheduled."""
        latest = max([core.time for core in self.cores] + [self.time])
        for core in self.cores:
            core.time = latest
        self.time = latest
        return latest

    def advance_all(self, cycles: int) -> None:
        """Charge ``cycles`` to every core (checkpoint / restore cost)."""
        for core in self.cores:
            core.time += cycles
        self.time += cycles
