"""Discrete-event multiprocessor execution.

Each core has a local clock; at every step the engine executes one
instruction on the core whose clock is earliest (deterministic tie-break by
core id), so the global order of memory operations is the simulated-time
order — sequentially consistent and perfectly reproducible for a given
program, inputs and configuration.

This engine runs native executions, DoublePlay's thread-parallel execution
(with syscall logging and acquisition capture enabled), and the multicore
recording baselines (via the access interceptor).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import DeadlockError, GuestFault, SimulationError
from repro.exec.engine import BaseEngine
from repro.exec.interpreter import step
from repro.isa.context import ThreadContext, ThreadStatus
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace
from repro.oskernel.sync import SyncManager


@dataclass
class _Core:
    cid: int
    time: int = 0
    tid: Optional[int] = None
    quantum_left: int = 0


class MulticoreEngine(BaseEngine):
    """Runs one guest program on ``config.cores`` simulated cores."""

    def __init__(
        self,
        program: ProgramImage,
        config: MachineConfig,
        mem: AddressSpace,
        sync: SyncManager,
        services,
        name: str = "",
    ):
        super().__init__(program, config, mem, sync, services, name)
        self.cores = [_Core(cid) for cid in range(config.cores)]
        self._ready: Deque[Tuple[int, int]] = deque()  # (tid, ready time)
        #: latest simulated time any core has reached
        self.time = 0
        self.context_switches = 0

    # ------------------------------------------------------------------
    # Construction from a checkpoint (forward-recovery restart)
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        program: ProgramImage,
        config: MachineConfig,
        services,
        memory_snapshot,
        contexts: Dict[int, ThreadContext],
        sync_state,
        start_time: int = 0,
        name: str = "",
    ) -> "MulticoreEngine":
        mem = AddressSpace.from_snapshot(memory_snapshot)
        sync = SyncManager()
        sync.restore(sync_state)
        engine = cls(program, config, mem, sync, services, name=name)
        engine.time = start_time
        for core in engine.cores:
            core.time = start_time
        engine._adopt_checkpoint_contexts(contexts, wake_blocked_io=False)
        return engine

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _on_ready(self, tid: int, time: int) -> None:
        self._ready.append((tid, time))

    def _dispatch(self) -> None:
        """Assign ready threads to idle cores, earliest core first."""
        while self._ready:
            core = None
            for candidate in self.cores:
                if candidate.tid is None and (
                    core is None or candidate.time < core.time
                ):
                    core = candidate
            if core is None:
                return
            tid, ready_time = self._ready.popleft()
            ctx = self.contexts[tid]
            if ctx.status != ThreadStatus.READY:
                continue  # exited or re-blocked while queued
            core.tid = tid
            core.time = max(core.time, ready_time) + self.costs.context_switch
            core.quantum_left = self.config.quantum
            ctx.status = ThreadStatus.RUNNING
            self.context_switches += 1

    def _process_wakeups(self, now: int) -> None:
        for wakeup in self.services.wakeups(now, self.mem):
            self._now = now
            self.grant(
                wakeup.tid,
                ("syscall", wakeup.retval, wakeup.writes, wakeup.transferred),
            )
        for signal in self.services.signal_deliveries(now):
            self.deliver_signal(signal.tid, signal.handler_pc)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        stop_check: Optional[Callable[["MulticoreEngine"], bool]] = None,
        stop_after: Optional[int] = None,
    ) -> str:
        """Execute until completion or until ``stop_check`` fires.

        Returns ``"done"`` when every thread exited, ``"stopped"`` when the
        stop check fired (all committed ops are consistent; the engine can
        be checkpointed and resumed), or ``"faulted"`` when the guest
        crashed and ``halt_on_fault`` is set. Raises
        :class:`DeadlockError` when nothing can ever run again.

        ``stop_after`` is an optional caller promise that ``stop_check(e)``
        is exactly ``e.time >= stop_after`` (the epoch policies expose the
        value as ``next_boundary()``); fused superblocks are then bounded
        by the remaining cycles instead of being disabled.
        """
        ops_before = self.ops
        try:
            return self._run_loop(stop_check, stop_after)
        finally:
            self._flush_exec_stats(self.ops - ops_before)

    def _run_loop(
        self,
        stop_check: Optional[Callable[["MulticoreEngine"], bool]],
        stop_after: Optional[int],
    ) -> str:
        cores = self.cores
        contexts = self.contexts
        ready = self._ready
        next_event_fn = self.services.next_event_time
        max_ops = self.config.max_ops
        running = ThreadStatus.RUNNING
        fused_table = self.fused
        may_fuse = (
            fused_table is not None
            and not self.observers
            and self.access_interceptor is None
            and (stop_check is None or stop_after is not None)
        )
        table_len = len(fused_table) if fused_table is not None else 0
        while True:
            if self.live_threads == 0:
                return "done"
            if ready:
                self._dispatch()
            # earliest busy core; strict < keeps the lowest-cid tie-break.
            # The runner-up's time bounds any fused run from above, so
            # tracking it here makes the common lock-step gate failure a
            # single comparison instead of a full bound computation.
            core = None
            runner = None
            for candidate in cores:
                if candidate.tid is None:
                    continue
                if core is None or candidate.time < core.time:
                    runner = core
                    core = candidate
                elif runner is None or candidate.time < runner.time:
                    runner = candidate
            if core is None:
                next_event = next_event_fn()
                if next_event is None:
                    raise DeadlockError(
                        f"all threads blocked in {self.name!r}",
                        self.blocked_tids(),
                    )
                if next_event > self.time:
                    self.time = next_event
                self._process_wakeups(self.time)
                continue
            core_time = core.time
            next_event = next_event_fn()
            if next_event is not None and next_event <= core_time:
                # A kernel event (arrival, sleep expiry) is due before this
                # op; deliver it first so a woken thread can claim an idle
                # core that is earlier in time.
                self._process_wakeups(core_time)
                continue
            ctx = contexts[core.tid]
            if may_fuse and 0 <= ctx.pc < table_len:
                site = fused_table[ctx.pc]
                if (
                    site is not None
                    # Fast reject: the exact window is at most the gap to
                    # the runner-up core plus the tie-break cycle, so a
                    # gap smaller than the block's minimum cost can never
                    # pass the full gate below.
                    and (
                        runner is None
                        or runner.time + 1 - core_time >= site.min_cost
                    )
                    and ctx.blocked is None
                    and ctx.pending_grant is None
                    and not ctx.pending_signals
                    and not self.injected_signals
                ):
                    if max_ops - self.ops >= site.length:
                        # Whole-block-or-nothing: every bound must leave
                        # room for the block's static minimum cost, else
                        # generic dispatch handles the op (measured
                        # lock-step windows are 2-3 ops wide; fusing
                        # prefixes that short costs more than it saves).
                        # Cheap bounds first; the core scan exits at the
                        # first core that makes the gate fail (the common
                        # lock-step case costs one comparison).
                        min_cost = site.min_cost
                        cost_max = 1 << 62
                        if next_event is not None:
                            cost_max = next_event - core_time
                        if ready and core.quantum_left < cost_max:
                            cost_max = core.quantum_left
                        if stop_after is not None:
                            room = stop_after - core_time
                            if room < cost_max:
                                cost_max = room
                        if cost_max >= min_cost:
                            # The fused run must stop while this core is
                            # still the earliest (global memory order is
                            # core-time order): strictly below every
                            # lower-cid busy core, at-or-below every
                            # higher-cid one.
                            for other in cores:
                                if other is core or other.tid is None:
                                    continue
                                room = other.time - core_time
                                if other.cid > core.cid:
                                    room += 1
                                if room < cost_max:
                                    if room < min_cost:
                                        cost_max = -1
                                        break
                                    cost_max = room
                        else:
                            cost_max = -1
                        handler = None
                        if cost_max >= min_cost:
                            # Count an entry toward compilation only when
                            # it would actually fuse: blocks whose windows
                            # never fit (lock-step phases) stay cold and
                            # never pay ``compile()``.
                            handler = site.handler
                            if handler is None:
                                site.count -= 1
                                if site.count <= 0:
                                    handler = site.compile()
                        if handler is not None:
                            n, cum, fault = handler(self, ctx, cost_max)
                            self.ops += n
                            self._sb_calls += 1
                            self._sb_ops += n
                            if n < site.length:
                                self._sb_exits += 1
                            core_time += cum
                            core.time = core_time
                            core.quantum_left -= cum
                            if core_time > self.time:
                                self.time = core_time
                            if fault is not None:
                                self._now = core_time
                                if not self.halt_on_fault:
                                    raise fault
                                self.fault = fault
                                return "faulted"
                            if core.quantum_left <= 0 and ready:
                                ctx.status = ThreadStatus.READY
                                ready.append((ctx.tid, core_time))
                                core.tid = None
                            if stop_check is not None and stop_check(self):
                                return "stopped"
                            continue
            self._now = core_time
            try:
                cost = step(self, ctx)
            except GuestFault as fault:
                if not self.halt_on_fault:
                    raise
                # The faulting op applied no effects; the whole program
                # stops at this op boundary (a crash ends the process).
                self.fault = fault
                return "faulted"
            ops = self.ops + 1
            self.ops = ops
            if ops > max_ops:
                raise SimulationError(
                    f"execution exceeded {max_ops} ops (infinite loop?)"
                )
            core_time += cost
            core.time = core_time
            core.quantum_left -= cost
            if core_time > self.time:
                self.time = core_time
            if ctx.status is not running:
                core.tid = None
            elif core.quantum_left <= 0 and ready:
                ctx.status = ThreadStatus.READY
                ready.append((ctx.tid, core_time))
                core.tid = None
            if stop_check is not None and stop_check(self):
                return "stopped"

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def quiesce(self) -> int:
        """Synchronise all cores to the latest core time (checkpoint
        barrier) and return that time. Threads stay scheduled."""
        latest = max([core.time for core in self.cores] + [self.time])
        for core in self.cores:
            core.time = latest
        self.time = latest
        return latest

    def advance_all(self, cycles: int) -> None:
        """Charge ``cycles`` to every core (checkpoint / restore cost)."""
        for core in self.cores:
            core.time += cycles
        self.time += cycles
