"""Trace-level superinstructions: fused handlers for hot basic blocks.

PR 1's table dispatch made fetch+decode one tuple index, but every guest
instruction still costs one Python frame (the handler call) plus generic
loop bookkeeping. This module collapses a whole straight-line block (see
:mod:`repro.isa.blocks`) into ONE specialised Python function compiled at
runtime: operands, immediates, literal cycle costs and even fault
messages are baked in as constants, so a fused block costs one frame
regardless of length.

Correctness contract (what keeps logged event ordering untouched):

* Only event-free ops are fusable — anything that can block, trap,
  consult the sync manager, or deliver to another thread ends a block
  statically (:data:`~repro.isa.blocks.FUSABLE_OPS`).
* A fused handler is *only* entered when the engine proves the next op
  would execute generically with no interposed event: no pending
  signals/grants, no observers or access interceptors, and the caller
  bounds the run so that any op at which the generic loop would stop
  (op target, epoch boundary, quantum expiry, budget/max-ops guard,
  timer event) is excluded from the fused run and falls back to the
  generic ``decode_program`` table.
* ``fused(engine, ctx, max_cost)`` returns ``(n, cum, fault)`` with
  ``ctx.pc``/``ctx.retired`` advanced by exactly ``n`` completed ops of
  total cost ``cum``. The *caller* guarantees op headroom for the whole
  block and ``max_cost >= site.min_cost`` (the block's static minimum
  cost) before entering, so the handler is straight-line code: the only
  interior bound checks are after *dynamic-cost* ops (``WORKR``,
  copy-on-write stores), where ``cum`` can outrun the static minimum.
  Whole-block-or-nothing is a measured decision, not a shortcut: a
  per-op-checked variant that fused bounded *prefixes* whenever the
  scheduling window held at least one op ran 10-20% *slower* on every
  engine — lock-step multicore windows are only 2-3 ops wide, so the
  per-entry gate+call overhead outweighed the dispatch it saved, and
  the interior compares taxed the full-block runs that were already
  winning. A :class:`~repro.errors.GuestFault` (division by zero,
  unmapped address) is caught *inside* the handler and returned with
  the pre-fault op count, so the faulting op applies no effects and the
  caller handles it exactly like a generic-path fault.

The fused table is cached on ``ProgramImage.__dict__`` beside the
``_decoded`` table, keyed by the (frozen, hashable) cost model; like
``_decoded`` it is stripped by ``ProgramImage.__getstate__`` and rebuilt
lazily in worker processes. ``REPRO_SUPERBLOCKS=0`` disables fusion
entirely; ``REPRO_SUPERBLOCK_THRESHOLD`` sets how many times a block
head must be reached before the block is compiled (default 4 — cold
blocks never pay compilation).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.errors import GuestFault
from repro.isa.blocks import discover_blocks
from repro.isa.instructions import Instruction, Op
from repro.obs import metrics as obs_metrics

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_WRAP = 1 << 64


def enabled() -> bool:
    """Is superblock fusion on? (``REPRO_SUPERBLOCKS=0`` disables.)"""
    return os.environ.get("REPRO_SUPERBLOCKS", "1") != "0"


def compile_threshold() -> int:
    """Block-head executions before a block is compiled."""
    try:
        return max(1, int(os.environ.get("REPRO_SUPERBLOCK_THRESHOLD", "4")))
    except ValueError:
        return 4


class BlockSite:
    """One fusable block's lazy compilation state.

    ``count`` starts at the compile threshold and counts down on every
    head entry; :meth:`compile` runs when it reaches zero. Sites are
    shared by every engine on the same (program, cost model) pair in a
    process — double compilation is idempotent and harmless.
    """

    __slots__ = ("start", "instrs", "costs", "count", "handler", "length", "min_cost")

    def __init__(self, start: int, instrs: Tuple[Instruction, ...], costs, count: int):
        self.start = start
        self.instrs = instrs
        self.costs = costs
        self.count = count
        self.handler = None
        self.length = len(instrs)
        #: static lower bound on the block's total cycle cost; entering
        #: the handler with ``max_cost >= min_cost`` guarantees every op
        #: whose running cost is still static gets to execute.
        self.min_cost = sum(_op_min_cost(i, costs) for i in instrs)

    def compile(self):
        """Build and install this block's fused handler."""
        self.handler = _compile_block(self.start, self.instrs, self.costs)
        obs_metrics.process_stats().add("superblock.blocks_compiled")
        return self.handler

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "compiled" if self.handler else f"cold({self.count})"
        return f"BlockSite(pc={self.start}, len={len(self.instrs)}, {state})"


def table_for(program, costs) -> Optional[list]:
    """The program's fused-block table for ``costs`` (None when disabled).

    The table is a per-pc list: ``table[pc]`` is the :class:`BlockSite`
    headed at ``pc`` or None. It lives in ``program.__dict__`` beside
    the ``_decoded`` cache, keyed by cost model (costs are baked into
    the generated code as literals), and is excluded from pickling.
    """
    if not enabled():
        return None
    cache: Dict[object, list] = program.__dict__.get("_superblocks")
    if cache is None:
        cache = {}
        object.__setattr__(program, "_superblocks", cache)
    table = cache.get(costs)
    if table is None:
        table = _build_table(program, costs)
        cache[costs] = table
    return table


def _build_table(program, costs) -> list:
    table: list = [None] * len(program.code)
    threshold = compile_threshold()
    for start, instrs in discover_blocks(program.code).items():
        table[start] = BlockSite(start, instrs, costs, threshold)
    return table


# ----------------------------------------------------------------------
# Code generation.
#
# The generated function is flat, unrolled straight-line code: per op
# the op's effects with literal operands and a literal-cost ``cum``
# update. Because the caller pre-checks op headroom and the static
# minimum cost, a ``cum >= max_cost`` bound check is only emitted for
# ops *after* a dynamic-cost op (WORKR, stores that may copy-on-write)
# — purely static blocks have no interior checks at all. Deferred
# pc/retired: no fused op reads ``ctx.pc``, so the handler advances
# both once per exit with a literal (or ``n`` on the fault path), not
# once per op.
# ----------------------------------------------------------------------

#: ops whose cycle cost is not a compile-time constant
_DYNAMIC_COST_OPS = frozenset({Op.WORKR, Op.STORE, Op.STOREG})

#: ops that can raise GuestFault (div by zero, unmapped address); ``n``
#: only needs to be accurate when one of these is about to execute
_FAULTABLE_OPS = frozenset(
    {Op.DIV, Op.MOD, Op.LOAD, Op.LOADG, Op.STORE, Op.STOREG}
)


def _op_min_cost(instr: Instruction, costs) -> int:
    """Static lower bound on one op's cycle cost."""
    op = instr.op
    if op is Op.WORK:
        return int(instr.a)
    if op is Op.WORKR:
        return 1
    if op in (Op.LOAD, Op.LOADG, Op.STORE, Op.STOREG):
        return int(costs.mem)
    return int(costs.alu)


def _wrap_store(dest: str, expr: str) -> List[str]:
    return [
        f"_v = ({expr}) & {_MASK}",
        f"{dest} = _v - {_WRAP} if _v & {_SIGN} else _v",
    ]


def _gen_op(pc: int, instr: Instruction, costs) -> Tuple[List[str], bool]:
    """Source lines for one op (effects + ``cum`` update), mem-use flag."""
    op = instr.op
    a, b, c = instr.a, instr.b, instr.c
    alu = int(costs.alu)
    lines: List[str] = []
    uses_mem = False
    if op is Op.LI:
        value = b & _MASK
        lines.append(f"regs[{a}] = {value - _WRAP if value & _SIGN else value}")
        lines.append(f"cum += {alu}")
    elif op is Op.MOV:
        lines.append(f"regs[{a}] = regs[{b}]")
        lines.append(f"cum += {alu}")
    elif op in (Op.ADD, Op.SUB, Op.MUL):
        sym = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*"}[op]
        lines += _wrap_store(f"regs[{a}]", f"regs[{b}] {sym} regs[{c}]")
        lines.append(f"cum += {alu}")
    elif op in (Op.DIV, Op.MOD):
        sym = "//" if op is Op.DIV else "%"
        lines.append(f"_d = regs[{c}]")
        lines.append("if _d == 0:")
        lines.append(
            f"    raise GuestFault('division by zero at pc {pc}', ctx.tid, {pc})"
        )
        lines += _wrap_store(f"regs[{a}]", f"regs[{b}] {sym} _d")
        lines.append(f"cum += {alu}")
    elif op in (Op.AND, Op.OR, Op.XOR):
        sym = {Op.AND: "&", Op.OR: "|", Op.XOR: "^"}[op]
        lines.append(f"regs[{a}] = regs[{b}] {sym} regs[{c}]")
        lines.append(f"cum += {alu}")
    elif op in (Op.ADDI, Op.MULI, Op.SHLI, Op.SHRI):
        sym = {Op.ADDI: "+", Op.MULI: "*", Op.SHLI: "<<", Op.SHRI: ">>"}[op]
        lines += _wrap_store(f"regs[{a}]", f"regs[{b}] {sym} {c}")
        lines.append(f"cum += {alu}")
    elif op is Op.SLT:
        lines.append(f"regs[{a}] = 1 if regs[{b}] < regs[{c}] else 0")
        lines.append(f"cum += {alu}")
    elif op is Op.SLTI:
        lines.append(f"regs[{a}] = 1 if regs[{b}] < {c} else 0")
        lines.append(f"cum += {alu}")
    elif op is Op.SEQ:
        lines.append(f"regs[{a}] = 1 if regs[{b}] == regs[{c}] else 0")
        lines.append(f"cum += {alu}")
    elif op is Op.SEQI:
        lines.append(f"regs[{a}] = 1 if regs[{b}] == {c} else 0")
        lines.append(f"cum += {alu}")
    elif op is Op.TID:
        lines.append(f"regs[{a}] = ctx.tid")
        lines.append(f"cum += {alu}")
    elif op is Op.NOP:
        lines.append(f"cum += {alu}")
    elif op is Op.WORK:
        lines.append(f"cum += {int(a)}")
    elif op is Op.WORKR:
        lines.append(f"_d = regs[{a}]")
        lines.append("cum += _d if _d > 1 else 1")
    elif op is Op.LOAD:
        uses_mem = True
        addr = f"regs[{b}] + {c}" if c else f"regs[{b}]"
        lines.append(f"regs[{a}] = rd({addr})")
        lines.append(f"cum += {int(costs.mem)}")
    elif op is Op.LOADG:
        uses_mem = True
        lines.append(f"regs[{a}] = rd({b})")
        lines.append(f"cum += {int(costs.mem)}")
    elif op in (Op.STORE, Op.STOREG):
        uses_mem = True
        addr = (f"regs[{b}] + {c}" if c else f"regs[{b}]") if op is Op.STORE else f"{b}"
        lines.append("_cb = mem.cow_copies")
        lines.append(f"wr({addr}, regs[{a}])")
        lines.append(
            f"cum += {int(costs.mem)} + "
            f"(mem.cow_copies - _cb) * {int(costs.page_cow_copy)}"
        )
    else:  # pragma: no cover - discover_blocks only emits fusable ops
        raise ValueError(f"op {op!r} is not fusable")
    return lines, uses_mem


def _compile_block(start: int, instrs: Tuple[Instruction, ...], costs):
    """Compile one block into its fused handler function."""
    body: List[str] = []
    uses_mem = False
    dynamic = False
    # ``max_cost >= min_cost`` only proves ``cum`` stays strictly below
    # ``max_cost`` before op k while the suffix k.. still contributes at
    # least one cycle to the minimum; a zero-cost tail (WORK 0) voids
    # that proof, so such ops get an explicit check too.
    suffix = [0] * (len(instrs) + 1)
    for k in range(len(instrs) - 1, -1, -1):
        suffix[k] = suffix[k + 1] + _op_min_cost(instrs[k], costs)
    for k, instr in enumerate(instrs):
        if k and (dynamic or suffix[k] == 0):
            # ``cum`` may have reached ``max_cost``; re-check before
            # each subsequent op, exactly like the generic loop.
            body.append("if cum >= max_cost:")
            body.append(f"    ctx.pc += {k}")
            body.append(f"    ctx.retired += {k}")
            body.append(f"    return {k}, cum, None")
        if instr.op in _FAULTABLE_OPS:
            body.append(f"n = {k}")
        lines, op_mem = _gen_op(start + k, instr, costs)
        body += lines
        uses_mem = uses_mem or op_mem
        dynamic = dynamic or instr.op in _DYNAMIC_COST_OPS
    length = len(instrs)
    header = [
        f"def _fused_{start}(engine, ctx, max_cost):",
        "    regs = ctx.registers",
    ]
    if uses_mem:
        header.append("    mem = engine.mem")
        header.append("    rd = mem.read")
        header.append("    wr = mem.write")
    header.append("    n = 0")
    header.append("    cum = 0")
    header.append("    try:")
    source = (
        "\n".join(header)
        + "\n"
        + "\n".join("        " + line for line in body)
        + "\n"
        + "    except GuestFault as fault:\n"
        + "        ctx.pc += n\n"
        + "        ctx.retired += n\n"
        + "        return n, cum, fault\n"
        + f"    ctx.pc += {length}\n"
        + f"    ctx.retired += {length}\n"
        + f"    return {length}, cum, None\n"
    )
    namespace = {"GuestFault": GuestFault}
    exec(compile(source, f"<superblock pc={start}>", "exec"), namespace)
    return namespace[f"_fused_{start}"]
