"""Uniprocessor timesliced execution.

All guest threads share one simulated CPU, scheduled round-robin with a
configurable quantum — DoublePlay's key simplification: threads in an epoch
never access memory simultaneously, so the *timeslice order is the whole
schedule log*.

Two modes:

* **capture** (:meth:`UniprocessorEngine.run`): scheduling decisions are
  the engine's own and are recorded into a :class:`ScheduleLog`. The
  epoch-parallel execution runs in this mode with injected syscalls,
  per-thread retired-op targets and (optionally) a sync-order oracle; the
  uniprocessor recording baseline runs in this mode with a live kernel and
  no targets.
* **enforce** (:meth:`UniprocessorEngine.run_schedule`): a previously
  captured schedule is followed slice by slice — this is replay. Any
  departure from the log raises :class:`ReplayError`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.errors import (
    DeadlockError,
    DivergenceSignal,
    GuestFault,
    ReplayError,
    SimulationError,
)
from repro.exec.engine import BaseEngine
from repro.exec.interpreter import step
from repro.isa.context import ThreadContext, ThreadStatus
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.address_space import AddressSpace
from repro.oskernel.sync import SyncManager
from repro.record.schedule_log import ScheduleLog

#: cost bound meaning "no cycle budget" for a fused run (replay mode)
_UNBOUNDED_COST = 1 << 62


class EpochOutcome:
    """Result of a captured uniprocessor run."""

    def __init__(self, status: str, schedule: ScheduleLog, duration: int,
                 reason: str = ""):
        #: "complete" (all targets reached / all threads exited) or "stopped"
        self.status = status
        self.schedule = schedule
        self.duration = duration
        self.reason = reason

    def __repr__(self) -> str:
        return f"EpochOutcome({self.status!r}, duration={self.duration})"


class UniprocessorEngine(BaseEngine):
    """One simulated CPU, round-robin quantum scheduling."""

    def __init__(
        self,
        program: ProgramImage,
        config: MachineConfig,
        mem: AddressSpace,
        sync: SyncManager,
        services,
        targets: Optional[Dict[int, int]] = None,
        boundary_blocked: Optional[Dict[int, str]] = None,
        name: str = "",
    ):
        super().__init__(program, config, mem, sync, services, name)
        #: per-thread retired-op counts at which threads park (epoch mode)
        self.targets = targets
        #: tid → blocked-reason kind for threads the boundary checkpoint
        #: left blocked mid-op. On reaching its target such a thread must
        #: *issue* that op (and block) rather than park before it, so wait
        #: queue membership converges with the thread-parallel boundary.
        #: Kernel-blocked threads ("syscall") are excluded: under injection
        #: the issue would complete instead of blocking.
        self.boundary_blocked = boundary_blocked or {}
        self._ready: Deque[int] = deque()
        self.time = 0
        self.context_switches = 0
        self._run_ops = 0
        self._op_budget: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        program: ProgramImage,
        config: MachineConfig,
        services,
        memory_snapshot,
        contexts: Dict[int, ThreadContext],
        sync_state,
        targets: Optional[Dict[int, int]] = None,
        boundary_blocked: Optional[Dict[int, str]] = None,
        wake_blocked_io: bool = True,
        start_time: int = 0,
        name: str = "",
    ) -> "UniprocessorEngine":
        """Engine positioned at a checkpoint.

        ``wake_blocked_io=True`` is the epoch-parallel normalisation:
        threads the thread-parallel run left blocked in the kernel resume
        here and complete from the injected log (see
        ``interpreter._resume_blocked``). Pass ``False`` when restoring a
        live-kernel execution whose kernel still holds the waiters.
        """
        mem = AddressSpace.from_snapshot(memory_snapshot)
        sync = SyncManager()
        sync.restore(sync_state)
        engine = cls(
            program,
            config,
            mem,
            sync,
            services,
            targets=targets,
            boundary_blocked=boundary_blocked,
            name=name,
        )
        engine.time = start_time
        engine._adopt_checkpoint_contexts(contexts, wake_blocked_io=wake_blocked_io)
        return engine

    # ------------------------------------------------------------------
    # Scheduling plumbing
    # ------------------------------------------------------------------
    def _on_ready(self, tid: int, time: int) -> None:
        self._ready.append(tid)

    def _check_spawn(self, child_tid: int) -> None:
        if self.targets is not None and child_tid not in self.targets:
            raise DivergenceSignal(
                f"epoch execution spawned unexpected thread {child_tid}"
            )

    def _at_target(self, ctx: ThreadContext) -> bool:
        if self.targets is None:
            return False
        target = self.targets.get(ctx.tid)
        return target is not None and ctx.retired >= target

    def _all_done(self) -> bool:
        if self.targets is None:
            return self.all_exited()
        for tid, ctx in self.contexts.items():
            target = self.targets.get(tid)
            if target is None:
                return False
            if ctx.retired < target:
                return False
            if self._needs_boundary_issue(ctx):
                return False
        return True

    def _process_wakeups(self, now: int) -> None:
        for wakeup in self.services.wakeups(now, self.mem):
            self._now = now
            self.grant(
                wakeup.tid,
                ("syscall", wakeup.retval, wakeup.writes, wakeup.transferred),
            )
        for signal in self.services.signal_deliveries(now):
            self.deliver_signal(signal.tid, signal.handler_pc)

    def _needs_boundary_issue(self, ctx: ThreadContext) -> bool:
        """Must this at-target thread still issue a blocking op?"""
        kind = self.boundary_blocked.get(ctx.tid)
        return (
            kind is not None
            and kind != "syscall"
            and ctx.blocked is None
            and ctx.pending_grant is None
            and ctx.status != ThreadStatus.EXITED
        )

    def _issue_boundary_op(self, ctx: ThreadContext) -> None:
        """Execute the boundary-straddling op; it must not retire.

        Acceptable outcomes: the thread blocks (queued/arrived, like the
        thread-parallel run), or it is immediately granted (it completed a
        barrier) — either way its retired count stays at the target.
        """
        retired_before = ctx.retired
        self._now = self.time
        cost = step(self, ctx)
        self._count_run_op()
        self.time += cost
        issued_ok = ctx.status == ThreadStatus.BLOCKED or ctx.pending_grant is not None
        if ctx.retired != retired_before or not issued_ok:
            raise DivergenceSignal(
                f"thread {ctx.tid} had its boundary op pending in the "
                f"thread-parallel run but it completed here"
            )

    def _stall(self) -> None:
        blocked = self.blocked_tids()
        if self.targets is not None:
            raise DivergenceSignal(
                "epoch execution stalled before reaching its targets "
                f"(blocked threads: {blocked})"
            )
        raise DeadlockError(f"all threads blocked in {self.name!r}", blocked)

    def _count_run_op(self) -> None:
        self._guard_ops()
        self._run_ops += 1
        if self._op_budget is not None and self._run_ops > self._op_budget:
            raise DivergenceSignal(
                "epoch execution exceeded its op budget (runaway divergence)"
            )

    # ------------------------------------------------------------------
    # Capture mode
    # ------------------------------------------------------------------
    def run(
        self,
        stop_check: Optional[Callable[["UniprocessorEngine"], bool]] = None,
        stop_after: Optional[int] = None,
    ) -> EpochOutcome:
        """Run with the engine's own scheduling, capturing the schedule.

        With targets set, completes when every thread reaches its target
        (threads park there); stalls and runaway executions raise
        :class:`DivergenceSignal`. Without targets, runs until every
        thread exits. ``stop_check`` ends the run early with status
        ``"stopped"`` (used by forward recovery's epoch re-execution).

        ``stop_after`` is an optional caller promise about ``stop_check``:
        it guarantees ``stop_check(e)`` is exactly ``e.time >= stop_after``
        (the epoch policies expose the value as ``next_boundary()``).
        Fused superblocks are then bounded by the remaining cycles instead
        of being disabled whenever a stop check is installed.
        """
        ops_before = self.ops
        try:
            return self._run_capture(stop_check, stop_after)
        finally:
            self._flush_exec_stats(self.ops - ops_before)

    def _run_capture(
        self,
        stop_check: Optional[Callable[["UniprocessorEngine"], bool]],
        stop_after: Optional[int],
    ) -> EpochOutcome:
        schedule = ScheduleLog()
        self._run_ops = 0
        if self.targets is not None:
            # Targets cover threads not yet spawned at epoch start, so the
            # work estimate must come from the targets, not from the
            # currently existing contexts.
            already_retired = sum(ctx.retired for ctx in self.contexts.values())
            needed = max(sum(self.targets.values()) - already_retired, 0)
            self._op_budget = 2 * needed + 64 * (len(self.targets) + 1)
        stopped = False
        ready = self._ready
        targets = self.targets
        costs = self.costs
        max_ops = self.config.max_ops
        op_budget = self._op_budget
        next_event_fn = self.services.next_event_time
        has_events = getattr(self.services, "HAS_EVENTS", True)
        running = ThreadStatus.RUNNING
        fused_table = self.fused
        may_fuse = (
            fused_table is not None
            and not self.observers
            and self.access_interceptor is None
            and (stop_check is None or stop_after is not None)
        )
        table_len = len(fused_table) if fused_table is not None else 0
        while not stopped:
            if self._all_done():
                return EpochOutcome("complete", schedule, self.time)
            if not ready:
                next_event = next_event_fn()
                if next_event is not None:
                    self.time = max(self.time, next_event)
                    self._process_wakeups(self.time)
                    continue
                self._stall()
            tid = ready.popleft()
            ctx = self.contexts[tid]
            if ctx.status != ThreadStatus.READY:
                continue
            if self._at_target(ctx):
                if self._needs_boundary_issue(ctx):
                    ctx.status = ThreadStatus.RUNNING
                    self.time += self.costs.context_switch
                    self.context_switches += 1
                    self._issue_boundary_op(ctx)
                    schedule.append(tid, 0, True)
                elif ctx.blocked is not None:
                    # A wake-normalised thread that is still semantically
                    # mid-op (join/syscall wait): keep it waiting so an
                    # in-epoch exit can still grant it — matching the
                    # thread-parallel run, where such grants happen.
                    ctx.status = ThreadStatus.BLOCKED
                else:
                    ctx.status = ThreadStatus.PARKED
                continue
            ctx.status = ThreadStatus.RUNNING
            self.time += costs.context_switch
            self.context_switches += 1
            budget = self.config.quantum
            retired_at_start = ctx.retired
            target = None if targets is None else targets.get(tid)
            issue_ended = False
            while budget > 0 and ctx.status is running:
                if target is not None and ctx.retired >= target:
                    break
                if has_events:
                    next_event = next_event_fn()
                    if next_event is not None and next_event <= self.time:
                        self._process_wakeups(self.time)
                if may_fuse and 0 <= ctx.pc < table_len:
                    site = fused_table[ctx.pc]
                    if (
                        site is not None
                        and ctx.blocked is None
                        and ctx.pending_grant is None
                        and not ctx.pending_signals
                        and not self.injected_signals
                    ):
                        # Fuse only when the whole block fits inside
                        # every bound at which the generic loop would
                        # stop, raise, or interpose an event — a
                        # truncated fused run costs more than it saves
                        # and falls back to generic dispatch instead.
                        length = site.length
                        cost_max = budget
                        if has_events and next_event is not None:
                            room = next_event - self.time
                            if room < cost_max:
                                cost_max = room
                        if stop_after is not None:
                            room = stop_after - self.time
                            if room < cost_max:
                                cost_max = room
                        if (
                            cost_max >= site.min_cost
                            and max_ops - self.ops >= length
                            and (
                                op_budget is None
                                or op_budget - self._run_ops >= length
                            )
                            and (
                                target is None
                                or target - ctx.retired >= length
                            )
                        ):
                            # Compilation counts only entries that would
                            # fuse, so blocks starved by their bounds
                            # never pay ``compile()``.
                            handler = site.handler
                            if handler is None:
                                site.count -= 1
                                if site.count <= 0:
                                    handler = site.compile()
                            if handler is not None:
                                n, cum, fault = handler(self, ctx, cost_max)
                                self.ops += n
                                self._run_ops += n
                                self.time += cum
                                budget -= cum
                                self._sb_calls += 1
                                self._sb_ops += n
                                if n < site.length:
                                    self._sb_exits += 1
                                if fault is not None:
                                    self._now = self.time
                                    if targets is not None:
                                        raise DivergenceSignal(
                                            "guest faulted during epoch "
                                            f"re-execution: {fault}"
                                        )
                                    if not self.halt_on_fault:
                                        raise fault
                                    self.fault = fault
                                    if ctx.retired > retired_at_start:
                                        schedule.append(
                                            tid,
                                            ctx.retired - retired_at_start,
                                            False,
                                        )
                                    return EpochOutcome(
                                        "faulted",
                                        schedule,
                                        self.time,
                                        reason=str(fault),
                                    )
                                if stop_check is not None and stop_check(self):
                                    stopped = True
                                    break
                                continue
                self._now = self.time
                retired_before = ctx.retired
                try:
                    cost = step(self, ctx)
                except GuestFault as fault:
                    if targets is not None:
                        # The thread-parallel run retired past this point
                        # without crashing; a fault here is a divergence.
                        raise DivergenceSignal(
                            f"guest faulted during epoch re-execution: {fault}"
                        )
                    if not self.halt_on_fault:
                        raise
                    self.fault = fault
                    if ctx.retired > retired_at_start:
                        schedule.append(tid, ctx.retired - retired_at_start, False)
                    return EpochOutcome("faulted", schedule, self.time,
                                        reason=str(fault))
                ops = self.ops + 1
                self.ops = ops
                if ops > max_ops:
                    raise SimulationError(
                        f"execution exceeded {max_ops} ops (infinite loop?)"
                    )
                run_ops = self._run_ops + 1
                self._run_ops = run_ops
                if op_budget is not None and run_ops > op_budget:
                    raise DivergenceSignal(
                        "epoch execution exceeded its op budget "
                        "(runaway divergence)"
                    )
                self.time += cost
                budget -= cost
                if ctx.retired == retired_before:
                    # A non-retiring step is a blocking issue (possibly
                    # immediately granted, e.g. completing a barrier); it
                    # always ends the slice and replay must re-execute it.
                    issue_ended = True
                    break
                if stop_check is not None and stop_check(self):
                    stopped = True
                    break
            if (
                ctx.status == ThreadStatus.RUNNING
                and self._at_target(ctx)
                and self._needs_boundary_issue(ctx)
            ):
                self._issue_boundary_op(ctx)
                issue_ended = True
            ops_retired = ctx.retired - retired_at_start
            if ops_retired or issue_ended:
                schedule.append(tid, ops_retired, issue_ended)
            if ctx.status == ThreadStatus.RUNNING:
                if self._at_target(ctx):
                    ctx.status = ThreadStatus.PARKED
                else:
                    ctx.status = ThreadStatus.READY
                    self._ready.append(tid)
        return EpochOutcome("stopped", schedule, self.time)

    # ------------------------------------------------------------------
    # Checkpoint support (forward recovery checkpoints its live re-run)
    # ------------------------------------------------------------------
    def quiesce(self) -> int:
        """One core: already quiescent at op boundaries."""
        return self.time

    def advance_all(self, cycles: int) -> None:
        self.time += cycles

    # ------------------------------------------------------------------
    # Enforce mode (replay)
    # ------------------------------------------------------------------
    def run_schedule(self, schedule: ScheduleLog) -> int:
        """Follow a captured schedule exactly; returns the elapsed cycles.

        Raises :class:`ReplayError` on any departure — a correct recording
        replayed on the starting state it was captured from never departs.
        """
        ops_before = self.ops
        try:
            return self._run_schedule(schedule)
        finally:
            self._flush_exec_stats(self.ops - ops_before)

    def _run_schedule(self, schedule: ScheduleLog) -> int:
        max_ops = self.config.max_ops
        fused_table = self.fused
        may_fuse = (
            fused_table is not None
            and not self.observers
            and self.access_interceptor is None
        )
        table_len = len(fused_table) if fused_table is not None else 0
        for timeslice in schedule:
            ctx = self.contexts.get(timeslice.tid)
            if ctx is None:
                raise ReplayError(
                    f"schedule references unknown thread {timeslice.tid}"
                )
            if ctx.status not in (ThreadStatus.READY, ThreadStatus.RUNNING):
                blocked_kind = (
                    ctx.blocked.kind
                    if ctx.status == ThreadStatus.BLOCKED and ctx.blocked is not None
                    else None
                )
                if (
                    blocked_kind is not None
                    and ctx.pending_grant is None
                    and timeslice.ops == 0
                    and timeslice.ended_blocked
                ):
                    # A capture-side probe: the epoch executor re-issues
                    # checkpoint-restored join/syscall waits each epoch and
                    # records a (0 ops, blocked) slice when they re-block.
                    # On a continuously-running replay the thread simply
                    # stayed blocked — the probe had no effects; skip it.
                    continue
                if blocked_kind in ("syscall", "join"):
                    # Lazily wake-normalise (the capture engine did this at
                    # restore): the interpreter's resume path completes the
                    # op from the log / the target's exit state.
                    ctx.status = ThreadStatus.READY
                else:
                    raise ReplayError(
                        f"schedule runs thread {timeslice.tid} but it is "
                        f"{ctx.status.value}"
                    )
            ctx.status = ThreadStatus.RUNNING
            self.time += self.costs.context_switch
            self.context_switches += 1
            executed = 0
            while executed < timeslice.ops:
                if ctx.status != ThreadStatus.RUNNING:
                    raise ReplayError(
                        f"thread {timeslice.tid} became {ctx.status.value} "
                        f"after {executed}/{timeslice.ops} ops of its slice"
                    )
                if may_fuse and 0 <= ctx.pc < table_len:
                    site = fused_table[ctx.pc]
                    if (
                        site is not None
                        # Cheapest bound first: short slices (contended
                        # replays) reject most probes, so the slice-room
                        # compare runs before the status-flag chain.
                        and timeslice.ops - executed >= site.length
                        and ctx.blocked is None
                        and ctx.pending_grant is None
                        and not ctx.pending_signals
                        and not self.injected_signals
                    ):
                        handler = site.handler
                        if handler is None:
                            site.count -= 1
                            if site.count <= 0:
                                handler = site.compile()
                        if handler is not None and (
                            max_ops - self.ops >= site.length
                        ):
                            # Replay has no cycle budget: only the slice's
                            # remaining op count and max_ops gate fusion
                            # (fused ops always retire, so the mid-slice
                            # blocking check cannot be skipped over).
                            n, cum, fault = handler(self, ctx, _UNBOUNDED_COST)
                            self.ops += n
                            self.time += cum
                            executed += n
                            self._sb_calls += 1
                            self._sb_ops += n
                            if n < site.length:
                                self._sb_exits += 1
                            if fault is not None:
                                self._now = self.time
                                raise fault
                            continue
                retired_before = ctx.retired
                self._now = self.time
                cost = step(self, ctx)
                ops = self.ops + 1
                self.ops = ops
                if ops > max_ops:
                    raise SimulationError(
                        f"execution exceeded {max_ops} ops (infinite loop?)"
                    )
                self.time += cost
                if ctx.retired == retired_before:
                    raise ReplayError(
                        f"thread {timeslice.tid} blocked mid-slice at pc {ctx.pc}"
                    )
                executed += 1
            if timeslice.ended_blocked:
                if ctx.status != ThreadStatus.RUNNING:
                    raise ReplayError(
                        f"thread {timeslice.tid} cannot issue its recorded "
                        f"blocking op (status {ctx.status.value})"
                    )
                retired_before = ctx.retired
                self._now = self.time
                cost = step(self, ctx)
                self._guard_ops()
                self.time += cost
                issued_ok = (
                    ctx.status == ThreadStatus.BLOCKED
                    or ctx.pending_grant is not None
                )
                if ctx.retired != retired_before or not issued_ok:
                    raise ReplayError(
                        f"thread {timeslice.tid} was recorded issuing a "
                        f"blocking op at pc {ctx.pc} but it completed on replay"
                    )
            elif ctx.status == ThreadStatus.RUNNING:
                ctx.status = ThreadStatus.READY
        return self.time
