"""Syscall service personalities.

Engines issue syscalls through a service object with a common interface:

* ``invoke(ctx, kind, args, mem, now)`` → ``SyscallDone`` or ``SyscallBlock``
* ``wakeups(now, mem)`` → completed blocked calls (live kernel only)
* ``next_event_time()`` → earliest future kernel event (live kernel only)

:class:`LiveSyscalls` wraps a real simulated kernel and optionally logs
every completion — DoublePlay's thread-parallel execution runs with logging
on. :class:`InjectedSyscalls` replays a log: results are returned without
any kernel, and a mismatch between what the guest asks and what the log
holds is reported to a divergence callback — this is the paper's early
divergence detection on system-call mismatch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DivergenceSignal
from repro.isa.context import ThreadContext
from repro.memory.address_space import AddressSpace
from repro.oskernel.kernel import Kernel
from repro.oskernel.syscalls import (
    SyscallBlock,
    SyscallDone,
    SyscallKind,
    SyscallRecord,
    Wakeup,
)


class LiveSyscalls:
    """Execute syscalls against a live kernel, logging completions."""

    #: engines poll ``next_event_time`` per op; False lets them skip it
    HAS_EVENTS = True

    def __init__(self, kernel: Kernel, log: Optional[List[SyscallRecord]] = None):
        self.kernel = kernel
        #: completed-call log in global completion order (None = no logging)
        self.log = log

    def invoke(
        self,
        ctx: ThreadContext,
        kind: SyscallKind,
        args: Sequence[int],
        mem: AddressSpace,
        now: int,
    ):
        outcome = self.kernel.syscall(ctx.tid, kind, args, mem, now)
        if isinstance(outcome, SyscallDone) and self.log is not None:
            self.log.append(
                SyscallRecord(
                    tid=ctx.tid,
                    seq=ctx.syscall_count,
                    kind=kind,
                    retval=outcome.retval,
                    writes=outcome.writes,
                    transferred=outcome.transferred,
                )
            )
        return outcome

    def record_wakeup_completion(
        self, ctx: ThreadContext, kind: SyscallKind, grant: Tuple
    ) -> None:
        """Log a blocked call's completion at its retirement."""
        if self.log is None:
            return
        _, retval, writes, transferred = grant
        self.log.append(
            SyscallRecord(
                tid=ctx.tid,
                seq=ctx.syscall_count,
                kind=kind,
                retval=retval,
                writes=writes,
                transferred=transferred,
            )
        )

    def wakeups(self, now: int, mem: AddressSpace) -> List[Wakeup]:
        return self.kernel.wakeups(now, mem)

    def signal_deliveries(self, now: int):
        return self.kernel.signal_deliveries(now)

    def next_event_time(self) -> Optional[int]:
        return self.kernel.next_event_time()


class InjectedSyscalls:
    """Complete syscalls from a log instead of a kernel.

    ``records`` may span the whole recording; lookup is by the issuing
    thread's per-thread sequence number, so an epoch executor can be handed
    the full log and will naturally consume only its epoch's slice.
    """

    #: no kernel — ``next_event_time`` is always None
    HAS_EVENTS = False

    def __init__(
        self,
        records: Sequence[SyscallRecord],
        on_mismatch: Optional[Callable[[str], None]] = None,
    ):
        self._by_seq: Dict[Tuple[int, int], SyscallRecord] = {
            (record.tid, record.seq): record for record in records
        }
        self._on_mismatch = on_mismatch
        #: records actually consumed (size accounting, tests)
        self.consumed = 0

    def invoke(
        self,
        ctx: ThreadContext,
        kind: SyscallKind,
        args: Sequence[int],
        mem: AddressSpace,
        now: int,
    ):
        record = self._by_seq.get((ctx.tid, ctx.syscall_count))
        if record is None:
            # The logged execution never completed this call (e.g. the
            # thread was still blocked when recording ended): park forever.
            return SyscallBlock("log-exhausted")
        if record.kind != kind:
            message = (
                f"thread {ctx.tid} issued syscall {kind.value!r} as call "
                f"#{ctx.syscall_count} but the log holds {record.kind.value!r}"
            )
            if self._on_mismatch is not None:
                self._on_mismatch(message)
            raise DivergenceSignal(message)
        self.consumed += 1
        if kind == SyscallKind.ALLOC:
            # The live kernel maps the allocated pages as a side effect;
            # injection must reproduce that or subsequent stores fault.
            mem.map_range(record.retval, args[0])
        for base, words in record.writes:
            mem.write_block(base, words)
        return SyscallDone(
            retval=record.retval,
            writes=record.writes,
            transferred=record.transferred,
        )

    def wakeups(self, now: int, mem: AddressSpace) -> List[Wakeup]:
        return []

    def signal_deliveries(self, now: int):
        return []

    def next_event_time(self) -> Optional[int]:
        return None
