"""The guest instruction interpreter.

``step(engine, ctx)`` executes exactly one instruction of ``ctx`` against
the engine's memory/sync/syscall services and returns its cycle cost. Both
execution engines call this same function, so guest semantics cannot drift
between the thread-parallel execution, the epoch-parallel execution and
replay — the property DoublePlay's correctness argument rests on.

Retirement discipline (the invariant everything else depends on):

* An instruction *retires* when all its effects are applied; ``ctx.retired``
  then increments. Epoch boundaries are retired-op counts, so effects must
  never leak out of an unretired op.
* A blocking op that cannot complete leaves ``pc`` and ``retired``
  untouched and parks the thread with a :class:`BlockedReason`.
* When another thread's action completes the op (lock grant, kernel
  wakeup, exit-for-join), the completion is stored in
  ``ctx.pending_grant`` and the op retires the next time the owning thread
  is scheduled — inside its own timeslice, which keeps uniprocessor
  schedule logs exact.
"""

from __future__ import annotations

from repro.errors import GuestFault, SimulationError
from repro.isa.context import BlockedReason, ThreadContext, ThreadStatus
from repro.isa.instructions import Instruction, Op
from repro.memory.layout import wrap_word
from repro.oskernel.syscalls import SyscallDone, SyscallKind

_DIV_OPS = (Op.DIV, Op.MOD)


def step(engine, ctx: ThreadContext) -> int:
    """Execute one instruction (or consume a pending grant); returns cycles."""
    # Asynchronous signal delivery happens at a clean op boundary:
    # delivery (push return pc, jump to handler) plus the handler's first
    # instruction form one step, so the thread's retired count uniquely
    # identifies the delivery point for record and replay. Delivery is
    # checked before grant consumption — a signal that fired while the
    # grant was in flight interposes its handler first, as it did in the
    # recorded execution.
    if ctx.blocked is None:
        handler_pc = engine.next_signal(ctx)
        if handler_pc is not None:
            ctx.call_stack.append(ctx.pc)
            ctx.pc = handler_pc
            engine.trace("signal", ctx.tid, handler_pc)
            return _dispatch(engine, ctx, engine.program.fetch(ctx.pc))
    if ctx.pending_grant is not None:
        return _consume_grant(engine, ctx)
    if ctx.blocked is not None:
        return _resume_blocked(engine, ctx)
    return _dispatch(engine, ctx, engine.program.fetch(ctx.pc))


def _dispatch(engine, ctx: ThreadContext, instr: Instruction) -> int:
    """Execute exactly the instruction ``instr`` for ``ctx``."""
    op = instr.op
    costs = engine.costs
    regs = ctx.registers

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    if op is Op.LI:
        regs[instr.a] = wrap_word(instr.b)
        return _retire(ctx, costs.alu)
    if op is Op.MOV:
        regs[instr.a] = regs[instr.b]
        return _retire(ctx, costs.alu)
    if op is Op.ADD:
        regs[instr.a] = wrap_word(regs[instr.b] + regs[instr.c])
        return _retire(ctx, costs.alu)
    if op is Op.SUB:
        regs[instr.a] = wrap_word(regs[instr.b] - regs[instr.c])
        return _retire(ctx, costs.alu)
    if op is Op.MUL:
        regs[instr.a] = wrap_word(regs[instr.b] * regs[instr.c])
        return _retire(ctx, costs.alu)
    if op in _DIV_OPS:
        divisor = regs[instr.c]
        if divisor == 0:
            raise GuestFault(f"division by zero at pc {ctx.pc}", ctx.tid, ctx.pc)
        if op is Op.DIV:
            regs[instr.a] = wrap_word(regs[instr.b] // divisor)
        else:
            regs[instr.a] = wrap_word(regs[instr.b] % divisor)
        return _retire(ctx, costs.alu)
    if op is Op.AND:
        regs[instr.a] = regs[instr.b] & regs[instr.c]
        return _retire(ctx, costs.alu)
    if op is Op.OR:
        regs[instr.a] = regs[instr.b] | regs[instr.c]
        return _retire(ctx, costs.alu)
    if op is Op.XOR:
        regs[instr.a] = regs[instr.b] ^ regs[instr.c]
        return _retire(ctx, costs.alu)
    if op is Op.ADDI:
        regs[instr.a] = wrap_word(regs[instr.b] + instr.c)
        return _retire(ctx, costs.alu)
    if op is Op.MULI:
        regs[instr.a] = wrap_word(regs[instr.b] * instr.c)
        return _retire(ctx, costs.alu)
    if op is Op.SHLI:
        regs[instr.a] = wrap_word(regs[instr.b] << instr.c)
        return _retire(ctx, costs.alu)
    if op is Op.SHRI:
        regs[instr.a] = wrap_word(regs[instr.b] >> instr.c)
        return _retire(ctx, costs.alu)
    if op is Op.SLT:
        regs[instr.a] = 1 if regs[instr.b] < regs[instr.c] else 0
        return _retire(ctx, costs.alu)
    if op is Op.SLTI:
        regs[instr.a] = 1 if regs[instr.b] < instr.c else 0
        return _retire(ctx, costs.alu)
    if op is Op.SEQ:
        regs[instr.a] = 1 if regs[instr.b] == regs[instr.c] else 0
        return _retire(ctx, costs.alu)
    if op is Op.SEQI:
        regs[instr.a] = 1 if regs[instr.b] == instr.c else 0
        return _retire(ctx, costs.alu)
    if op is Op.TID:
        regs[instr.a] = ctx.tid
        return _retire(ctx, costs.alu)
    if op is Op.NOP:
        return _retire(ctx, costs.alu)
    if op is Op.WORK:
        return _retire(ctx, instr.a)
    if op is Op.WORKR:
        return _retire(ctx, max(regs[instr.a], 1))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    if op is Op.JMP:
        return _retire_to(ctx, instr.a, costs.branch)
    if op is Op.BEQ:
        taken = regs[instr.a] == regs[instr.b]
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BNE:
        taken = regs[instr.a] != regs[instr.b]
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BLT:
        taken = regs[instr.a] < regs[instr.b]
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BGE:
        taken = regs[instr.a] >= regs[instr.b]
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BEQI:
        taken = regs[instr.a] == instr.b
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BNEI:
        taken = regs[instr.a] != instr.b
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BLTI:
        taken = regs[instr.a] < instr.b
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.BGEI:
        taken = regs[instr.a] >= instr.b
        return _retire_to(ctx, instr.c if taken else ctx.pc + 1, costs.branch)
    if op is Op.CALL:
        ctx.call_stack.append(ctx.pc + 1)
        return _retire_to(ctx, instr.a, costs.branch)
    if op is Op.RET:
        if not ctx.call_stack:
            raise GuestFault(f"ret with empty call stack at pc {ctx.pc}", ctx.tid, ctx.pc)
        return _retire_to(ctx, ctx.call_stack.pop(), costs.branch)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    if op is Op.LOAD or op is Op.LOADG:
        addr = regs[instr.b] + instr.c if op is Op.LOAD else instr.b
        extra = engine.access_extra(ctx.tid, addr, False)
        regs[instr.a] = engine.mem.read(addr)
        engine.trace("read", ctx.tid, addr)
        return _retire(ctx, costs.mem + extra)
    if op is Op.STORE or op is Op.STOREG:
        addr = regs[instr.b] + instr.c if op is Op.STORE else instr.b
        extra = engine.access_extra(ctx.tid, addr, True)
        cow_before = engine.mem.cow_copies
        engine.mem.write(addr, regs[instr.a])
        extra += (engine.mem.cow_copies - cow_before) * costs.page_cow_copy
        engine.trace("write", ctx.tid, addr)
        return _retire(ctx, costs.mem + extra)

    # ------------------------------------------------------------------
    # Atomics (per-address order recorded and oracle-enforced; the race
    # detector sees each as an acquire/release pair, like seq_cst atomics)
    # ------------------------------------------------------------------
    if op is Op.FETCHADD:
        addr = regs[instr.b] + instr.c
        if not engine.sync.atomic_enter(ctx.tid, addr):
            engine.block(ctx, BlockedReason("atomic", (addr,)))
            return costs.atomic
        for tid in engine.sync.atomic_done(ctx.tid, addr):
            engine.wake_deferred(tid)
        extra = engine.access_extra(ctx.tid, addr, True)
        cow_before = engine.mem.cow_copies
        old = engine.mem.read(addr)
        engine.mem.write(addr, wrap_word(old + regs[instr.d]))
        extra += (engine.mem.cow_copies - cow_before) * costs.page_cow_copy
        regs[instr.a] = old
        engine.trace("read", ctx.tid, addr)
        engine.trace("write", ctx.tid, addr)
        engine.trace("release", ctx.tid, addr)
        return _retire(ctx, costs.atomic + extra)
    if op is Op.CAS:
        addr = regs[instr.b] + instr.c
        if not engine.sync.atomic_enter(ctx.tid, addr):
            engine.block(ctx, BlockedReason("atomic", (addr,)))
            return costs.atomic
        for tid in engine.sync.atomic_done(ctx.tid, addr):
            engine.wake_deferred(tid)
        extra = engine.access_extra(ctx.tid, addr, True)
        expect_reg, new_reg = instr.d
        cow_before = engine.mem.cow_copies
        old = engine.mem.read(addr)
        engine.trace("read", ctx.tid, addr)
        if old == regs[expect_reg]:
            engine.mem.write(addr, regs[new_reg])
            engine.trace("write", ctx.tid, addr)
            regs[instr.a] = 1
        else:
            regs[instr.a] = 0
        extra += (engine.mem.cow_copies - cow_before) * costs.page_cow_copy
        engine.trace("release", ctx.tid, addr)
        return _retire(ctx, costs.atomic + extra)
    if op is Op.XCHG:
        addr = regs[instr.b] + instr.c
        if not engine.sync.atomic_enter(ctx.tid, addr):
            engine.block(ctx, BlockedReason("atomic", (addr,)))
            return costs.atomic
        for tid in engine.sync.atomic_done(ctx.tid, addr):
            engine.wake_deferred(tid)
        extra = engine.access_extra(ctx.tid, addr, True)
        cow_before = engine.mem.cow_copies
        old = engine.mem.read(addr)
        engine.mem.write(addr, regs[instr.d])
        extra += (engine.mem.cow_copies - cow_before) * costs.page_cow_copy
        regs[instr.a] = old
        engine.trace("read", ctx.tid, addr)
        engine.trace("write", ctx.tid, addr)
        engine.trace("release", ctx.tid, addr)
        return _retire(ctx, costs.atomic + extra)

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    if op is Op.LOCK:
        addr = regs[instr.a]
        if engine.sync.acquire(ctx.tid, addr):
            return _retire(ctx, costs.sync)
        engine.block(ctx, BlockedReason("lock", (addr,)))
        return costs.sync
    if op is Op.UNLOCK:
        addr = regs[instr.a]
        engine.trace("release", ctx.tid, addr)
        for granted in engine.sync.release(ctx.tid, addr):
            engine.grant(granted, ("sync",))
        return _retire(ctx, costs.sync)
    if op is Op.BARRIER:
        addr = regs[instr.a]
        count = regs[instr.b]
        released = engine.sync.barrier_arrive(ctx.tid, addr, count)
        # Every participant — the completing arriver included — retires its
        # arrival via a grant on its next scheduling. If the completer
        # retired instantly, per-thread retired counts would depend on
        # arrival order, which epoch-boundary targets cannot express.
        engine.block(ctx, BlockedReason("barrier", (addr,)))
        if released:
            for tid in released:
                engine.trace("barrier", tid, addr)
            for tid in released:
                engine.grant(tid, ("sync",))
        return costs.sync
    if op is Op.CONDWAIT:
        cond_addr = regs[instr.a]
        mutex_addr = regs[instr.b]
        engine.trace("release", ctx.tid, mutex_addr)
        grants = engine.sync.cond_wait(ctx.tid, cond_addr, mutex_addr)
        for granted in grants:
            engine.grant(granted, ("sync",))
        engine.block(ctx, BlockedReason("cond", (cond_addr, mutex_addr)))
        return costs.sync
    if op is Op.CONDSIGNAL:
        cond_addr = regs[instr.a]
        engine.trace("release", ctx.tid, cond_addr)
        for granted in engine.sync.cond_signal(cond_addr):
            engine.grant(granted, ("sync",))
        return _retire(ctx, costs.sync)
    if op is Op.CONDBCAST:
        cond_addr = regs[instr.a]
        engine.trace("release", ctx.tid, cond_addr)
        for granted in engine.sync.cond_broadcast(cond_addr):
            engine.grant(granted, ("sync",))
        return _retire(ctx, costs.sync)
    if op is Op.SEMINIT:
        engine.sync.sem_init(regs[instr.a], regs[instr.b])
        return _retire(ctx, costs.sync)
    if op is Op.SEMWAIT:
        addr = regs[instr.a]
        if engine.sync.sem_wait(ctx.tid, addr):
            for granted in engine.sync.sem_drain(addr):
                engine.grant(granted, ("sync",))
            return _retire(ctx, costs.sync)
        engine.block(ctx, BlockedReason("sem", (addr,)))
        return costs.sync
    if op is Op.SEMPOST:
        addr = regs[instr.a]
        engine.trace("release", ctx.tid, addr)
        for granted in engine.sync.sem_post(addr):
            engine.grant(granted, ("sync",))
        return _retire(ctx, costs.sync)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    if op is Op.SPAWN:
        args = tuple(regs[r] for r in instr.c)
        child = engine.spawn_thread(ctx, instr.b, args)
        regs[instr.a] = child
        engine.trace("spawn", ctx.tid, child)
        return _retire(ctx, costs.spawn)
    if op is Op.JOIN:
        target = regs[instr.a]
        target_ctx = engine.contexts.get(target)
        if target_ctx is None:
            raise GuestFault(f"join on unknown thread {target}", ctx.tid, ctx.pc)
        if target_ctx.status == ThreadStatus.EXITED:
            engine.trace("join", ctx.tid, target)
            return _retire(ctx, costs.sync)
        engine.block(ctx, BlockedReason("join", (target,)))
        return costs.sync
    if op is Op.EXIT:
        ctx.status = ThreadStatus.EXITED
        ctx.retired += 1
        engine.trace("exit", ctx.tid, 0)
        engine.on_exit(ctx)
        return costs.alu

    # ------------------------------------------------------------------
    # Operating system
    # ------------------------------------------------------------------
    if op is Op.SYSCALL:
        kind: SyscallKind = instr.b
        args = tuple(regs[r] for r in instr.c)
        return _issue_syscall(engine, ctx, instr, kind, args)

    raise SimulationError(f"interpreter cannot execute opcode {op!r}")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _retire(ctx: ThreadContext, cost: int) -> int:
    ctx.pc += 1
    ctx.retired += 1
    return cost


def _retire_to(ctx: ThreadContext, target_pc: int, cost: int) -> int:
    ctx.pc = target_pc
    ctx.retired += 1
    return cost


def _issue_syscall(engine, ctx, instr, kind, args) -> int:
    costs = engine.costs
    extra = 0
    # Buffer-consuming calls read guest memory on the caller's behalf;
    # surface that to tracing and to access interceptors (CREW treats
    # kernel copies as accesses by the calling thread).
    if kind in (SyscallKind.WRITE, SyscallKind.SEND):
        for offset in range(args[2]):
            engine.trace("read", ctx.tid, args[1] + offset)
            extra += engine.access_extra(ctx.tid, args[1] + offset, False)
    cow_before = engine.mem.cow_copies
    outcome = engine.services.invoke(ctx, kind, args, engine.mem, engine.now)
    if isinstance(outcome, SyscallDone):
        for base, words in outcome.writes:
            for offset in range(len(words)):
                engine.trace("write", ctx.tid, base + offset)
                extra += engine.access_extra(ctx.tid, base + offset, True)
        ctx.registers[instr.a] = outcome.retval
        ctx.syscall_count += 1
        engine.trace("syscall", ctx.tid, 0)
        _retire(ctx, 0)
        cow_cost = (engine.mem.cow_copies - cow_before) * costs.page_cow_copy
        return (
            costs.syscall_base
            + outcome.transferred * costs.io_word
            + cow_cost
            + extra
        )
    engine.block(ctx, BlockedReason("syscall", (kind, args)))
    return costs.syscall_base


def _consume_grant(engine, ctx: ThreadContext) -> int:
    """Retire an op whose completion was granted while the thread was off-core."""
    grant = ctx.pending_grant
    costs = engine.costs
    instr = engine.program.fetch(ctx.pc)
    cost = costs.grant
    if grant[0] == "syscall":
        _, retval, writes, transferred = grant
        cow_before = engine.mem.cow_copies
        for base, words in writes:
            engine.mem.write_block(base, words)
            for offset in range(len(words)):
                engine.trace("write", ctx.tid, base + offset)
                cost += engine.access_extra(ctx.tid, base + offset, True)
        cost += (engine.mem.cow_copies - cow_before) * costs.page_cow_copy
        ctx.registers[instr.a] = retval
        engine.services_log_wakeup(ctx, instr.b, grant)
        ctx.syscall_count += 1
        engine.trace("syscall", ctx.tid, 0)
        cost += transferred * costs.io_word
    elif grant[0] == "join":
        engine.trace("join", ctx.tid, ctx.registers[instr.a])
    elif grant[0] == "sync" and ctx.tid in engine.inherited_grants:
        # Ownership was transferred by the execution this engine was
        # restored from; credit the acquisition to this run's log.
        engine.inherited_grants.discard(ctx.tid)
        engine.synthetic_acquisition(ctx, instr)
    # other "sync" grants have no effects here; the sync manager already
    # transferred ownership (and recorded the acquisition) when it granted.
    ctx.pending_grant = None
    ctx.blocked = None
    return _retire(ctx, cost)


def _resume_blocked(engine, ctx: ThreadContext) -> int:
    """Re-issue an op that was mid-block when its execution was checkpointed.

    Only engines that *inject* syscalls schedule threads in this state
    (see ``UniprocessorEngine.from_checkpoint``): a thread that was blocked
    in the kernel during the thread-parallel run completes here from the
    log. Join waits are also re-checked because join wakeups are driven by
    exit events, which may already have happened before the checkpoint.
    """
    reason = ctx.blocked
    if reason.kind == "atomic":
        # The thread's turn at this address has come: re-dispatch the op.
        ctx.blocked = None
        ctx.status = ThreadStatus.RUNNING
        return step(engine, ctx)
    if reason.kind == "syscall":
        kind, args = reason.detail
        instr = engine.program.fetch(ctx.pc)
        ctx.blocked = None
        ctx.status = ThreadStatus.RUNNING
        return _issue_syscall(engine, ctx, instr, kind, args)
    if reason.kind == "join":
        (target,) = reason.detail
        target_ctx = engine.contexts.get(target)
        if target_ctx is not None and target_ctx.status == ThreadStatus.EXITED:
            ctx.blocked = None
            engine.trace("join", ctx.tid, target)
            return _retire(ctx, engine.costs.sync)
        engine.block(ctx, reason)
        return engine.costs.sync
    raise SimulationError(
        f"thread {ctx.tid} scheduled while blocked on {reason.kind!r}"
    )
