"""The guest instruction interpreter.

``step(engine, ctx)`` executes exactly one instruction of ``ctx`` against
the engine's memory/sync/syscall services and returns its cycle cost. Both
execution engines call this same function, so guest semantics cannot drift
between the thread-parallel execution, the epoch-parallel execution and
replay — the property DoublePlay's correctness argument rests on.

Retirement discipline (the invariant everything else depends on):

* An instruction *retires* when all its effects are applied; ``ctx.retired``
  then increments. Epoch boundaries are retired-op counts, so effects must
  never leak out of an unretired op.
* A blocking op that cannot complete leaves ``pc`` and ``retired``
  untouched and parks the thread with a :class:`BlockedReason`.
* When another thread's action completes the op (lock grant, kernel
  wakeup, exit-for-join), the completion is stored in
  ``ctx.pending_grant`` and the op retires the next time the owning thread
  is scheduled — inside its own timeslice, which keeps uniprocessor
  schedule logs exact.

Dispatch is a per-:class:`Op` handler table (see DESIGN.md "Host
performance layer"): ``decode_program`` caches a ``(handler, instr)`` pair
per code index on the program image, so the engines' fetch+decode is one
tuple index. Every handler applies exactly the effects the historical
if/elif chain applied, in the same order — simulated costs, trace events
and fault messages are bit-identical.
"""

from __future__ import annotations

from repro.errors import AssemblerError, GuestFault, SimulationError
from repro.isa.context import BlockedReason, ThreadContext, ThreadStatus
from repro.isa.instructions import Instruction, Op
from repro.oskernel.syscalls import SyscallDone, SyscallKind

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_WRAP = 1 << 64


def decode_program(program) -> tuple:
    """The program's code as a ``(handler, instr)`` tuple, cached on the image.

    ``ProgramImage`` is a frozen dataclass shared by every engine that runs
    the program, so the decode happens once per image, not once per engine.
    """
    table = program.__dict__.get("_decoded")
    if table is None:
        handlers = _HANDLERS
        table = tuple(
            (handlers.get(instr.op, _op_unknown), instr) for instr in program.code
        )
        object.__setattr__(program, "_decoded", table)
    return table


def step(engine, ctx: ThreadContext) -> int:
    """Execute one instruction (or consume a pending grant); returns cycles."""
    if ctx.blocked is None:
        # Asynchronous signal delivery happens at a clean op boundary:
        # delivery (push return pc, jump to handler) plus the handler's
        # first instruction form one step, so the thread's retired count
        # uniquely identifies the delivery point for record and replay.
        # Delivery is checked before grant consumption — a signal that
        # fired while the grant was in flight interposes its handler
        # first, as it did in the recorded execution.
        if engine.injected_signals or ctx.pending_signals:
            handler_pc = engine.next_signal(ctx)
            if handler_pc is not None:
                ctx.call_stack.append(ctx.pc)
                ctx.pc = handler_pc
                engine.trace("signal", ctx.tid, handler_pc)
                table = engine.decoded
                pc = ctx.pc
                if 0 <= pc < len(table):
                    pair = table[pc]
                    return pair[0](engine, ctx, pair[1])
                raise AssemblerError(
                    f"pc {pc} outside program of {len(table)} instructions"
                )
        if ctx.pending_grant is not None:
            return _consume_grant(engine, ctx)
        table = engine.decoded
        pc = ctx.pc
        if 0 <= pc < len(table):
            pair = table[pc]
            return pair[0](engine, ctx, pair[1])
        raise AssemblerError(f"pc {pc} outside program of {len(table)} instructions")
    if ctx.pending_grant is not None:
        return _consume_grant(engine, ctx)
    return _resume_blocked(engine, ctx)


def _dispatch(engine, ctx: ThreadContext, instr: Instruction) -> int:
    """Execute exactly the instruction ``instr`` for ``ctx``."""
    return _HANDLERS.get(instr.op, _op_unknown)(engine, ctx, instr)


# ----------------------------------------------------------------------
# ALU
# ----------------------------------------------------------------------
def _op_li(engine, ctx, instr):
    value = instr.b & _MASK
    ctx.registers[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_mov(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = regs[instr.b]
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_add(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] + regs[instr.c]) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_sub(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] - regs[instr.c]) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_mul(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] * regs[instr.c]) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_div(engine, ctx, instr):
    regs = ctx.registers
    divisor = regs[instr.c]
    if divisor == 0:
        raise GuestFault(f"division by zero at pc {ctx.pc}", ctx.tid, ctx.pc)
    value = (regs[instr.b] // divisor) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_mod(engine, ctx, instr):
    regs = ctx.registers
    divisor = regs[instr.c]
    if divisor == 0:
        raise GuestFault(f"division by zero at pc {ctx.pc}", ctx.tid, ctx.pc)
    value = (regs[instr.b] % divisor) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_and(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = regs[instr.b] & regs[instr.c]
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_or(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = regs[instr.b] | regs[instr.c]
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_xor(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = regs[instr.b] ^ regs[instr.c]
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_addi(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] + instr.c) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_muli(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] * instr.c) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_shli(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] << instr.c) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_shri(engine, ctx, instr):
    regs = ctx.registers
    value = (regs[instr.b] >> instr.c) & _MASK
    regs[instr.a] = value - _WRAP if value & _SIGN else value
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_slt(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = 1 if regs[instr.b] < regs[instr.c] else 0
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_slti(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = 1 if regs[instr.b] < instr.c else 0
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_seq(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = 1 if regs[instr.b] == regs[instr.c] else 0
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_seqi(engine, ctx, instr):
    regs = ctx.registers
    regs[instr.a] = 1 if regs[instr.b] == instr.c else 0
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_tid(engine, ctx, instr):
    ctx.registers[instr.a] = ctx.tid
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_nop(engine, ctx, instr):
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.alu


def _op_work(engine, ctx, instr):
    ctx.pc += 1
    ctx.retired += 1
    return instr.a


def _op_workr(engine, ctx, instr):
    cost = ctx.registers[instr.a]
    ctx.pc += 1
    ctx.retired += 1
    return cost if cost > 1 else 1


# ----------------------------------------------------------------------
# Control flow
# ----------------------------------------------------------------------
def _op_jmp(engine, ctx, instr):
    ctx.pc = instr.a
    ctx.retired += 1
    return engine.costs.branch


def _op_beq(engine, ctx, instr):
    regs = ctx.registers
    if regs[instr.a] == regs[instr.b]:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_bne(engine, ctx, instr):
    regs = ctx.registers
    if regs[instr.a] != regs[instr.b]:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_blt(engine, ctx, instr):
    regs = ctx.registers
    if regs[instr.a] < regs[instr.b]:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_bge(engine, ctx, instr):
    regs = ctx.registers
    if regs[instr.a] >= regs[instr.b]:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_beqi(engine, ctx, instr):
    if ctx.registers[instr.a] == instr.b:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_bnei(engine, ctx, instr):
    if ctx.registers[instr.a] != instr.b:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_blti(engine, ctx, instr):
    if ctx.registers[instr.a] < instr.b:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_bgei(engine, ctx, instr):
    if ctx.registers[instr.a] >= instr.b:
        ctx.pc = instr.c
    else:
        ctx.pc += 1
    ctx.retired += 1
    return engine.costs.branch


def _op_call(engine, ctx, instr):
    ctx.call_stack.append(ctx.pc + 1)
    ctx.pc = instr.a
    ctx.retired += 1
    return engine.costs.branch


def _op_ret(engine, ctx, instr):
    if not ctx.call_stack:
        raise GuestFault(f"ret with empty call stack at pc {ctx.pc}", ctx.tid, ctx.pc)
    ctx.pc = ctx.call_stack.pop()
    ctx.retired += 1
    return engine.costs.branch


# ----------------------------------------------------------------------
# Memory
# ----------------------------------------------------------------------
def _op_load(engine, ctx, instr):
    regs = ctx.registers
    addr = regs[instr.b] + instr.c
    interceptor = engine.access_interceptor
    extra = 0 if interceptor is None else interceptor(ctx.tid, addr, False)
    regs[instr.a] = engine.mem.read(addr)
    if engine.observers:
        engine.trace("read", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.mem + extra


def _op_loadg(engine, ctx, instr):
    addr = instr.b
    interceptor = engine.access_interceptor
    extra = 0 if interceptor is None else interceptor(ctx.tid, addr, False)
    ctx.registers[instr.a] = engine.mem.read(addr)
    if engine.observers:
        engine.trace("read", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.mem + extra


def _op_store(engine, ctx, instr):
    regs = ctx.registers
    addr = regs[instr.b] + instr.c
    interceptor = engine.access_interceptor
    extra = 0 if interceptor is None else interceptor(ctx.tid, addr, True)
    mem = engine.mem
    cow_before = mem.cow_copies
    mem.write(addr, regs[instr.a])
    if mem.cow_copies != cow_before:
        extra += (mem.cow_copies - cow_before) * engine.costs.page_cow_copy
    if engine.observers:
        engine.trace("write", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.mem + extra


def _op_storeg(engine, ctx, instr):
    addr = instr.b
    interceptor = engine.access_interceptor
    extra = 0 if interceptor is None else interceptor(ctx.tid, addr, True)
    mem = engine.mem
    cow_before = mem.cow_copies
    mem.write(addr, ctx.registers[instr.a])
    if mem.cow_copies != cow_before:
        extra += (mem.cow_copies - cow_before) * engine.costs.page_cow_copy
    if engine.observers:
        engine.trace("write", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.mem + extra


# ----------------------------------------------------------------------
# Atomics (per-address order recorded and oracle-enforced; the race
# detector sees each as an acquire/release pair, like seq_cst atomics)
# ----------------------------------------------------------------------
def _op_fetchadd(engine, ctx, instr):
    regs = ctx.registers
    addr = regs[instr.b] + instr.c
    costs = engine.costs
    if not engine.sync.atomic_enter(ctx.tid, addr):
        engine.block(ctx, BlockedReason("atomic", (addr,)))
        return costs.atomic
    for tid in engine.sync.atomic_done(ctx.tid, addr):
        engine.wake_deferred(tid)
    extra = engine.access_extra(ctx.tid, addr, True)
    mem = engine.mem
    cow_before = mem.cow_copies
    old = mem.read(addr)
    value = (old + regs[instr.d]) & _MASK
    mem.write(addr, value - _WRAP if value & _SIGN else value)
    extra += (mem.cow_copies - cow_before) * costs.page_cow_copy
    regs[instr.a] = old
    if engine.observers:
        engine.trace("read", ctx.tid, addr)
        engine.trace("write", ctx.tid, addr)
        engine.trace("release", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return costs.atomic + extra


def _op_cas(engine, ctx, instr):
    regs = ctx.registers
    addr = regs[instr.b] + instr.c
    costs = engine.costs
    if not engine.sync.atomic_enter(ctx.tid, addr):
        engine.block(ctx, BlockedReason("atomic", (addr,)))
        return costs.atomic
    for tid in engine.sync.atomic_done(ctx.tid, addr):
        engine.wake_deferred(tid)
    extra = engine.access_extra(ctx.tid, addr, True)
    expect_reg, new_reg = instr.d
    mem = engine.mem
    cow_before = mem.cow_copies
    old = mem.read(addr)
    engine.trace("read", ctx.tid, addr)
    if old == regs[expect_reg]:
        mem.write(addr, regs[new_reg])
        engine.trace("write", ctx.tid, addr)
        regs[instr.a] = 1
    else:
        regs[instr.a] = 0
    extra += (mem.cow_copies - cow_before) * costs.page_cow_copy
    engine.trace("release", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return costs.atomic + extra


def _op_xchg(engine, ctx, instr):
    regs = ctx.registers
    addr = regs[instr.b] + instr.c
    costs = engine.costs
    if not engine.sync.atomic_enter(ctx.tid, addr):
        engine.block(ctx, BlockedReason("atomic", (addr,)))
        return costs.atomic
    for tid in engine.sync.atomic_done(ctx.tid, addr):
        engine.wake_deferred(tid)
    extra = engine.access_extra(ctx.tid, addr, True)
    mem = engine.mem
    cow_before = mem.cow_copies
    old = mem.read(addr)
    mem.write(addr, regs[instr.d])
    extra += (mem.cow_copies - cow_before) * costs.page_cow_copy
    regs[instr.a] = old
    if engine.observers:
        engine.trace("read", ctx.tid, addr)
        engine.trace("write", ctx.tid, addr)
        engine.trace("release", ctx.tid, addr)
    ctx.pc += 1
    ctx.retired += 1
    return costs.atomic + extra


# ----------------------------------------------------------------------
# Synchronisation
# ----------------------------------------------------------------------
def _op_lock(engine, ctx, instr):
    addr = ctx.registers[instr.a]
    if engine.sync.acquire(ctx.tid, addr):
        ctx.pc += 1
        ctx.retired += 1
        return engine.costs.sync
    engine.block(ctx, BlockedReason("lock", (addr,)))
    return engine.costs.sync


def _op_unlock(engine, ctx, instr):
    addr = ctx.registers[instr.a]
    engine.trace("release", ctx.tid, addr)
    for granted in engine.sync.release(ctx.tid, addr):
        engine.grant(granted, ("sync",))
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.sync


def _op_barrier(engine, ctx, instr):
    regs = ctx.registers
    addr = regs[instr.a]
    count = regs[instr.b]
    released = engine.sync.barrier_arrive(ctx.tid, addr, count)
    # Every participant — the completing arriver included — retires its
    # arrival via a grant on its next scheduling. If the completer
    # retired instantly, per-thread retired counts would depend on
    # arrival order, which epoch-boundary targets cannot express.
    engine.block(ctx, BlockedReason("barrier", (addr,)))
    if released:
        for tid in released:
            engine.trace("barrier", tid, addr)
        for tid in released:
            engine.grant(tid, ("sync",))
    return engine.costs.sync


def _op_condwait(engine, ctx, instr):
    regs = ctx.registers
    cond_addr = regs[instr.a]
    mutex_addr = regs[instr.b]
    engine.trace("release", ctx.tid, mutex_addr)
    grants = engine.sync.cond_wait(ctx.tid, cond_addr, mutex_addr)
    for granted in grants:
        engine.grant(granted, ("sync",))
    engine.block(ctx, BlockedReason("cond", (cond_addr, mutex_addr)))
    return engine.costs.sync


def _op_condsignal(engine, ctx, instr):
    cond_addr = ctx.registers[instr.a]
    engine.trace("release", ctx.tid, cond_addr)
    for granted in engine.sync.cond_signal(cond_addr):
        engine.grant(granted, ("sync",))
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.sync


def _op_condbcast(engine, ctx, instr):
    cond_addr = ctx.registers[instr.a]
    engine.trace("release", ctx.tid, cond_addr)
    for granted in engine.sync.cond_broadcast(cond_addr):
        engine.grant(granted, ("sync",))
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.sync


def _op_seminit(engine, ctx, instr):
    regs = ctx.registers
    engine.sync.sem_init(regs[instr.a], regs[instr.b])
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.sync


def _op_semwait(engine, ctx, instr):
    addr = ctx.registers[instr.a]
    if engine.sync.sem_wait(ctx.tid, addr):
        for granted in engine.sync.sem_drain(addr):
            engine.grant(granted, ("sync",))
        ctx.pc += 1
        ctx.retired += 1
        return engine.costs.sync
    engine.block(ctx, BlockedReason("sem", (addr,)))
    return engine.costs.sync


def _op_sempost(engine, ctx, instr):
    addr = ctx.registers[instr.a]
    engine.trace("release", ctx.tid, addr)
    for granted in engine.sync.sem_post(addr):
        engine.grant(granted, ("sync",))
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.sync


# ----------------------------------------------------------------------
# Threads
# ----------------------------------------------------------------------
def _op_spawn(engine, ctx, instr):
    regs = ctx.registers
    args = tuple(regs[r] for r in instr.c)
    child = engine.spawn_thread(ctx, instr.b, args)
    regs[instr.a] = child
    engine.trace("spawn", ctx.tid, child)
    ctx.pc += 1
    ctx.retired += 1
    return engine.costs.spawn


def _op_join(engine, ctx, instr):
    target = ctx.registers[instr.a]
    target_ctx = engine.contexts.get(target)
    if target_ctx is None:
        raise GuestFault(f"join on unknown thread {target}", ctx.tid, ctx.pc)
    if target_ctx.status == ThreadStatus.EXITED:
        engine.trace("join", ctx.tid, target)
        ctx.pc += 1
        ctx.retired += 1
        return engine.costs.sync
    engine.block(ctx, BlockedReason("join", (target,)))
    return engine.costs.sync


def _op_exit(engine, ctx, instr):
    ctx.status = ThreadStatus.EXITED
    ctx.retired += 1
    engine.trace("exit", ctx.tid, 0)
    engine.on_exit(ctx)
    return engine.costs.alu


# ----------------------------------------------------------------------
# Operating system
# ----------------------------------------------------------------------
def _op_syscall(engine, ctx, instr):
    regs = ctx.registers
    args = tuple(regs[r] for r in instr.c)
    return _issue_syscall(engine, ctx, instr, instr.b, args)


def _op_unknown(engine, ctx, instr):
    raise SimulationError(f"interpreter cannot execute opcode {instr.op!r}")


_HANDLERS = {
    Op.LI: _op_li,
    Op.MOV: _op_mov,
    Op.ADD: _op_add,
    Op.SUB: _op_sub,
    Op.MUL: _op_mul,
    Op.DIV: _op_div,
    Op.MOD: _op_mod,
    Op.AND: _op_and,
    Op.OR: _op_or,
    Op.XOR: _op_xor,
    Op.ADDI: _op_addi,
    Op.MULI: _op_muli,
    Op.SHLI: _op_shli,
    Op.SHRI: _op_shri,
    Op.SLT: _op_slt,
    Op.SLTI: _op_slti,
    Op.SEQ: _op_seq,
    Op.SEQI: _op_seqi,
    Op.TID: _op_tid,
    Op.NOP: _op_nop,
    Op.WORK: _op_work,
    Op.WORKR: _op_workr,
    Op.JMP: _op_jmp,
    Op.BEQ: _op_beq,
    Op.BNE: _op_bne,
    Op.BLT: _op_blt,
    Op.BGE: _op_bge,
    Op.BEQI: _op_beqi,
    Op.BNEI: _op_bnei,
    Op.BLTI: _op_blti,
    Op.BGEI: _op_bgei,
    Op.CALL: _op_call,
    Op.RET: _op_ret,
    Op.LOAD: _op_load,
    Op.LOADG: _op_loadg,
    Op.STORE: _op_store,
    Op.STOREG: _op_storeg,
    Op.FETCHADD: _op_fetchadd,
    Op.CAS: _op_cas,
    Op.XCHG: _op_xchg,
    Op.LOCK: _op_lock,
    Op.UNLOCK: _op_unlock,
    Op.BARRIER: _op_barrier,
    Op.CONDWAIT: _op_condwait,
    Op.CONDSIGNAL: _op_condsignal,
    Op.CONDBCAST: _op_condbcast,
    Op.SEMINIT: _op_seminit,
    Op.SEMWAIT: _op_semwait,
    Op.SEMPOST: _op_sempost,
    Op.SPAWN: _op_spawn,
    Op.JOIN: _op_join,
    Op.EXIT: _op_exit,
    Op.SYSCALL: _op_syscall,
}


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _retire(ctx: ThreadContext, cost: int) -> int:
    ctx.pc += 1
    ctx.retired += 1
    return cost


def _retire_to(ctx: ThreadContext, target_pc: int, cost: int) -> int:
    ctx.pc = target_pc
    ctx.retired += 1
    return cost


def _issue_syscall(engine, ctx, instr, kind, args) -> int:
    costs = engine.costs
    extra = 0
    # Buffer-consuming calls read guest memory on the caller's behalf;
    # surface that to tracing and to access interceptors (CREW treats
    # kernel copies as accesses by the calling thread). When neither is
    # installed the per-word loop has no observable effect and is skipped.
    track = engine.observers or engine.access_interceptor is not None
    if track and kind in (SyscallKind.WRITE, SyscallKind.SEND):
        base = args[1]
        for offset in range(args[2]):
            engine.trace("read", ctx.tid, base + offset)
            extra += engine.access_extra(ctx.tid, base + offset, False)
    mem = engine.mem
    cow_before = mem.cow_copies
    outcome = engine.services.invoke(ctx, kind, args, mem, engine.now)
    if isinstance(outcome, SyscallDone):
        if track:
            for base, words in outcome.writes:
                for offset in range(len(words)):
                    engine.trace("write", ctx.tid, base + offset)
                    extra += engine.access_extra(ctx.tid, base + offset, True)
        ctx.registers[instr.a] = outcome.retval
        ctx.syscall_count += 1
        engine.trace("syscall", ctx.tid, 0)
        ctx.pc += 1
        ctx.retired += 1
        return (
            costs.syscall_base
            + outcome.transferred * costs.io_word
            + (mem.cow_copies - cow_before) * costs.page_cow_copy
            + extra
        )
    engine.block(ctx, BlockedReason("syscall", (kind, args)))
    return costs.syscall_base


def _consume_grant(engine, ctx: ThreadContext) -> int:
    """Retire an op whose completion was granted while the thread was off-core."""
    grant = ctx.pending_grant
    costs = engine.costs
    instr = engine.program.fetch(ctx.pc)
    cost = costs.grant
    if grant[0] == "syscall":
        _, retval, writes, transferred = grant
        mem = engine.mem
        cow_before = mem.cow_copies
        track = engine.observers or engine.access_interceptor is not None
        for base, words in writes:
            mem.write_block(base, words)
            if track:
                for offset in range(len(words)):
                    engine.trace("write", ctx.tid, base + offset)
                    cost += engine.access_extra(ctx.tid, base + offset, True)
        cost += (mem.cow_copies - cow_before) * costs.page_cow_copy
        ctx.registers[instr.a] = retval
        engine.services_log_wakeup(ctx, instr.b, grant)
        ctx.syscall_count += 1
        engine.trace("syscall", ctx.tid, 0)
        cost += transferred * costs.io_word
    elif grant[0] == "join":
        engine.trace("join", ctx.tid, ctx.registers[instr.a])
    elif grant[0] == "sync" and ctx.tid in engine.inherited_grants:
        # Ownership was transferred by the execution this engine was
        # restored from; credit the acquisition to this run's log.
        engine.inherited_grants.discard(ctx.tid)
        engine.synthetic_acquisition(ctx, instr)
    # other "sync" grants have no effects here; the sync manager already
    # transferred ownership (and recorded the acquisition) when it granted.
    ctx.pending_grant = None
    ctx.blocked = None
    return _retire(ctx, cost)


def _resume_blocked(engine, ctx: ThreadContext) -> int:
    """Re-issue an op that was mid-block when its execution was checkpointed.

    Only engines that *inject* syscalls schedule threads in this state
    (see ``UniprocessorEngine.from_checkpoint``): a thread that was blocked
    in the kernel during the thread-parallel run completes here from the
    log. Join waits are also re-checked because join wakeups are driven by
    exit events, which may already have happened before the checkpoint.
    """
    reason = ctx.blocked
    if reason.kind == "atomic":
        # The thread's turn at this address has come: re-dispatch the op.
        ctx.blocked = None
        ctx.status = ThreadStatus.RUNNING
        return step(engine, ctx)
    if reason.kind == "syscall":
        kind, args = reason.detail
        instr = engine.program.fetch(ctx.pc)
        ctx.blocked = None
        ctx.status = ThreadStatus.RUNNING
        return _issue_syscall(engine, ctx, instr, kind, args)
    if reason.kind == "join":
        (target,) = reason.detail
        target_ctx = engine.contexts.get(target)
        if target_ctx is not None and target_ctx.status == ThreadStatus.EXITED:
            ctx.blocked = None
            engine.trace("join", ctx.tid, target)
            return _retire(ctx, engine.costs.sync)
        engine.block(ctx, reason)
        return engine.costs.sync
    raise SimulationError(
        f"thread {ctx.tid} scheduled while blocked on {reason.kind!r}"
    )
