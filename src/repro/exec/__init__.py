"""Execution engines for guest programs.

Two engines share one interpreter (so op semantics are identical, which is
what makes replay exact):

* :class:`~repro.exec.multicore.MulticoreEngine` — discrete-event
  multiprocessor execution; ops from different cores interleave in
  simulated-time order (sequential consistency). Used by native runs,
  DoublePlay's thread-parallel execution, and the recording baselines.
* :class:`~repro.exec.uniprocessor.UniprocessorEngine` — all threads
  timesliced on one core. In *capture* mode it records the timeslice
  schedule (DoublePlay's epoch-parallel execution); in *enforce* mode it
  follows a previously captured schedule exactly (replay).

Syscall personalities come from :mod:`repro.exec.services`: live kernel
with logging, or injection from a log.
"""

from repro.exec.multicore import MulticoreEngine
from repro.exec.uniprocessor import UniprocessorEngine, EpochOutcome
from repro.exec.services import LiveSyscalls, InjectedSyscalls
from repro.exec.trace import TraceObserver, TraceEvent

__all__ = [
    "MulticoreEngine",
    "UniprocessorEngine",
    "EpochOutcome",
    "LiveSyscalls",
    "InjectedSyscalls",
    "TraceObserver",
    "TraceEvent",
]
