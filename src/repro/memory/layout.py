"""Guest memory layout constants.

Memory is word addressed (one guest word = one Python int, wrapped to 64
bits by the interpreter). Page 0 is never mapped so that address 0 behaves
like a null pointer and faults.
"""

from __future__ import annotations

#: Words per page. Small enough that partial sharing shows up in the CREW
#: baseline, large enough that copy-on-write bookkeeping stays cheap.
PAGE_WORDS = 64

#: PAGE_WORDS is a power of two so hot paths can use shift/mask arithmetic
#: (``addr >> PAGE_SHIFT`` / ``addr & PAGE_OFFSET_MASK``), which matches
#: floor division / modulo for negative addresses too.
if PAGE_WORDS & (PAGE_WORDS - 1):
    raise ValueError("PAGE_WORDS must be a power of two")
PAGE_SHIFT = PAGE_WORDS.bit_length() - 1
PAGE_OFFSET_MASK = PAGE_WORDS - 1

#: First address the assembler hands out for global data (start of page 1).
DATA_BASE = PAGE_WORDS

#: Mask/wrap width of a guest word.
WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1
WORD_SIGN = 1 << (WORD_BITS - 1)


def page_of(addr: int) -> int:
    """Page number containing word address ``addr``."""
    return addr // PAGE_WORDS


def offset_of(addr: int) -> int:
    """Offset of ``addr`` within its page."""
    return addr % PAGE_WORDS


def wrap_word(value: int) -> int:
    """Wrap an arbitrary int to a signed 64-bit guest word."""
    value &= WORD_MASK
    if value & WORD_SIGN:
        value -= 1 << WORD_BITS
    return value
