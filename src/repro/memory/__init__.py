"""Guest memory: paged, word-addressed, with copy-on-write snapshots.

Snapshots are the mechanism behind DoublePlay checkpoints: the
thread-parallel execution snapshots its address space at each epoch
boundary, and every epoch-parallel executor materialises a private
copy-on-write view of its start checkpoint, so concurrent epochs operate on
different copies of memory exactly as the paper describes. Per-page cached
hashing makes the epoch-boundary divergence check proportional to the
number of pages, not words.
"""

from repro.memory.layout import PAGE_WORDS, DATA_BASE, page_of, offset_of
from repro.memory.page import Page
from repro.memory.address_space import AddressSpace, MemorySnapshot
from repro.memory.hashing import fnv1a_words, combine_hashes

__all__ = [
    "PAGE_WORDS",
    "DATA_BASE",
    "page_of",
    "offset_of",
    "Page",
    "AddressSpace",
    "MemorySnapshot",
    "fnv1a_words",
    "combine_hashes",
]
