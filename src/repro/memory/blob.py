"""Content-addressed wire blobs for guest state.

The host fan-out layer (``repro.host``) ships guest pages and shared log
objects to worker processes by *content address*: a blob is a small,
deterministic byte encoding of one object, its digest is a 128-bit
BLAKE2b of those bytes, and anything already cached under its digest on
the far side never crosses the wire again.

Two requirements shape the encoding:

* **Exactness.** Guest words may be stored signed (``wrap_word``) or
  unsigned (the interpreter masks with ``2**64 - 1``), and ``-1`` versus
  ``2**64 - 1`` are *different* page contents (``words ==`` distinguishes
  them even though the FNV page hash wraps both the same way). The
  encoding therefore tags each page blob: a raw little-endian ``<NQ``
  pack when every word fits ``[0, 2**64)`` (the overwhelmingly common
  case), and an exact pickle otherwise. Two pages share a digest iff
  their ``words`` lists compare equal under the same representation.

* **Stability within a run.** Digests live only on the wire and in
  worker caches — they are never stored in recordings — so the scheme
  may evolve freely between versions, but must be a pure function of
  content within one coordinator lifetime. BLAKE2b-128 keeps accidental
  collisions out of reach (the page hash used for divergence *checking*
  stays the pinned FNV fold in :mod:`repro.memory.hashing`).

Deliberately free of :class:`~repro.memory.page.Page` imports: decoding a
page blob yields the word list and the caller builds the ``Page``, so the
page module can use these helpers without a cycle.
"""

from __future__ import annotations

import pickle
import struct
from hashlib import blake2b
from typing import List, Tuple

from repro.memory.layout import PAGE_WORDS

#: page whose words all fit an unsigned 64-bit struct pack
TAG_PAGE_RAW = b"\x01"
#: page with out-of-range words (negative / huge), pickled exactly
TAG_PAGE_WIDE = b"\x02"
#: arbitrary pickled python object (log tuples, hint tuples, programs)
TAG_OBJECT = b"\x03"

_PAGE_STRUCT = struct.Struct("<%dQ" % PAGE_WORDS)
_U64_MAX = (1 << 64) - 1

#: digest width in bytes; 128 bits keeps birthday collisions negligible
DIGEST_BYTES = 16


def blob_digest(blob: bytes) -> int:
    """Content address of a blob: BLAKE2b-128 of its exact bytes."""
    return int.from_bytes(blake2b(blob, digest_size=DIGEST_BYTES).digest(), "big")


def encode_page_words(words: List[int]) -> bytes:
    """Deterministic byte encoding of one page's word list."""
    try:
        return TAG_PAGE_RAW + _PAGE_STRUCT.pack(*words)
    except struct.error:
        # Signed or >64-bit words: fall back to an exact representation.
        return TAG_PAGE_WIDE + pickle.dumps(tuple(words), protocol=4)


def encode_object(obj) -> bytes:
    """Byte encoding of a shared wire object (logs, hints, programs)."""
    return TAG_OBJECT + pickle.dumps(obj, protocol=4)


def decode_blob(blob: bytes) -> Tuple[str, object]:
    """Decode a blob to ``("page", words)`` or ``("object", obj)``."""
    tag = blob[:1]
    if tag == TAG_PAGE_RAW:
        return "page", list(_PAGE_STRUCT.unpack_from(blob, 1))
    if tag == TAG_PAGE_WIDE:
        return "page", list(pickle.loads(blob[1:]))
    if tag == TAG_OBJECT:
        return "object", pickle.loads(blob[1:])
    raise ValueError(f"unknown blob tag {tag!r}")
