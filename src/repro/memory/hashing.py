"""Stable content hashing for guest memory.

Python's built-in ``hash`` is salted for strings and unstable across
interpreter versions; recordings store state hashes, so we use an explicit
FNV-1a fold over 64-bit-wrapped words instead. The same functions hash
pages, whole address spaces, thread contexts and kernel digests, so every
"states equal?" question in the library is answered consistently.
"""

from __future__ import annotations

from typing import Iterable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_words(words: Iterable[int], seed: int = _FNV_OFFSET) -> int:
    """FNV-1a over a sequence of integers (each wrapped to 64 bits)."""
    value = seed
    prime = _FNV_PRIME
    mask = _MASK64
    for word in words:
        value = ((value ^ (word & mask)) * prime) & mask
    return value


def combine_hashes(parts: Iterable[int]) -> int:
    """Order-sensitive combination of already-computed 64-bit hashes."""
    return fnv1a_words(parts, seed=0x9E3779B97F4A7C15)


def fold_page_table(pages, sorted_keys=None) -> int:
    """Hash a ``{page_no: Page}`` table in sorted page order.

    Bit-identical to ``combine_hashes`` over the interleaved
    ``(page_no, page.content_hash())`` sequence — recordings store these
    digests, so the fold must never change. ``sorted_keys`` lets callers
    that cache the sorted page list skip the re-sort.
    """
    if sorted_keys is None:
        sorted_keys = sorted(pages)
    value = 0x9E3779B97F4A7C15
    prime = _FNV_PRIME
    mask = _MASK64
    for page_no in sorted_keys:
        value = ((value ^ (page_no & mask)) * prime) & mask
        value = ((value ^ (pages[page_no].content_hash() & mask)) * prime) & mask
    return value


def hash_structure(obj) -> int:
    """Hash nested tuples/lists/dicts/ints/strs deterministically.

    Used for kernel digests and thread-context comparison, where the state
    is plain data but not flat. Dicts are folded in sorted-key order.
    """
    # The int and tuple/list cases inline their folds (bit-identical to
    # fnv1a_words/combine_hashes) — context digests hash thousands of
    # nested ints per epoch comparison.
    if isinstance(obj, bool):
        return fnv1a_words([3 if obj else 5])
    if isinstance(obj, int):
        value = ((_FNV_OFFSET ^ (obj & _MASK64)) * _FNV_PRIME) & _MASK64
        return ((value ^ 0x11) * _FNV_PRIME) & _MASK64
    if obj is None:
        return fnv1a_words([0x71AF, 0x13])
    if isinstance(obj, str):
        return fnv1a_words(obj.encode(), seed=0x811C9DC5)
    if isinstance(obj, (tuple, list)):
        prime = _FNV_PRIME
        mask = _MASK64
        value = ((0x9E3779B97F4A7C15 ^ 0x7E57) * prime) & mask
        value = ((value ^ len(obj)) * prime) & mask
        for x in obj:
            value = ((value ^ hash_structure(x)) * prime) & mask
        return value
    if isinstance(obj, dict):
        parts = [0xD1C7, len(obj)]
        for key in sorted(obj, key=repr):
            parts.append(hash_structure(key))
            parts.append(hash_structure(obj[key]))
        return combine_hashes(parts)
    if isinstance(obj, frozenset):
        return combine_hashes(sorted(hash_structure(x) for x in obj))
    raise TypeError(f"cannot hash structure of type {type(obj).__name__}")
