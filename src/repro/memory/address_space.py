"""Address spaces and copy-on-write snapshots.

An :class:`AddressSpace` is the live memory of one execution. Taking a
:class:`MemorySnapshot` is O(pages): both sides keep referencing the same
:class:`~repro.memory.page.Page` objects, and the first write to a shared
page clones it. ``cow_copies`` and ``dirty`` bookkeeping feed the
checkpoint cost model (checkpoint cost in DoublePlay is dominated by the
pages dirtied per epoch).

Host performance layer (see DESIGN.md "Host performance layer"):

* a one-entry software TLB per direction caches the last page touched so
  the common sequential access hits a list index instead of a dict lookup;
* the space hash is a cached fold over a cached sorted page list, so
  ``content_hash()`` after an epoch costs O(dirty pages) page re-hashes
  plus one fold instead of a full re-sort + re-hash of every page.

Invariants: the write TLB may only cache a page that is private
(``refs == 1``), already in ``dirty``, and content-cache-invalidated
(both the FNV hash and the wire-blob digest) — then a TLB-hit store can
skip all bookkeeping. Any operation that breaks one of those assumptions
(snapshotting, draining the dirty set, or reading page hashes) must
flush the write TLB first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import GuestFault
from repro.memory.hashing import fold_page_table
from repro.memory.layout import PAGE_OFFSET_MASK, PAGE_SHIFT, PAGE_WORDS, page_of
from repro.memory.page import Page


class MemorySnapshot:
    """An immutable point-in-time view of an address space.

    Holds page references (not copies). Call :meth:`release` when the
    snapshot is discarded so that pages it pinned stop triggering
    copy-on-write in live spaces; forgetting to release is safe but makes
    later writes copy more than necessary.
    """

    __slots__ = ("_pages", "_hash", "_sorted", "_digests", "_released")

    def __init__(
        self,
        pages: Dict[int, Page],
        sorted_keys: Optional[List[int]] = None,
    ):
        self._pages = pages
        self._hash: Optional[int] = None
        self._sorted = sorted_keys
        self._digests: Optional[Dict[int, int]] = None
        self._released = False

    @property
    def pages(self) -> Dict[int, Page]:
        return self._pages

    def page_count(self) -> int:
        return len(self._pages)

    def read(self, addr: int) -> int:
        """Read a word from the snapshot (used by tests and diffing)."""
        page = self._pages.get(page_of(addr))
        if page is None:
            raise GuestFault(f"snapshot read from unmapped address {addr}")
        return page.words[addr & PAGE_OFFSET_MASK]

    def content_hash(self) -> int:
        """Stable hash of the full snapshot contents."""
        if self._hash is None:
            if self._sorted is None:
                self._sorted = sorted(self._pages)
            self._hash = fold_page_table(self._pages, self._sorted)
        return self._hash

    def page_digest_table(self) -> Dict[int, int]:
        """``{page_no: wire digest}`` for every page (cached).

        This is the skeleton form of the snapshot on the content-addressed
        wire: the table names the contents, the page bytes travel (at most
        once per worker) as separate blobs. Snapshots are immutable, so
        the table is computed once; the per-page ``wire_blob`` caches make
        it O(dirty pages) for the next checkpoint of the same execution.
        """
        if self._digests is None:
            self._digests = {
                no: page.wire_blob()[0] for no, page in self._pages.items()
            }
        return self._digests

    def release(self) -> None:
        """Drop the snapshot's pins on shared pages (idempotent)."""
        if self._released:
            return
        for page in self._pages.values():
            page.refs -= 1
        self._released = True

    def __getstate__(self):
        # Host-wire form: pages plus the content-derived caches (hash and
        # sorted key list are functions of the contents, so they transfer).
        # ``_released`` is host-local refcount bookkeeping; the digest
        # table is cheap to rebuild from the per-page caches and only
        # meaningful to the side that ships blobs.
        return (self._pages, self._hash, self._sorted)

    def __setstate__(self, state):
        self._pages, self._hash, self._sorted = state
        self._digests = None
        self._released = False

    def __repr__(self) -> str:
        return f"MemorySnapshot(pages={len(self._pages)})"


class AddressSpace:
    """Live, writable, paged guest memory."""

    __slots__ = (
        "_pages",
        "dirty",
        "cow_copies",
        "_rtlb_no",
        "_rtlb_words",
        "_wtlb_no",
        "_wtlb_words",
        "_space_hash",
        "_sorted_keys",
    )

    def __init__(self) -> None:
        self._pages: Dict[int, Page] = {}
        #: pages written since the last snapshot (drives checkpoint cost)
        self.dirty: Set[int] = set()
        #: pages cloned by copy-on-write since construction (statistics)
        self.cow_copies: int = 0
        # Software TLBs: last page hit by a load / by a store. ``None``
        # sentinels (not -1: negative addresses floor-shift to page -1).
        self._rtlb_no: Optional[int] = None
        self._rtlb_words: Optional[List[int]] = None
        self._wtlb_no: Optional[int] = None
        self._wtlb_words: Optional[List[int]] = None
        # Cached table fold + sorted page list; ``None`` means stale.
        self._space_hash: Optional[int] = None
        self._sorted_keys: Optional[List[int]] = None

    def __getstate__(self):
        # Host-wire form. The software TLBs cache raw word-list references
        # into the page table — host-local by definition — so they are
        # dropped and the receiving process starts cold (first access
        # repopulates them; behaviour is identical either way). The fold
        # and sorted-key caches are content-derived and transfer. An active
        # write-TLB entry needs no flush here: its page is already in
        # ``dirty`` with its hash invalidated (the write-TLB invariant).
        return (
            self._pages,
            self.dirty,
            self.cow_copies,
            self._space_hash,
            self._sorted_keys,
        )

    def __setstate__(self, state):
        (
            self._pages,
            self.dirty,
            self.cow_copies,
            self._space_hash,
            self._sorted_keys,
        ) = state
        self._rtlb_no = None
        self._rtlb_words = None
        self._wtlb_no = None
        self._wtlb_words = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_data(cls, data: Dict[int, int]) -> "AddressSpace":
        """Build an address space from a program image's data segment."""
        space = cls()
        for addr, value in data.items():
            space.map_addr(addr)
            space.write(addr, value)
        space._wtlb_no = None
        space.dirty.clear()
        return space

    @classmethod
    def from_snapshot(cls, snapshot: MemorySnapshot) -> "AddressSpace":
        """A private copy-on-write view of ``snapshot``.

        This is how each epoch-parallel executor gets "a different copy of
        the memory" without actually copying it.
        """
        space = cls()
        space._pages = dict(snapshot.pages)
        for page in space._pages.values():
            page.refs += 1
        # Inherit the snapshot's hash caches: the view starts bit-identical.
        space._space_hash = snapshot._hash
        if snapshot._sorted is not None:
            space._sorted_keys = list(snapshot._sorted)
        return space

    @property
    def pages(self) -> Dict[int, Page]:
        """Live page table (read-only by convention)."""
        self._wtlb_no = None  # callers may read page hashes
        return self._pages

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_addr(self, addr: int) -> None:
        """Ensure the page containing ``addr`` is mapped (zero-filled)."""
        self.map_page(addr >> PAGE_SHIFT)

    def map_page(self, page_no: int) -> None:
        if page_no not in self._pages:
            self._pages[page_no] = Page()
            self._space_hash = None
            self._sorted_keys = None

    def map_range(self, base: int, length: int) -> None:
        """Map every page overlapped by ``[base, base+length)``."""
        if length <= 0:
            return
        for page_no in range(base >> PAGE_SHIFT, ((base + length - 1) >> PAGE_SHIFT) + 1):
            self.map_page(page_no)

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    def check_range(self, base: int, length: int) -> None:
        """Fault unless ``[base, base+length)`` is fully mapped.

        Kernel buffer transfers validate up front so a bad buffer faults
        *before* any word moves — faults must be clean op boundaries
        (no partial effects), or crash recordings would not replay.
        """
        if length <= 0:
            return
        pages = self._pages
        for page_no in range(base >> PAGE_SHIFT, ((base + length - 1) >> PAGE_SHIFT) + 1):
            if page_no not in pages:
                raise GuestFault(
                    f"buffer [{base}, {base + length}) touches unmapped page {page_no}"
                )

    def page_count(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        page_no = addr >> PAGE_SHIFT
        if page_no == self._rtlb_no:
            return self._rtlb_words[addr & PAGE_OFFSET_MASK]
        page = self._pages.get(page_no)
        if page is None:
            raise GuestFault(f"load from unmapped address {addr}")
        self._rtlb_no = page_no
        words = self._rtlb_words = page.words
        return words[addr & PAGE_OFFSET_MASK]

    def write(self, addr: int, value: int) -> None:
        page_no = addr >> PAGE_SHIFT
        if page_no == self._wtlb_no:
            # TLB invariant: cached page is private, dirty, hash-invalid.
            self._wtlb_words[addr & PAGE_OFFSET_MASK] = value
            return
        page = self._pages.get(page_no)
        if page is None:
            raise GuestFault(f"store to unmapped address {addr}")
        if page.refs > 1:
            page.refs -= 1
            page = page.clone()
            self._pages[page_no] = page
            self.cow_copies += 1
            if page_no == self._rtlb_no:
                self._rtlb_words = page.words
        words = page.words
        words[addr & PAGE_OFFSET_MASK] = value
        page._hash = None
        page._wire = None
        self.dirty.add(page_no)
        self._space_hash = None
        self._wtlb_no = page_no
        self._wtlb_words = words

    def read_block(self, base: int, length: int) -> list:
        """Read ``length`` consecutive words (syscall buffers).

        Page-at-a-time: one page lookup per page touched, not per word.
        """
        if length <= 0:
            return []
        out: List[int] = []
        pages = self._pages
        addr = base
        end = base + length
        while addr < end:
            page_no = addr >> PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                raise GuestFault(f"load from unmapped address {addr}")
            offset = addr & PAGE_OFFSET_MASK
            take = min(PAGE_WORDS - offset, end - addr)
            out.extend(page.words[offset : offset + take])
            addr += take
        return out

    def write_block(self, base: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``base`` (syscall buffers).

        Page-at-a-time with one COW/dirty/hash update per page. Matches
        the per-word loop exactly, including partial effects before a
        fault mid-buffer.
        """
        values = list(values)
        if not values:
            return
        self._rtlb_no = None  # COW below may swap page objects
        self._wtlb_no = None
        pages = self._pages
        dirty = self.dirty
        addr = base
        end = base + len(values)
        taken = 0
        while addr < end:
            page_no = addr >> PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                raise GuestFault(f"store to unmapped address {addr}")
            if page.refs > 1:
                page.refs -= 1
                page = page.clone()
                pages[page_no] = page
                self.cow_copies += 1
            offset = addr & PAGE_OFFSET_MASK
            take = min(PAGE_WORDS - offset, end - addr)
            page.words[offset : offset + take] = values[taken : taken + take]
            page._hash = None
            page._wire = None
            dirty.add(page_no)
            addr += take
            taken += take
        self._space_hash = None

    # ------------------------------------------------------------------
    # Snapshots and comparison
    # ------------------------------------------------------------------
    def snapshot(self) -> MemorySnapshot:
        """Pin current pages into a snapshot; resets the dirty set."""
        self._wtlb_no = None  # pinned pages are no longer private
        for page in self._pages.values():
            page.refs += 1
        self.dirty.clear()
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._pages)
        snap = MemorySnapshot(dict(self._pages), list(self._sorted_keys))
        snap._hash = self._space_hash
        return snap

    def take_dirty(self) -> Set[int]:
        """Return and clear the set of pages written since last snapshot."""
        self._wtlb_no = None  # TLB assumes its page is in ``dirty``
        dirty, self.dirty = self.dirty, set()
        return dirty

    def content_hash(self) -> int:
        self._wtlb_no = None  # about to cache page hashes
        value = self._space_hash
        if value is None:
            keys = self._sorted_keys
            if keys is None:
                keys = self._sorted_keys = sorted(self._pages)
            value = self._space_hash = fold_page_table(self._pages, keys)
        return value

    def same_content(self, other: "AddressSpace") -> bool:
        """Deep content equality with cheap shared-page short-circuiting."""
        self._wtlb_no = None
        other._wtlb_no = None
        if self._pages.keys() != other._pages.keys():
            return False
        return all(
            self._pages[page_no].same_content(other._pages[page_no])
            for page_no in self._pages
        )

    def diff_pages(self, other: "AddressSpace") -> Tuple[Set[int], Set[int]]:
        """(pages differing in content, pages mapped on only one side)."""
        self._wtlb_no = None
        other._wtlb_no = None
        mine, theirs = set(self._pages), set(other._pages)
        only_one_side = mine ^ theirs
        differing = {
            page_no
            for page_no in mine & theirs
            if not self._pages[page_no].same_content(other._pages[page_no])
        }
        return differing, only_one_side

    def __repr__(self) -> str:
        return f"AddressSpace(pages={len(self._pages)}, dirty={len(self.dirty)})"
