"""Address spaces and copy-on-write snapshots.

An :class:`AddressSpace` is the live memory of one execution. Taking a
:class:`MemorySnapshot` is O(pages): both sides keep referencing the same
:class:`~repro.memory.page.Page` objects, and the first write to a shared
page clones it. ``cow_copies`` and ``dirty`` bookkeeping feed the
checkpoint cost model (checkpoint cost in DoublePlay is dominated by the
pages dirtied per epoch).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import GuestFault
from repro.memory.hashing import combine_hashes
from repro.memory.layout import PAGE_WORDS, page_of, offset_of
from repro.memory.page import Page


class MemorySnapshot:
    """An immutable point-in-time view of an address space.

    Holds page references (not copies). Call :meth:`release` when the
    snapshot is discarded so that pages it pinned stop triggering
    copy-on-write in live spaces; forgetting to release is safe but makes
    later writes copy more than necessary.
    """

    __slots__ = ("_pages", "_hash", "_released")

    def __init__(self, pages: Dict[int, Page]):
        self._pages = pages
        self._hash: Optional[int] = None
        self._released = False

    @property
    def pages(self) -> Dict[int, Page]:
        return self._pages

    def page_count(self) -> int:
        return len(self._pages)

    def read(self, addr: int) -> int:
        """Read a word from the snapshot (used by tests and diffing)."""
        page = self._pages.get(page_of(addr))
        if page is None:
            raise GuestFault(f"snapshot read from unmapped address {addr}")
        return page.words[offset_of(addr)]

    def content_hash(self) -> int:
        """Stable hash of the full snapshot contents."""
        if self._hash is None:
            parts = []
            for page_no in sorted(self._pages):
                parts.append(page_no)
                parts.append(self._pages[page_no].content_hash())
            self._hash = combine_hashes(parts)
        return self._hash

    def release(self) -> None:
        """Drop the snapshot's pins on shared pages (idempotent)."""
        if self._released:
            return
        for page in self._pages.values():
            page.refs -= 1
        self._released = True

    def __repr__(self) -> str:
        return f"MemorySnapshot(pages={len(self._pages)})"


class AddressSpace:
    """Live, writable, paged guest memory."""

    def __init__(self) -> None:
        self._pages: Dict[int, Page] = {}
        #: pages written since the last snapshot (drives checkpoint cost)
        self.dirty: Set[int] = set()
        #: pages cloned by copy-on-write since construction (statistics)
        self.cow_copies: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_data(cls, data: Dict[int, int]) -> "AddressSpace":
        """Build an address space from a program image's data segment."""
        space = cls()
        for addr, value in data.items():
            space.map_addr(addr)
            space.write(addr, value)
        space.dirty.clear()
        return space

    @classmethod
    def from_snapshot(cls, snapshot: MemorySnapshot) -> "AddressSpace":
        """A private copy-on-write view of ``snapshot``.

        This is how each epoch-parallel executor gets "a different copy of
        the memory" without actually copying it.
        """
        space = cls()
        space._pages = dict(snapshot.pages)
        for page in space._pages.values():
            page.refs += 1
        return space

    @property
    def pages(self) -> Dict[int, Page]:
        """Live page table (read-only by convention)."""
        return self._pages

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_addr(self, addr: int) -> None:
        """Ensure the page containing ``addr`` is mapped (zero-filled)."""
        self.map_page(page_of(addr))

    def map_page(self, page_no: int) -> None:
        if page_no not in self._pages:
            self._pages[page_no] = Page()

    def map_range(self, base: int, length: int) -> None:
        """Map every page overlapped by ``[base, base+length)``."""
        if length <= 0:
            return
        for page_no in range(page_of(base), page_of(base + length - 1) + 1):
            self.map_page(page_no)

    def is_mapped(self, addr: int) -> bool:
        return page_of(addr) in self._pages

    def check_range(self, base: int, length: int) -> None:
        """Fault unless ``[base, base+length)`` is fully mapped.

        Kernel buffer transfers validate up front so a bad buffer faults
        *before* any word moves — faults must be clean op boundaries
        (no partial effects), or crash recordings would not replay.
        """
        if length <= 0:
            return
        for page_no in range(page_of(base), page_of(base + length - 1) + 1):
            if page_no not in self._pages:
                raise GuestFault(
                    f"buffer [{base}, {base + length}) touches unmapped page {page_no}"
                )

    def page_count(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        page = self._pages.get(page_of(addr))
        if page is None:
            raise GuestFault(f"load from unmapped address {addr}")
        return page.words[offset_of(addr)]

    def write(self, addr: int, value: int) -> None:
        page_no = page_of(addr)
        page = self._pages.get(page_no)
        if page is None:
            raise GuestFault(f"store to unmapped address {addr}")
        if page.refs > 1:
            page.refs -= 1
            page = page.clone()
            self._pages[page_no] = page
            self.cow_copies += 1
        page.words[offset_of(addr)] = value
        page.invalidate_hash()
        self.dirty.add(page_no)

    def read_block(self, base: int, length: int) -> list:
        """Read ``length`` consecutive words (syscall buffers)."""
        return [self.read(base + index) for index in range(length)]

    def write_block(self, base: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``base`` (syscall buffers)."""
        for index, value in enumerate(values):
            self.write(base + index, value)

    # ------------------------------------------------------------------
    # Snapshots and comparison
    # ------------------------------------------------------------------
    def snapshot(self) -> MemorySnapshot:
        """Pin current pages into a snapshot; resets the dirty set."""
        for page in self._pages.values():
            page.refs += 1
        self.dirty.clear()
        return MemorySnapshot(dict(self._pages))

    def take_dirty(self) -> Set[int]:
        """Return and clear the set of pages written since last snapshot."""
        dirty, self.dirty = self.dirty, set()
        return dirty

    def content_hash(self) -> int:
        parts = []
        for page_no in sorted(self._pages):
            parts.append(page_no)
            parts.append(self._pages[page_no].content_hash())
        return combine_hashes(parts)

    def same_content(self, other: "AddressSpace") -> bool:
        """Deep content equality with cheap shared-page short-circuiting."""
        if self._pages.keys() != other._pages.keys():
            return False
        return all(
            self._pages[page_no].same_content(other._pages[page_no])
            for page_no in self._pages
        )

    def diff_pages(self, other: "AddressSpace") -> Tuple[Set[int], Set[int]]:
        """(pages differing in content, pages mapped on only one side)."""
        mine, theirs = set(self._pages), set(other._pages)
        only_one_side = mine ^ theirs
        differing = {
            page_no
            for page_no in mine & theirs
            if not self._pages[page_no].same_content(other._pages[page_no])
        }
        return differing, only_one_side

    def __repr__(self) -> str:
        return f"AddressSpace(pages={len(self._pages)}, dirty={len(self.dirty)})"
