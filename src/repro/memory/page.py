"""A single page of guest memory with cached content hash.

Pages are shared between address spaces and snapshots via reference
counting (``refs``). A page with ``refs > 1`` must be treated as read-only;
:class:`~repro.memory.address_space.AddressSpace` clones it before writing
(copy-on-write). The content hash is computed lazily and invalidated on
write, so repeated divergence checks over unchanged pages are O(1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.hashing import fnv1a_words
from repro.memory.layout import PAGE_WORDS


class Page:
    """``PAGE_WORDS`` guest words plus sharing bookkeeping."""

    __slots__ = ("words", "refs", "_hash")

    def __init__(self, words: Optional[List[int]] = None):
        if words is None:
            words = [0] * PAGE_WORDS
        elif len(words) != PAGE_WORDS:
            raise ValueError(f"page needs {PAGE_WORDS} words, got {len(words)}")
        self.words = words
        self.refs = 1
        self._hash: Optional[int] = None

    def clone(self) -> "Page":
        """Private writable copy (refs=1); the hash cache carries over."""
        page = Page(list(self.words))
        page._hash = self._hash
        return page

    def __getstate__(self):
        # Host-wire form: contents plus the (content-derived, therefore
        # transferable) hash cache. ``refs`` is host-local sharing state —
        # the receiving process starts with a single private reference.
        return (self.words, self._hash)

    def __setstate__(self, state):
        self.words, self._hash = state
        self.refs = 1

    def content_hash(self) -> int:
        """Stable hash of the page contents (cached until next write)."""
        if self._hash is None:
            self._hash = fnv1a_words(self.words)
        return self._hash

    def invalidate_hash(self) -> None:
        self._hash = None

    def same_content(self, other: "Page") -> bool:
        """Content equality, cheap when pages are literally shared."""
        if self is other:
            return True
        if self.content_hash() != other.content_hash():
            return False
        return self.words == other.words

    def __repr__(self) -> str:
        return f"Page(refs={self.refs})"
