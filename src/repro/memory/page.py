"""A single page of guest memory with cached content hash.

Pages are shared between address spaces and snapshots via reference
counting (``refs``). A page with ``refs > 1`` must be treated as read-only;
:class:`~repro.memory.address_space.AddressSpace` clones it before writing
(copy-on-write). The content hash is computed lazily and invalidated on
write, so repeated divergence checks over unchanged pages are O(1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.memory.blob import blob_digest, encode_page_words
from repro.memory.hashing import fnv1a_words
from repro.memory.layout import PAGE_WORDS


class Page:
    """``PAGE_WORDS`` guest words plus sharing bookkeeping."""

    __slots__ = ("words", "refs", "_hash", "_wire")

    def __init__(self, words: Optional[List[int]] = None):
        if words is None:
            words = [0] * PAGE_WORDS
        elif len(words) != PAGE_WORDS:
            raise ValueError(f"page needs {PAGE_WORDS} words, got {len(words)}")
        self.words = words
        self.refs = 1
        self._hash: Optional[int] = None
        self._wire: Optional[Tuple[int, bytes]] = None

    def clone(self) -> "Page":
        """Private writable copy (refs=1); the content caches carry over."""
        page = Page(list(self.words))
        page._hash = self._hash
        page._wire = self._wire
        return page

    def __getstate__(self):
        # Host-wire form: contents plus the (content-derived, therefore
        # transferable) hash cache. ``refs`` is host-local sharing state —
        # the receiving process starts with a single private reference.
        # The wire blob is deliberately NOT transferred: shipping the
        # encoded bytes alongside the words would double the payload, and
        # the receiving side re-encodes lazily if it ever ships the page on.
        return (self.words, self._hash)

    def __setstate__(self, state):
        self.words, self._hash = state
        self.refs = 1
        self._wire = None

    def content_hash(self) -> int:
        """Stable hash of the page contents (cached until next write)."""
        if self._hash is None:
            self._hash = fnv1a_words(self.words)
        return self._hash

    def wire_blob(self) -> Tuple[int, bytes]:
        """``(digest, blob bytes)`` of this page's contents (cached).

        The content-addressed wire protocol (see :mod:`repro.memory.blob`)
        ships pages by digest; like ``_hash`` the cache is invalidated on
        every write, and ``clone()`` carries it over because the clone is
        content-equal until its first write.
        """
        if self._wire is None:
            blob = encode_page_words(self.words)
            self._wire = (blob_digest(blob), blob)
        return self._wire

    def invalidate_hash(self) -> None:
        self._hash = None
        self._wire = None

    def same_content(self, other: "Page") -> bool:
        """Content equality, cheap when pages are literally shared."""
        if self is other:
            return True
        if self.content_hash() != other.content_hash():
            return False
        return self.words == other.words

    def __repr__(self) -> str:
        return f"Page(refs={self.refs})"
